//! NoPFS — a reproduction of "Clairvoyant Prefetching for Distributed
//! Machine Learning I/O" (Dryden, Böhringer, Ben-Nun, Hoefler; SC 2021).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! - [`core`] — the NoPFS middleware itself (paper Sec. 5).
//! - [`policy`] — the workspace policy layer: the [`policy::PolicyId`]
//!   registry plus the shared decision core every harness (runtime,
//!   simulator, cluster) executes.
//! - [`cluster`] — multi-tenant co-scheduling: K jobs contending on one
//!   shared PFS (the Sec. 1–2 / Fig. 2 interference scenario).
//! - [`clairvoyance`] — seeded access streams, frequency analysis,
//!   placement (Secs. 2–3).
//! - [`perfmodel`] — the storage-hierarchy performance model (Sec. 4).
//! - [`simulator`] — the I/O policy simulator (Sec. 6).
//! - [`baselines`] — PyTorch-like, DALI-like, LBANN-like, naive, and
//!   no-I/O runtime loaders (Sec. 7's comparison points).
//! - [`pfs`], [`net`], [`storage`] — the synthetic substrates standing
//!   in for GPFS/Lustre, MPI, and tiered node-local storage; the
//!   [`storage::DataSource`] trait and [`storage::TierStack`] compose
//!   every level (worker RAM → SSD → the PFS) behind one fetch API
//!   with per-tier statistics.
//! - [`datasets`] — synthetic datasets with the paper's published size
//!   distributions.
//! - [`train`] — the bulk-synchronous training loop and a tiny real
//!   model for end-to-end runs.
//! - [`util`] — deterministic PRNG, statistics, pacing, timing.
//!
//! At the repository root, [`README.md`](../../../README.md) has the
//! quickstart, [`DESIGN.md`](../../../DESIGN.md) the crate-by-crate
//! system inventory, and [`EXPERIMENTS.md`](../../../EXPERIMENTS.md)
//! the bench targets with paper-vs-measured results.

pub use nopfs_baselines as baselines;
pub use nopfs_clairvoyance as clairvoyance;
pub use nopfs_cluster as cluster;
pub use nopfs_core as core;
pub use nopfs_datasets as datasets;
pub use nopfs_net as net;
pub use nopfs_obs as obs;
pub use nopfs_perfmodel as perfmodel;
pub use nopfs_pfs as pfs;
pub use nopfs_policy as policy;
pub use nopfs_simulator as simulator;
pub use nopfs_storage as storage;
pub use nopfs_train as train;
pub use nopfs_util as util;
