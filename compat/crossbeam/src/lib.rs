//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the subset this workspace uses: [`channel`] with
//! `bounded`/`unbounded` MPMC channels whose `Sender` and `Receiver`
//! are both `Clone + Send + Sync`, matching crossbeam's semantics
//! (which `std::sync::mpsc` does not: its bounded sender is a distinct
//! type and its receiver is neither `Clone` nor `Sync`).

pub mod channel;
