//! Multi-producer multi-consumer channels, bounded and unbounded.
//!
//! A straightforward `Mutex<VecDeque>` + two-`Condvar` implementation.
//! Disconnection follows crossbeam's rules: a channel is disconnected
//! when all senders or all receivers have dropped; receivers drain
//! buffered messages before reporting disconnection, and blocked
//! senders on a full bounded channel fail once every receiver is gone.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Creates a channel of unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel holding at most `cap` messages; `send` blocks when
/// full. (`cap == 0`, crossbeam's rendezvous channel, is approximated
/// with capacity 1 — unused in this workspace.)
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

/// The sending half; clonable and shareable across threads.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half; clonable and shareable across threads.
pub struct Receiver<T>(Arc<Shared<T>>);

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Sender<T> {
    /// Blocks until the message is buffered, or fails if all receivers
    /// are gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = lock(&self.0.inner);
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            match inner.capacity {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = wait(&self.0.not_full, inner);
                }
                _ => {
                    inner.queue.push_back(msg);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives, or fails once the channel is
    /// empty and all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = lock(&self.0.inner);
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = wait(&self.0.not_empty, inner);
        }
    }

    /// Like [`recv`](Self::recv) but gives up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = lock(&self.0.inner);
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .0
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = lock(&self.0.inner);
        if let Some(msg) = inner.queue.pop_front() {
            self.0.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        lock(&self.0.inner).queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// A non-blocking iterator over currently buffered messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

fn lock<T>(m: &Mutex<Inner<T>>) -> std::sync::MutexGuard<'_, Inner<T>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, Inner<T>>,
) -> std::sync::MutexGuard<'a, Inner<T>> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.0.inner).senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.0.inner).receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = lock(&self.0.inner);
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = lock(&self.0.inner);
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            self.0.not_full.notify_all();
        }
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Non-blocking iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

/// Owning iterator returned by `Receiver::into_iter`.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// The message could not be sent because the channel is disconnected.
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// The channel is empty and disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Why a `try_recv` returned no message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing buffered right now.
    Empty,
    /// Empty and all senders dropped.
    Disconnected,
}

/// Why a `recv_timeout` returned no message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed first.
    Timeout,
    /// Empty and all senders dropped.
    Disconnected,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || tx.send(3).map(|()| 3));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(t.join().unwrap().unwrap(), 3);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn drop_all_senders_disconnects_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn drop_all_receivers_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocked_bounded_send_fails_when_receiver_drops() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn recv_timeout_and_try_recv() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..50 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..50).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(all, expected);
    }
}
