//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! API: `lock()`/`read()`/`write()` return guards directly (a panicked
//! holder's poison flag is swallowed), and `Condvar::wait` takes
//! `&mut MutexGuard`. Fairness, eventual-fairness, and `const fn`
//! constructors from the real crate are not reproduced.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual exclusion primitive; `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` so [`Condvar::wait`] can temporarily take the
/// underlying std guard and put back the re-acquired one; the option is
/// `Some` at all times outside that exchange.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's mutex and blocks until notified;
    /// the mutex is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Like [`wait`](Self::wait) with a timeout; returns whether the
    /// wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Like [`wait`](Self::wait) with a deadline; returns whether the
    /// deadline passed before a notification arrived.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let now = std::time::Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Whether a bounded [`Condvar`] wait ended by timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the time bound passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A reader-writer lock; `read`/`write` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking as needed.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access, blocking as needed.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
