//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of [`Bytes`] this workspace uses: a cheaply
//! clonable, sliceable, immutable byte buffer backed by `Arc<[u8]>`.
//! `clone` and `slice` are O(1) and share the underlying allocation,
//! matching the real crate's cost model, which matters here because
//! sample payloads are cloned across cache tiers and thread boundaries
//! on the hot path.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::from_static(b"")
    }

    /// Creates `Bytes` from a static slice (copied once into the shared
    /// allocation; the real crate borrows, but the observable API is
    /// identical).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether this holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range reversed: {begin}..{end}");
        assert!(
            end <= len,
            "slice range {begin}..{end} out of bounds (len {len})"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: Arc::from(v),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Self::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(Arc::strong_count(&a.data), 2);
    }

    #[test]
    fn slice_is_a_view() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(Arc::strong_count(&a.data), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }

    #[test]
    fn equality_across_forms() {
        let a = Bytes::from_static(b"hello");
        assert_eq!(a, Bytes::from(b"hello".to_vec()));
        assert_eq!(a, *b"hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
