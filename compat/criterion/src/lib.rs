//! Offline stand-in for the `criterion` crate.
//!
//! Implements the measurement core of criterion's API — [`Criterion`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with plain
//! wall-clock timing. Each benchmark is auto-calibrated to a target
//! batch duration, run `sample_size` times, and summarized to stdout as
//! mean/min ns per iteration. No statistical analysis, baselines, or
//! HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. Only a hint here: every
/// variant runs setup once per routine invocation, outside the timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs (criterion batches thousands).
    SmallInput,
    /// Large per-iteration inputs (criterion batches few).
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// The benchmark harness: configuration plus a result printer.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the total time budget the samples are calibrated to fill.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Would apply CLI overrides; the shim has none.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark and prints its summary line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        report(id, &bencher.samples);
        self
    }
}

fn report(id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{id:<40} (no measurement — bencher not driven)");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{id:<40} mean {:>12}  min {:>12}  ({} samples)",
        format_ns(mean),
        format_ns(min),
        samples.len()
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Drives a routine and records per-iteration timings.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine` back-to-back, recording mean ns/iter per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and calibrate: how many iterations fit one sample?
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup runs
    /// outside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut per_iter = f64::INFINITY;
        while Instant::now() < warm_deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            per_iter = per_iter.min(start.elapsed().as_secs_f64());
        }
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's two
/// macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running each group (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(25));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with(" s"));
    }
}
