//! `any::<T>()` — the strategy for "any value of `T`".

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning many magnitudes; no NaN/inf, which the
        // tests here never rely on.
        let mag = rng.next_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag.exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mag = rng.next_f64() as f32 * 80.0 - 40.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag.exp2()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any")
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_small_domains() {
        let mut rng = TestRng::new(5);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(any::<bool>().generate(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn floats_are_finite() {
        let mut rng = TestRng::new(5);
        for _ in 0..256 {
            assert!(any::<f64>().generate(&mut rng).is_finite());
            assert!(any::<f32>().generate(&mut rng).is_finite());
        }
    }
}
