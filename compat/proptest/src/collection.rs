//! Collection strategies: `vec` and `hash_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashMap;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// An inclusive-of-min, exclusive-of-max collection size range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        debug_assert!(self.min < self.max_exclusive);
        self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// A strategy for `Vec`s whose elements come from `element` and whose
/// length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `HashMap`s with keys from `keys`, values from
/// `values`, and size in `size` (collisions permitting — with fewer
/// distinct keys than the minimum size the map may come up short, as in
/// real proptest).
pub fn hash_map<K: Strategy, V: Strategy>(
    keys: K,
    values: V,
    size: impl Into<SizeRange>,
) -> HashMapStrategy<K, V>
where
    K::Value: Hash + Eq,
{
    HashMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// Strategy returned by [`hash_map`].
#[derive(Debug, Clone)]
pub struct HashMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for HashMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Hash + Eq,
{
    type Value = HashMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut map = HashMap::with_capacity(target);
        // Bounded retries so key spaces smaller than `target` terminate.
        let mut attempts = 0usize;
        while map.len() < target && attempts < target * 10 + 16 {
            map.insert(self.keys.generate(rng), self.values.generate(rng));
            attempts += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_respects_size_and_element_ranges() {
        let strat = vec(3u8..7, 2..5);
        let mut rng = TestRng::new(1);
        for _ in 0..128 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|e| (3..7).contains(e)));
        }
    }

    #[test]
    fn hash_map_hits_target_size_with_large_key_space() {
        let strat = hash_map(any::<u64>(), 0u8..4, 5..8);
        let mut rng = TestRng::new(2);
        for _ in 0..64 {
            let m = strat.generate(&mut rng);
            assert!((5..8).contains(&m.len()));
        }
    }

    #[test]
    fn hash_map_terminates_on_tiny_key_space() {
        let strat = hash_map(0u8..2, 0u8..2, 5..6);
        let m = strat.generate(&mut TestRng::new(3));
        assert!(m.len() <= 2);
    }
}
