//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), [`strategy::Strategy`] with `prop_map`, range and tuple
//! strategies, [`arbitrary::any`], [`collection::vec`] and
//! [`collection::hash_map`], and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! - **No shrinking.** A failing case reports the generated inputs
//!   as-is rather than a minimized counterexample.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's module path and the case index, so runs are reproducible
//!   across machines and CI — at the cost of not exploring new inputs
//!   on re-runs.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: zero or more `#[test]` functions whose
/// arguments are drawn from strategies via `name in strategy` clauses.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n    inputs: {}",
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property if the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Fails the enclosing property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, $($fmt)+);
    }};
}
