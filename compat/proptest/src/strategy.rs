//! The [`Strategy`] trait and the built-in strategies: numeric ranges,
//! tuples, and [`Map`].

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of [`Self::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain.
                    rng.next_u64() as $t
                } else {
                    (start as i128 + rng.below(width as u64) as i128) as $t
                }
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let f = rng.next_f64() as $t;
                self.start + f * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.next_f64() as $t) * (end - start)
            }
        }
    )+};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F6.5)
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(99)
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..256 {
            let v = (5u64..17).generate(&mut r);
            assert!((5..17).contains(&v));
            let w = (-10i32..10).generate(&mut r);
            assert!((-10..10).contains(&w));
            let x = (0u64..u64::MAX).generate(&mut r);
            assert!(x < u64::MAX);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..256 {
            let v = (-1e3f64..1e3).generate(&mut r);
            assert!((-1e3..1e3).contains(&v));
            let w = (0.5f32..2.0).generate(&mut r);
            assert!((0.5..2.0).contains(&w));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (0u64..10, 1usize..4).prop_map(|(a, b)| a as usize * b);
        let mut r = rng();
        for _ in 0..64 {
            assert!(strat.generate(&mut r) < 40);
        }
    }

    #[test]
    fn just_yields_the_value() {
        assert_eq!(Just(7u8).generate(&mut rng()), 7);
    }
}
