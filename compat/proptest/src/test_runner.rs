//! Test execution support: configuration, RNG, and failure type.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps `cargo test` fast
        // while still exercising the input space well.
        Self { cases: 64 }
    }
}

/// A failed property: carries the `prop_assert*` message.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A small, fast, deterministic PRNG (SplitMix64) used to drive
/// strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded directly.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The RNG for case number `case` of the named test: a pure
    /// function of `(test, case)` so every run regenerates the same
    /// inputs.
    pub fn for_case(test: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    /// Widening-multiply rejectionless mapping — bias is negligible for
    /// test generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("foo::bar", 3);
        let mut b = TestRng::for_case("foo::bar", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("foo::bar", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(42);
        for bound in [1u64, 2, 3, 17, u64::MAX] {
            for _ in 0..64 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = TestRng::new(7);
        for _ in 0..256 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
