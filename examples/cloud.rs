//! Cloud-origin quickstart: the object-store failure domain.
//!
//! The dataset's origin moves from a PFS to a cloud object store with a
//! per-request latency floor, parallelism-dependent throughput, and
//! seeded disturbances (tail-latency spikes, throttle bursts, a
//! brownout window). Two clients face the identical disturbance seeds:
//! a **hardened** one (per-attempt deadlines, capped full-jitter
//! retries, hedged second requests, a circuit breaker that steers
//! fetches to peers and local tiers while the origin is sick) and an
//! unbounded **naive** one. The example self-checks the failure
//! domain's headline on the simulator — bounded degradation, never
//! losing to naive — and then proves on the threaded runtime that a
//! brownout layered over a mid-epoch crash still delivers bit-for-bit
//! the fault-free global sample stream.
//!
//! Run with: `cargo run --release --example cloud`

use nopfs::core::{ElasticJob, JobConfig};
use nopfs::datasets::DatasetProfile;
use nopfs::policy::{FaultPlan, PolicyId};
use nopfs::simulator::run;
use nopfs::util::timing::TimeScale;
use nopfs_bench::scenarios::fig_cloud;
use std::sync::Arc;

fn main() {
    // 1. Simulator: one cell of the fig_cloud sweep (4 workers, the
    //    moderate brownout), hardened vs naive on identical seeds.
    let base = fig_cloud::sim_scenario(4, 1.0);
    let quiet = run(
        &fig_cloud::with_cloud(&base, fig_cloud::quiet(), fig_cloud::hardened()),
        PolicyId::NoPfs,
    )
    .expect("NoPfs supports every scenario");
    let (label, latency_factor, extra_throttle) = fig_cloud::SEVERITIES[1];
    let storm = fig_cloud::storm(quiet.execution_time, latency_factor, extra_throttle);
    let hardened = run(
        &fig_cloud::with_cloud(&base, storm.clone(), fig_cloud::hardened()),
        PolicyId::NoPfs,
    )
    .unwrap();
    let naive = run(
        &fig_cloud::with_cloud(&base, storm, fig_cloud::naive()),
        PolicyId::NoPfs,
    )
    .unwrap();

    let h_slow = hardened.execution_time / quiet.execution_time;
    let n_slow = naive.execution_time / quiet.execution_time;
    let hs = hardened.resilience.expect("cloud stats");
    println!("simulator, {label} brownout over the cold epoch (4 workers):");
    println!("  fault-free        {:>7.3} s", quiet.execution_time);
    println!(
        "  hardened client   {:>7.3} s  ({h_slow:.2}x; {} hedges, {} breaker opens, {} throttles)",
        hardened.execution_time, hs.hedges_fired, hs.breaker_to_open, hs.throttled
    );
    println!(
        "  naive client      {:>7.3} s  ({n_slow:.2}x)",
        naive.execution_time
    );

    // Self-check 1: bounded degradation, never losing to naive, same
    // access totals (the disturbances cost time, not content).
    assert!(
        h_slow <= fig_cloud::BOUND,
        "hardened exceeded the {}x bound: {h_slow:.2}x",
        fig_cloud::BOUND
    );
    assert!(hardened.execution_time <= naive.execution_time * 1.02);
    let total = |r: &nopfs::simulator::SimResult| r.fetch_counts.iter().sum::<u64>();
    assert_eq!(total(&quiet), total(&hardened));
    assert_eq!(total(&quiet), total(&naive));
    assert!(hs.throttled > 0 && hs.hedges_fired > 0);
    println!("OK: bounded degradation under the brownout, hedges and breaker exercised.");

    // 2. Threaded runtime: a brownout *plus* a mid-epoch crash, and the
    //    delivered global stream is still bit-identical.
    let mut system = nopfs::perfmodel::presets::fig8_small_cluster();
    system.workers = 4;
    system.staging.capacity = 64 * 2_000;
    system.staging.threads = 4;
    system.classes[0].capacity = 120 * 2_000;
    system.classes[1].capacity = 240 * 2_000;
    let profile = DatasetProfile::new("cloud", 240, 2_000.0, 0.0, 10, 7);
    let sizes = Arc::new(profile.sizes());
    let config = JobConfig::new(0xC10D, 3, 8, system, TimeScale::new(1e-3));
    let run_rt = |plan: FaultPlan| {
        let job = ElasticJob::new(config.clone(), Arc::clone(&sizes), plan).expect("valid plan");
        let pfs = job.make_pfs();
        profile.materialize(&pfs);
        job.run(&pfs)
    };
    println!();
    println!("runtime: fault-free reference, then brownout + crash...");
    let baseline = run_rt(FaultPlan::fault_free());
    let disturbed = run_rt(fig_cloud::runtime_plan());
    let rt = &disturbed.resilience;
    println!(
        "  origin reads {}  retries {}  throttled {}  hedges {}  exhausted {}",
        rt.reads, rt.retries, rt.throttled, rt.hedges_fired, rt.exhausted
    );

    // Self-check 2: the stream survives the whole failure domain.
    assert_eq!(
        disturbed.global_stream, baseline.global_stream,
        "origin disturbances changed the delivered stream"
    );
    assert!(rt.reads > 0 && rt.throttled > 0 && rt.retries > 0);
    assert_eq!(rt.exhausted, 0, "the retry budget absorbed every burst");
    assert_eq!(disturbed.recoveries, 1, "the crash recovered");
    println!("OK: brownout + crash, global stream bit-identical to fault-free.");
}
