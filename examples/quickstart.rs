//! Quickstart: the paper's Fig. 7 integration, in Rust.
//!
//! Three steps — describe the system, create a `Job`, iterate samples —
//! replace a framework data loader with NoPFS. This example builds a
//! small synthetic dataset on an in-memory synthetic PFS, runs a
//! 4-worker job for two epochs, and prints the per-worker I/O
//! statistics NoPFS collected along the way.
//!
//! Run with: `cargo run --release --example quickstart`

use nopfs::core::{Job, JobConfig};
use nopfs::datasets::DatasetProfile;
use nopfs::perfmodel::presets::fig8_small_cluster;
use nopfs::util::timing::TimeScale;
use std::sync::Arc;

fn main() {
    // 1. Describe the system: workers, staging buffer, storage classes,
    //    interconnect, and the PFS's t(γ) curve. Presets mirror the
    //    paper's clusters; `perfmodel::config` parses the same thing
    //    from an INI file.
    let mut system = fig8_small_cluster();
    system.workers = 4;
    // Scale capacities to this toy dataset (a few MB instead of TB).
    system.staging.capacity = 256 * 1_024;
    system.classes[0].capacity = 512 * 1_024; // "RAM"
    system.classes[1].capacity = 2 * 1_024 * 1_024; // "SSD"

    // 2. A reproducible synthetic dataset, materialized on the PFS
    //    ("all runs begin with data at rest on a PFS").
    let profile = DatasetProfile::new("quickstart", 2_000, 1_500.0, 300.0, 10, 42);
    let sizes = Arc::new(profile.sizes());

    // 3. The job: seed + epochs + batch size. Everything clairvoyant —
    //    streams, frequencies, placement — is computed here.
    let config = JobConfig::new(
        0xC0FFEE,
        2,  // epochs
        16, // per-worker batch size
        system,
        TimeScale::new(1e-3), // run the modelled cluster 1000x faster
    );
    let job = Job::new(config, Arc::clone(&sizes));
    let pfs = job.make_pfs();
    profile.materialize(&pfs);

    println!(
        "dataset: {} samples, {} bytes total",
        sizes.len(),
        profile.total_bytes()
    );

    // Iterate batches exactly like a framework data loader.
    let stats = job.run(&pfs, |worker| {
        let mut batches = 0u64;
        let mut bytes = 0u64;
        while let Some(batch) = worker.next_batch() {
            batches += 1;
            for (id, data) in &batch {
                bytes += data.len() as u64;
                // Payloads are verifiable end to end.
                profile.decode(data).unwrap_or_else(|e| {
                    panic!("corrupt sample {id}: {e}");
                });
            }
        }
        (worker.rank(), batches, bytes, worker.stats())
    });

    println!();
    println!(
        "{:<6} {:>8} {:>12} {:>8} {:>8} {:>8} {:>10}",
        "rank", "batches", "bytes", "local", "remote", "PFS", "stall(ms)"
    );
    for (rank, batches, bytes, s) in stats {
        println!(
            "{rank:<6} {batches:>8} {bytes:>12} {:>8} {:>8} {:>8} {:>10.2}",
            s.local_fetches,
            s.remote_fetches,
            s.pfs_fetches,
            s.stall_time.as_secs_f64() * 1e3,
        );
    }
    println!();
    println!("every sample was delivered exactly once per epoch, in the");
    println!("clairvoyantly-predicted order, with epoch >= 1 served mostly");
    println!("from the local and remote caches instead of the PFS.");
}
