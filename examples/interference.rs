//! Multi-tenant interference: co-scheduled training jobs contending on
//! one shared PFS (the paper's Sec. 1–2 / Fig. 2 scenario).
//!
//! Four tenants — NoPFS, two naive loaders, and a PyTorch-style
//! double-buffering loader — are co-scheduled against **one** shared
//! synthetic PFS whose aggregate throughput `t(γ)` saturates just past
//! a single job's demand. Each tenant is first measured solo on a
//! private PFS with the identical curve; the *interference slowdown*
//! (co-scheduled ÷ solo steady epoch time) is then reported per tenant,
//! from the thread runtime (real loader threads, real bytes) and from
//! the discrete simulator (same scenario, analytically) side by side.
//!
//! The point of the figure: NoPFS serves steady-state epochs from its
//! clairvoyantly-placed caches, so its slowdown stays near 1×, while
//! the all-PFS baselines inherit the full `t(γ)` collapse.
//!
//! Run with: `cargo run --release --example interference`

use nopfs_bench::report;
use nopfs_bench::scenarios::fig2;
use nopfs_cluster::interference_report;

fn main() {
    let spec = fig2::cluster_spec(1.0);
    println!(
        "co-scheduling {} tenants x {} workers on ONE shared PFS",
        spec.tenants.len(),
        fig2::WORKERS
    );
    println!(
        "per tenant: {} samples x {:.0} KB, {} epochs; shared t(γ) saturates at 40 MB/s",
        fig2::samples(1.0),
        fig2::SAMPLE_BYTES / 1_000.0,
        fig2::EPOCHS
    );

    // Thread runtime (every tenant solo, then all together) and the
    // simulator's replay of the identical cluster.
    let cluster = interference_report(&spec);
    let sim_slowdowns = fig2::sim_mixed_slowdowns(&spec);

    println!();
    println!(
        "{:<10} {:>14} {:>13} {:>16} {:>13} {:>8}",
        "tenant", "solo epoch(s)", "co epoch(s)", "runtime slowdown", "sim slowdown", "cache%"
    );
    for (t, &sim) in cluster.tenants.iter().zip(&sim_slowdowns) {
        println!(
            "{:<10} {:>14.3} {:>13.3} {:>15.2}x {:>12.2}x {:>7.1}%",
            t.name,
            t.solo_epoch_time.unwrap_or(0.0),
            t.steady_epoch_time(),
            t.slowdown.unwrap_or(0.0),
            sim,
            t.cache_fraction() * 100.0,
        );
    }

    // The K-sweep is pure simulation, so the smoke run affords the same
    // document the bench writes (one schema, whichever producer ran).
    let sweeps = fig2::sim_sweep(1.0, &[2, 4, 8, 16]);
    let doc = fig2::json_doc(
        "examples/interference.rs",
        1.0,
        &cluster,
        &sim_slowdowns,
        &sweeps,
    );
    report::write_json("BENCH_fig2_interference.json", &doc).expect("write JSON report");

    // The headline claim, checked so CI smoke runs catch regressions.
    let nopfs = cluster
        .slowdown_of(nopfs_cluster::PolicyId::NoPfs)
        .expect("NoPFS tenant present");
    let naive = cluster
        .slowdown_of(nopfs_cluster::PolicyId::Naive)
        .expect("naive tenant present");
    println!();
    println!(
        "NoPFS degraded {nopfs:.2}x vs naive {naive:.2}x: clairvoyant caching shields \
         co-scheduled tenants from shared-PFS contention."
    );
    assert!(
        nopfs < naive,
        "interference regression: NoPFS ({nopfs:.2}x) should degrade less than naive ({naive:.2}x)"
    );
}
