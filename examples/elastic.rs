//! Elasticity quickstart: replay-exact recovery under a fault plan.
//!
//! A NoPFS job loses a worker mid-epoch (crash-and-restart with a cold
//! cache), shrinks by one worker for an epoch, regains it, drags a 2x
//! straggler along, and absorbs transient PFS read errors — and still
//! delivers bit-for-bit the same global sample stream as the
//! undisturbed run. Recovery is cheap by construction: membership
//! changes re-split the cached clairvoyant streams
//! (`SetupArtifacts::replan`) instead of re-running the O(E·F) setup
//! pass, so the epoch-shuffle counter never advances.
//!
//! The example self-checks both halves of that claim on the threaded
//! runtime, then prints a simulator churn sweep (the EXPERIMENTS.md
//! rows) over the same fault vocabulary.
//!
//! Run with: `cargo run --release --example elastic`

use nopfs::core::{ElasticJob, JobConfig};
use nopfs::datasets::DatasetProfile;
use nopfs::perfmodel::presets::fig8_small_cluster;
use nopfs::policy::{FaultPlan, PolicyId, ReadErrors};
use nopfs::simulator::{churn_sweep, Scenario};
use nopfs::util::timing::TimeScale;
use std::sync::Arc;

fn main() {
    // A 4-worker slice of the paper's small cluster, capacities scaled
    // to a toy dataset.
    let mut system = fig8_small_cluster();
    system.workers = 4;
    system.staging.capacity = 64 * 2_000;
    system.staging.threads = 4;
    system.classes[0].capacity = 120 * 2_000; // "RAM"
    system.classes[1].capacity = 240 * 2_000; // "SSD"

    let profile = DatasetProfile::new("elastic", 240, 2_000.0, 0.0, 10, 7);
    let sizes = Arc::new(profile.sizes());
    let config = JobConfig::new(0xE1A5, 3, 8, system.clone(), TimeScale::new(1e-3));

    // The disturbance: rank 1 crashes two steps into epoch 0, the
    // highest rank leaves for epoch 1 and rejoins for epoch 2, rank 2
    // computes at half speed throughout, and 5% of PFS reads open a
    // short failure burst.
    let plan = FaultPlan::fault_free()
        .crash(0, 2, 1)
        .leave(1)
        .join(2)
        .straggle(0, 2, 2.0)
        .with_read_errors(ReadErrors {
            rate: 0.05,
            max_burst: 2,
            seed: 0xBAD5EED,
        });

    let run = |plan: FaultPlan| {
        let job = ElasticJob::new(config.clone(), Arc::clone(&sizes), plan).expect("valid plan");
        let pfs = job.make_pfs();
        profile.materialize(&pfs);
        job.run(&pfs)
    };

    println!("fault-free reference run...");
    let baseline = run(FaultPlan::fault_free());
    println!("disturbed run (crash + churn + straggler + read errors)...");
    let report = run(plan);

    println!();
    println!("memberships per epoch : {:?}", report.memberships);
    println!("recoveries            : {}", report.recoveries);
    println!(
        "recovery wall time    : {:.2} ms",
        report.recovery_time.as_secs_f64() * 1e3
    );
    println!(
        "incremental replans   : {} ({} epoch shuffles regenerated)",
        report.replans, report.replan_shuffle_generations
    );
    println!(
        "read errors injected  : {} (absorbed by {} retries)",
        report.injected_read_errors, report.read_retries
    );
    println!(
        "samples delivered     : {} ({} staging fetches, {:.2} ms stalled)",
        report.stats.samples_consumed,
        report.stats.total_fetches(),
        report.stats.stall_time.as_secs_f64() * 1e3
    );

    // Self-check 1: replay exactness. The global stream of the
    // disturbed run is bit-for-bit the undisturbed one.
    assert_eq!(
        report.global_stream, baseline.global_stream,
        "recovery changed the global sample stream"
    );
    // Self-check 2: recovery actually happened and was incremental —
    // the crash recovered, the churn replanned, and not one epoch
    // shuffle was regenerated on top of the initial setup's E.
    assert_eq!(report.memberships, vec![4, 3, 4]);
    assert_eq!(report.recoveries, 1);
    assert_eq!(report.replans, 1);
    assert_eq!(report.replan_shuffle_generations, 0);
    assert_eq!(report.setup.shuffle_generations, 3);
    assert!(report.injected_read_errors > 0);
    assert!(report.read_retries >= report.injected_read_errors);
    println!();
    println!("OK: the recovered stream is bit-identical to the fault-free");
    println!("run, and every membership change was replanned without");
    println!("regenerating a single epoch shuffle.");

    // The simulator's half: a churn sweep over the same vocabulary,
    // comparing each disturbed run to its fault-free baseline (the
    // EXPERIMENTS.md churn-sweep rows).
    let scenario = Scenario::new("elastic", system, profile.sizes(), 3, 8, 0xE1A5);
    let plans = [
        ("crash@e0s2", FaultPlan::fault_free().crash(0, 2, 1)),
        ("leave+join", FaultPlan::fault_free().leave(1).join(2)),
        (
            "crash+churn+straggler",
            FaultPlan::fault_free()
                .crash(0, 2, 1)
                .leave(1)
                .join(2)
                .straggle(0, 2, 2.0),
        ),
    ];
    let rows = churn_sweep(
        &scenario,
        &[PolicyId::NoPfs, PolicyId::Naive, PolicyId::StagingBuffer],
        &plans,
    );

    println!();
    println!(
        "{:<22} {:<16} {:>9} {:>11} {:>9} {:>8} {:>7}",
        "plan", "policy", "time(s)", "overhead", "recover", "replans", "exact"
    );
    for row in &rows {
        println!(
            "{:<22} {:<16} {:>9.2} {:>10.2}x {:>9} {:>8} {:>7}",
            row.plan,
            row.policy.to_string(),
            row.execution_time,
            row.overhead,
            row.recoveries,
            row.replans,
            row.replay_exact
        );
        // Self-check 3: the simulator agrees — every policy replays
        // exactly under every plan, at a cost never below fault-free.
        assert!(
            row.replay_exact,
            "{}/{} not replay-exact",
            row.policy, row.plan
        );
        assert!(row.overhead >= 1.0 - 1e-9);
    }
    assert_eq!(rows.len(), 9, "a policy silently dropped out of the sweep");
    println!();
    println!("OK: simulator sweep replay-exact across all plans and policies.");
}
