//! CosmoFlow-style pipeline: large fixed-size scientific samples on a
//! disk-backed PFS, with the dataset exceeding cluster storage.
//!
//! The paper's second end-to-end workload is CosmoFlow: 3D universes of
//! identical (large) size where batch times go *bimodal* — a batch is
//! fast when its samples came from caches and slow when any came from
//! the PFS. This example runs a scaled CosmoFlow profile through NoPFS
//! with the PFS materialized on real local disk (not memory), prints
//! the per-epoch times, and shows the fetch-source split that produces
//! the bimodality.
//!
//! Run with: `cargo run --release --example cosmoflow_pipeline`

use nopfs::core::{Job, JobConfig};
use nopfs::datasets::DatasetProfile;
use nopfs::perfmodel::presets::{lassen_like, thrashing_pfs_curve};
use nopfs::pfs::Pfs;
use nopfs::train::{run_training_loop, TrainLoopConfig};
use nopfs::util::stats::Summary;
use nopfs::util::timing::TimeScale;
use nopfs::util::units::MB;

fn main() {
    let workers = 4;
    let scale = TimeScale::new(0.1);
    let mut system = lassen_like();
    system.workers = workers;
    system.staging.threads = 4;
    system.staging.capacity = 4 * 1_000_000;
    // Cluster storage deliberately smaller than the dataset (N*D < S).
    system.classes[0].capacity = 10 * 1_000_000; // RAM
    system.classes[1].capacity = 40 * 1_000_000; // SSD
    system.pfs_read = thrashing_pfs_curve(32.0, 272.0 * MB);

    // 600 fixed-size 0.34 MB "universes" = 204 MB > 4 x 50 MB storage.
    let profile = DatasetProfile::cosmoflow().scaled(1.0 / 437.0, 1.0 / 50.0);
    let sizes = std::sync::Arc::new(profile.sizes());
    let total_mb = sizes.iter().sum::<u64>() as f64 / 1e6;
    println!(
        "dataset: {} samples x {:.2} MB = {total_mb:.0} MB; cluster storage {} MB",
        sizes.len(),
        sizes[0] as f64 / 1e6,
        workers * 50
    );

    // The PFS lives on real disk for this example.
    let dir = std::env::temp_dir().join("nopfs-cosmoflow-example");
    std::fs::remove_dir_all(&dir).ok();
    let pfs = Pfs::on_disk(&dir, system.pfs_read.clone(), scale);
    profile.materialize(&pfs);
    println!(
        "materialized {} objects on disk at {}",
        pfs.len(),
        dir.display()
    );

    let config = JobConfig::new(3, 3, 4, system, scale);
    let job = Job::new(config, std::sync::Arc::clone(&sizes));
    let loop_cfg = TrainLoopConfig {
        compute_rate: 64.0 * MB,
        scale,
        grad_elems: 0,
    };
    let results = job.run(&pfs, |w| {
        let m = run_training_loop(w, &loop_cfg, None);
        (m, w.stats())
    });

    println!();
    for (rank, (m, stats)) in results.iter().enumerate() {
        let batches = Summary::new(&m.batch_times);
        let (local, remote, pfs_frac) = stats.fractions();
        println!(
            "rank {rank}: epochs {:?} s | batch median {:.4}s max {:.4}s | \
             sources {:.0}%L/{:.0}%R/{:.0}%P",
            m.epoch_times
                .iter()
                .map(|t| (t * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            batches.median(),
            batches.max(),
            local * 100.0,
            remote * 100.0,
            pfs_frac * 100.0,
        );
    }
    println!();
    println!(
        "identical sample sizes make batch times cluster by fetch source \
         (the paper's bimodal distribution); the PFS share stays high \
         because the dataset cannot fit in cluster storage."
    );
    std::fs::remove_dir_all(&dir).ok();
}
