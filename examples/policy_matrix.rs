//! The policy × harness matrix, self-checked: every entry of
//! `PolicyId::ALL` runs in the **simulator**, the **solo runtime**
//! (through the registry's `build_loader` factory and the multi-worker
//! `run_policy` dispatch), and a **two-tenant cluster** on one shared
//! PFS — the acceptance gate of the policy-layer refactor, kept alive
//! as a CI smoke.
//!
//! Run with: `cargo run --release --example policy_matrix`

use bytes::Bytes;
use nopfs_bench::report;
use nopfs_cluster::{run_cluster, ClusterSpec, TenantSpec};
use nopfs_core::JobConfig;
use nopfs_datasets::DatasetProfile;
use nopfs_perfmodel::presets::fig8_small_cluster;
use nopfs_perfmodel::{SystemSpec, ThroughputCurve};
use nopfs_pfs::Pfs;
use nopfs_policy::PolicyId;
use nopfs_simulator::Scenario;
use nopfs_util::timing::TimeScale;
use std::sync::Arc;

const SAMPLES: u64 = 48;
const SAMPLE_BYTES: u64 = 2_000;
const EPOCHS: u64 = 2;
const BATCH: usize = 4;
const SEED: u64 = 0x9A7;

/// A tiny system whose caches hold the whole dataset, so every policy
/// is feasible and fully covered.
fn system(workers: usize) -> SystemSpec {
    let mut sys = fig8_small_cluster();
    sys.workers = workers;
    sys.staging.capacity = 32 * SAMPLE_BYTES;
    sys.staging.threads = 2;
    sys.classes[0].capacity = SAMPLES * SAMPLE_BYTES; // RAM fits everything
    sys.classes[1].capacity = SAMPLES * SAMPLE_BYTES;
    sys
}

fn materialized_pfs(sizes: &[u64]) -> Pfs {
    let pfs = Pfs::in_memory(ThroughputCurve::flat(1e12), TimeScale::new(1e-6));
    for (id, &s) in sizes.iter().enumerate() {
        pfs.put(id as u64, Bytes::from(vec![(id % 256) as u8; s as usize]));
    }
    pfs
}

/// Simulator leg: execution time from the discrete-event engine.
fn sim_leg(policy: PolicyId) -> f64 {
    let scenario = Scenario::new(
        "matrix",
        system(2),
        vec![SAMPLE_BYTES; SAMPLES as usize],
        EPOCHS,
        BATCH,
        SEED,
    );
    let r = nopfs_simulator::run(&scenario, policy).expect("feasible scenario");
    assert!(r.execution_time > 0.0, "{policy}: simulated time");
    assert!(
        (r.coverage - 1.0).abs() < 1e-9,
        "{policy}: ample caches must cover the dataset"
    );
    r.execution_time
}

/// Solo-runtime leg via the object-safe factory: one rank, boxed.
fn solo_leg(policy: PolicyId) -> u64 {
    let config = JobConfig::new(SEED, EPOCHS, BATCH, system(1), TimeScale::new(1e-6));
    let sizes = Arc::new(vec![SAMPLE_BYTES; SAMPLES as usize]);
    let pfs = materialized_pfs(&sizes);
    let mut loader =
        nopfs_baselines::build_loader(policy, config, sizes, &pfs).expect("feasible config");
    let mut n = 0u64;
    while loader.next_sample().is_some() {
        n += 1;
    }
    assert_eq!(n, SAMPLES * EPOCHS, "{policy}: solo runtime delivery");
    n
}

/// Multi-worker runtime leg via the registry dispatch.
fn runtime_leg(policy: PolicyId) -> u64 {
    let config = JobConfig::new(SEED, EPOCHS, BATCH, system(2), TimeScale::new(1e-6));
    let sizes = Arc::new(vec![SAMPLE_BYTES; SAMPLES as usize]);
    let pfs = materialized_pfs(&sizes);
    let outcome = nopfs_baselines::run_policy(policy, config, sizes, &pfs, |l| {
        let mut n = 0u64;
        while l.next_sample().is_some() {
            n += 1;
        }
        n
    })
    .expect("feasible config");
    let total: u64 = outcome.per_worker.iter().sum();
    assert_eq!(total, SAMPLES * EPOCHS, "{policy}: runtime delivery");
    total
}

/// Cluster leg: the policy co-scheduled with a naive tenant on one
/// shared PFS.
fn cluster_leg(policy: PolicyId) -> u64 {
    let profile = |name: &str, seed| DatasetProfile::new(name, SAMPLES, 2_000.0, 0.0, 4, seed);
    let spec = ClusterSpec::new(ThroughputCurve::flat(1e12), TimeScale::new(1e-6))
        .tenant(TenantSpec::new(
            "probe",
            policy,
            system(2),
            profile("probe", 1),
            EPOCHS,
            BATCH,
            SEED,
        ))
        .tenant(TenantSpec::new(
            "naive",
            PolicyId::Naive,
            system(2),
            profile("naive", 2),
            EPOCHS,
            BATCH,
            SEED + 1,
        ));
    let report = run_cluster(&spec);
    let consumed = report.tenants[0].stats.samples_consumed;
    assert_eq!(consumed, SAMPLES * EPOCHS, "{policy}: cluster delivery");
    assert_eq!(
        report.tenants[1].stats.samples_consumed,
        SAMPLES * EPOCHS,
        "{policy}: co-tenant delivery"
    );
    consumed
}

fn main() {
    report::banner(
        "Policy matrix",
        "every PolicyId entry in the simulator, the solo runtime, and a 2-tenant cluster",
    );
    report::config_line(&format!(
        "F={SAMPLES} x {SAMPLE_BYTES} B, E={EPOCHS}, b={BATCH}; ample caches, fast PFS"
    ));
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12}",
        "Policy", "sim (s)", "solo (got)", "runtime", "cluster"
    );
    for policy in PolicyId::ALL {
        let sim = sim_leg(policy);
        let solo = solo_leg(policy);
        let runtime = runtime_leg(policy);
        let clustered = cluster_leg(policy);
        println!(
            "{:<20} {sim:>12.4} {solo:>12} {runtime:>12} {clustered:>12}",
            policy.name()
        );
    }
    println!();
    println!(
        "all {} policies ran in all three harnesses and delivered F*E samples each.",
        PolicyId::ALL.len()
    );
}
