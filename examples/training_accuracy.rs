//! End-to-end training with a real (tiny) model: accuracy vs time.
//!
//! Mirrors the paper's Fig. 16 at example scale: a logistic-regression
//! model is trained data-parallel through NoPFS and through a
//! PyTorch-like loader on identical substrates. Both see exactly the
//! same sample order (full-dataset randomization from the same seed),
//! so accuracy per epoch is identical — but NoPFS finishes sooner.
//!
//! Run with: `cargo run --release --example training_accuracy`

use nopfs::baselines::{DataLoader, DoubleBufferRunner};
use nopfs::core::{Job, JobConfig};
use nopfs::datasets::DatasetProfile;
use nopfs::net::{cluster, Endpoint, NetConfig};
use nopfs::perfmodel::presets::{lassen_like, saturating_pfs_curve};
use nopfs::pfs::Pfs;
use nopfs::train::{LogisticModel, SyntheticTask};
use nopfs::util::timing::TimeScale;
use nopfs::util::units::MB;
use parking_lot::Mutex;
use std::sync::Arc;

const WORKERS: usize = 4;
const EPOCHS: u64 = 6;
const DIM: usize = 16;

fn train(
    name: &str,
    profile: &DatasetProfile,
    sizes: Arc<Vec<u64>>,
    use_nopfs: bool,
) -> (f64, f64) {
    let scale = TimeScale::new(0.5);
    let mut system = lassen_like();
    system.workers = WORKERS;
    system.staging.threads = 2;
    system.staging.capacity = 512 * 1_024;
    system.classes[0].capacity = 8 * 1_000_000;
    system.classes[1].capacity = 16 * 1_000_000;
    system.pfs_read = saturating_pfs_curve(48.0 * MB, 8.0);
    let config = JobConfig::new(0xACC, EPOCHS, 8, system.clone(), scale);

    let task = SyntheticTask::new(DIM, 1.5, 1.0, 7);
    let eval: Vec<(Vec<f32>, f32)> = (500_000..500_300u64)
        .map(|id| {
            let label = profile.label_of(id);
            (task.features(id, label), task.label(label))
        })
        .collect();

    let endpoints: Mutex<Vec<Option<Endpoint<Vec<f32>>>>> = Mutex::new(
        cluster::<Vec<f32>>(WORKERS, NetConfig::new(system.interconnect, scale))
            .into_iter()
            .map(Some)
            .collect(),
    );
    let body = |loader: &mut dyn DataLoader| {
        let ep = endpoints.lock()[loader.rank()].take().expect("one take");
        let mut model = LogisticModel::new(DIM);
        let mut grad = vec![0.0f32; DIM + 1];
        let t0 = std::time::Instant::now();
        while let Some(batch) = loader.next_batch() {
            let bytes: u64 = batch.iter().map(|(_, d)| d.len() as u64).sum();
            let examples: Vec<(Vec<f32>, f32)> = batch
                .iter()
                .map(|(id, _)| {
                    let label = profile.label_of(*id);
                    (task.features(*id, label), task.label(label))
                })
                .collect();
            model.gradient(&examples, &mut grad);
            scale.wait(bytes as f64 / (24.0 * MB)); // the "GPU"
            ep.allreduce_sum(&mut grad).expect("allreduce");
            for g in grad.iter_mut() {
                *g /= WORKERS as f32;
            }
            model.apply(&grad, 0.5);
        }
        (scale.to_model(t0.elapsed()), model.accuracy(&eval))
    };

    let pfs = Pfs::in_memory(system.pfs_read.clone(), scale);
    profile.materialize(&pfs);
    let results = if use_nopfs {
        let job = Job::new(config, sizes);
        job.run(&pfs, |w| body(w))
    } else {
        DoubleBufferRunner::pytorch_like(config, sizes).run(&pfs, body)
    };
    let time = results.iter().map(|r| r.0).fold(0.0, f64::max);
    let acc = results[0].1;
    println!(
        "{name:<14} trained {EPOCHS} epochs in {time:>7.3}s -> accuracy {:.1}%",
        acc * 100.0
    );
    (time, acc)
}

fn main() {
    let profile = DatasetProfile::new("accuracy-demo", 800, 24_000.0, 0.0, 2, 0xACE);
    let sizes = Arc::new(profile.sizes());
    println!(
        "training a logistic model data-parallel on {WORKERS} workers, \
         {} samples, {EPOCHS} epochs",
        profile.num_samples
    );
    println!();
    let (pt_time, pt_acc) = train("PyTorch-like", &profile, Arc::clone(&sizes), false);
    let (np_time, np_acc) = train("NoPFS", &profile, Arc::clone(&sizes), true);
    println!();
    println!(
        "same accuracy ({:.1}% vs {:.1}% — same randomization), {:.2}x \
         end-to-end speedup from I/O alone (paper Fig. 16: 1.42x).",
        pt_acc * 100.0,
        np_acc * 100.0,
        pt_time / np_time
    );
}
