//! Design-space exploration with the performance simulator (Sec. 6.2).
//!
//! "Our simulator can also be used to quantify the impact of changes to
//! a system on training time … to identify promising hardware upgrades
//! or when designing new systems." This example asks a concrete
//! procurement question for a scaled ImageNet-22k-like workload: given
//! a budget, should the next dollar buy RAM or SSD?
//!
//! Run with: `cargo run --release --example design_space`

use nopfs::perfmodel::presets::{fig8_small_cluster, thrashing_pfs_curve};
use nopfs::simulator::environment::sweep;
use nopfs::simulator::{run, PolicyId, Scenario};
use nopfs::util::units::MB;

fn main() {
    // A scaled ImageNet-22k-like workload: 20k samples of ~0.15 MB on a
    // 4-worker cluster whose PFS collapses under many readers.
    let mut system = fig8_small_cluster().with_compute_mbps(5.0 * 64.0, 5.0 * 200.0);
    system.pfs_read = thrashing_pfs_curve(32.0, 846.0 * MB);
    system.staging.capacity = 10 * 1_000_000;
    let sizes = vec![150_000u64; 20_000]; // 3 GB
    let scenario = Scenario::new("imagenet22k-like", system, sizes, 3, 32, 99);

    let lb = run(&scenario, PolicyId::Perfect).expect("lower bound");
    println!(
        "dataset: 3 GB on 4 workers; lower bound {:.2}s; regime {}",
        lb.execution_time,
        scenario.regime()
    );
    println!();

    // Sweep RAM and SSD capacities under the NoPFS policy (Fig. 9's
    // methodology at example scale).
    let ram = [64_000_000u64, 128_000_000, 256_000_000, 512_000_000];
    let ssd = [0u64, 128_000_000, 256_000_000, 512_000_000, 1_024_000_000];
    println!(
        "{:>10} {}",
        "RAM\\SSD",
        ssd.iter()
            .map(|s| format!("{:>9}MB", s / 1_000_000))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let mut best: Option<(f64, u64, u64)> = None;
    for &r in &ram {
        let pts = sweep(&scenario, PolicyId::NoPfs, &[10_000_000], &[r], &ssd).expect("sweep runs");
        print!("{:>8}MB", r / 1_000_000);
        for p in &pts {
            print!(" {:>10.2}", p.execution_time);
            if best.is_none_or(|(t, _, _)| p.execution_time < t) {
                best = Some((p.execution_time, p.ram, p.ssd));
            }
        }
        println!();
    }
    let (t, r, s) = best.expect("sweep produced points");
    println!();
    println!(
        "best configuration: {} MB RAM + {} MB SSD -> {:.2}s \
         ({:.1}% over the no-I/O bound)",
        r / 1_000_000,
        s / 1_000_000,
        t,
        (t / lb.execution_time - 1.0) * 100.0
    );
    println!(
        "the paper's conclusions hold at example scale: more storage always \
         helps, SSD capacity can substitute for RAM, and once RAM is large \
         the SSD matters little."
    );
}
