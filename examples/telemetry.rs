//! Live observability across the workspace: one metrics registry, one
//! event tracer, three harnesses.
//!
//! A two-tenant cluster (an elastic NoPFS job with a flaky cloud origin
//! co-scheduled with a naive loader) runs with tracing on and a
//! per-tenant telemetry sampler; the same scenario then replays through
//! the discrete simulator against the same vocabulary. The example
//! self-checks the observability contract:
//!
//! 1. every tenant streams JSONL telemetry (≥ 2 lines, monotone
//!    sequence numbers, non-decreasing counters),
//! 2. the end-of-run snapshot merges every tenant's scoped metrics and
//!    agrees with the per-tenant reports,
//! 3. the Chrome trace exports, parses, and contains the structured
//!    events the run must have emitted (epochs; breaker/hedge activity
//!    from the cloud origin),
//! 4. the simulator's registry counts match its own fetch accounting.
//!
//! Run with: `cargo run --release --example telemetry`

use nopfs::cluster::{run_cluster, ClusterSpec, TenantSpec};
use nopfs::obs::{names, Json, ObsCtx};
use nopfs::simulator::Scenario;
use nopfs::simulator::{run_with_obs, PolicyId};
use nopfs_datasets::DatasetProfile;
use nopfs_perfmodel::presets::fig8_small_cluster;
use nopfs_perfmodel::{SystemSpec, ThroughputCurve};
use nopfs_policy::{CloudFaults, FaultPlan};
use nopfs_util::timing::TimeScale;
use std::time::Duration;

fn tenant_system() -> SystemSpec {
    let mut sys = fig8_small_cluster();
    sys.workers = 2;
    sys.staging.capacity = 2_000_000;
    sys.staging.threads = 2;
    sys.classes[0].capacity = 30_000_000;
    sys.classes[1].capacity = 60_000_000;
    sys
}

fn tenant(name: &str, policy: PolicyId, samples: u64, seed: u64) -> TenantSpec {
    TenantSpec::new(
        name,
        policy,
        tenant_system(),
        DatasetProfile::new(name, samples, 20_000.0, 0.0, 4, seed),
        2,
        4,
        seed,
    )
}

/// Extracts the cumulative value of `key` from each JSONL line's
/// counter map, in emission order.
fn counter_series(lines: &[String], key: &str) -> Vec<f64> {
    lines
        .iter()
        .filter_map(|line| {
            Json::parse(line)
                .expect("telemetry line parses")
                .get("snapshot")
                .and_then(|s| s.get("counters"))
                .and_then(|c| c.get(key))
                .and_then(Json::as_num)
        })
        .collect()
}

fn main() {
    // --- 1+2+3: the threaded cluster harness, telemetry on ---------
    // Realtime scale so the ~40 ms run spans several sampling ticks.
    let cloud = CloudFaults {
        spike_rate: 0.05,
        spike_factor: 30.0,
        throttle_rate: 0.1,
        throttle_burst: 2,
        retry_after: 1e-4,
        ..CloudFaults::none(0xC10D)
    };
    let spec = ClusterSpec::new(ThroughputCurve::flat(1e12), TimeScale::new(1.0))
        .tenant(
            tenant("cloudy", PolicyId::NoPfs, 64, 91)
                .with_fault_plan(FaultPlan::fault_free().with_cloud(cloud)),
        )
        .tenant(tenant("steady", PolicyId::Naive, 48, 92))
        .with_obs(ObsCtx::traced())
        .telemetry_every(Duration::from_millis(4));
    let report = run_cluster(&spec);

    println!("cluster: 2 tenants, tracing on, sampling every 4 ms");
    for t in &report.tenants {
        let key = format!("worker.consumed{{tenant={}}}", t.name);
        let consumed: Vec<f64> = {
            // Per-rank keys: sum the ranks per line for the tenant total.
            let r0 = counter_series(
                &t.telemetry,
                &format!("worker.consumed{{tenant={},rank=0}}", t.name),
            );
            let r1 = counter_series(
                &t.telemetry,
                &format!("worker.consumed{{tenant={},rank=1}}", t.name),
            );
            r0.iter()
                .zip(r1.iter().chain(std::iter::repeat(&0.0)))
                .map(|(a, b)| a + b)
                .collect()
        };
        println!(
            "  tenant {:<7} {} telemetry lines, final {} = {}",
            t.name,
            t.telemetry.len(),
            key,
            consumed.last().copied().unwrap_or(0.0),
        );
        assert!(
            t.telemetry.len() >= 2,
            "tenant {} must stream at least two telemetry lines, got {}",
            t.name,
            t.telemetry.len()
        );
        let mut prev_seq = -1.0;
        for line in &t.telemetry {
            let j = Json::parse(line).expect("telemetry line parses");
            let seq = j.get("seq").and_then(Json::as_num).expect("seq field");
            assert!(seq > prev_seq, "sequence numbers must increase");
            prev_seq = seq;
        }
        assert!(
            consumed.windows(2).all(|w| w[0] <= w[1]),
            "cumulative counters must be non-decreasing"
        );
        let total = consumed.last().copied().unwrap_or(0.0) as u64;
        assert_eq!(
            total, t.stats.samples_consumed,
            "tenant {}: telemetry tail must agree with the report",
            t.name
        );
    }

    // The merged end-of-run snapshot holds both tenants side by side.
    for t in &report.tenants {
        let scoped_total: u64 = (0..2)
            .map(|r| {
                report
                    .snapshot
                    .counter(&format!("worker.consumed{{tenant={},rank={r}}}", t.name))
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(
            scoped_total, t.stats.samples_consumed,
            "merged snapshot must carry tenant {}'s scope",
            t.name
        );
    }
    println!(
        "  merged snapshot: {} counters across tenants [OK]",
        report.snapshot.counters.len()
    );

    // The Chrome trace parses and carries the structured events.
    let trace = report.chrome_trace.as_ref().expect("tracing was on");
    let j = Json::parse(trace).expect("chrome trace parses");
    let events = j
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let count_of = |name: &str| {
        events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .count()
    };
    let epochs = count_of(names::EV_EPOCH);
    let fetches = count_of(names::EV_FETCH);
    assert!(epochs >= 2, "both tenants train 2 epochs, saw {epochs}");
    assert!(fetches > 0, "fetch spans must be traced");
    println!(
        "  chrome trace: {} events ({} epoch instants, {} fetch spans) [OK]",
        events.len(),
        epochs,
        fetches
    );

    // --- 4: the simulator against the same vocabulary ---------------
    let scenario = Scenario::new(
        "telemetry-sim",
        fig8_small_cluster(),
        vec![100_000u64; 1_000],
        3,
        8,
        42,
    );
    let obs = ObsCtx::traced();
    let sim = run_with_obs(&scenario, PolicyId::NoPfs, &obs).expect("sim runs");
    let snap = obs.snapshot();
    let counted = snap.counter_total(names::SIM_FETCH);
    let expected: u64 = sim.fetch_counts.iter().sum();
    assert_eq!(counted, expected, "sim registry must count every fetch");
    let sim_epochs = obs
        .tracer
        .export()
        .iter()
        .filter(|e| e.name == names::EV_EPOCH)
        .count();
    assert_eq!(sim_epochs, scenario.epochs as usize);
    println!(
        "simulator: {} modelled fetches counted, {} model-clock epoch instants [OK]",
        counted, sim_epochs
    );

    println!();
    println!(
        "[PASS] telemetry streams, merged snapshot, chrome trace, and sim registry all check out"
    );
}
