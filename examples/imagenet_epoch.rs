//! ImageNet-style epoch timing: NoPFS versus a PyTorch-like loader.
//!
//! The motivating workload of the paper's introduction: ResNet-50-style
//! training over an ImageNet-like dataset on a cluster whose PFS
//! saturates under concurrent readers. This example runs a scaled
//! ImageNet-1k profile through both loaders on identical substrates and
//! prints per-epoch times — epoch 0 is similar (everyone must touch the
//! PFS once), then NoPFS's caches take over while the PyTorch-like
//! loader pays PFS contention forever.
//!
//! Run with: `cargo run --release --example imagenet_epoch`

use nopfs::baselines::DoubleBufferRunner;
use nopfs::core::{Job, JobConfig};
use nopfs::datasets::DatasetProfile;
use nopfs::perfmodel::presets::{lassen_like, thrashing_pfs_curve};
use nopfs::pfs::Pfs;
use nopfs::train::{run_training_loop, TrainLoopConfig};
use nopfs::util::timing::TimeScale;
use nopfs::util::units::MB;
use std::sync::Arc;

fn main() {
    let workers = 4;
    let scale = TimeScale::new(0.2);
    let mut system = lassen_like();
    system.workers = workers;
    system.staging.threads = 4;
    system.staging.capacity = 2 * 1_000_000;
    system.classes[0].capacity = 8 * 1_000_000; // scaled RAM
    system.classes[1].capacity = 64 * 1_000_000; // scaled SSD
    system.pfs_read = thrashing_pfs_curve(32.0, 272.0 * MB);

    // ~1/4000 of ImageNet-1k: 320 JPEG-sized samples.
    let profile = DatasetProfile::imagenet_1k().scaled(1.0 / 4_000.0, 1.0);
    let sizes = Arc::new(profile.sizes());
    println!(
        "dataset: {} samples, {:.1} MB total; {workers} workers, 4 epochs",
        sizes.len(),
        sizes.iter().sum::<u64>() as f64 / 1e6
    );

    let config = JobConfig::new(7, 4, 8, system.clone(), scale);
    let loop_cfg = TrainLoopConfig {
        compute_rate: 64.0 * MB,
        scale,
        grad_elems: 0,
    };

    let run = |name: &str, epoch_times: Vec<Vec<f64>>| {
        // Bulk-synchronous epoch time: slowest worker.
        let epochs = epoch_times[0].len();
        print!("{name:<14}");
        for e in 0..epochs {
            let t = epoch_times.iter().map(|w| w[e]).fold(0.0, f64::max);
            print!("  epoch{e}: {t:>7.3}s");
        }
        println!();
    };

    // PyTorch-like double buffering.
    let pfs = Pfs::in_memory(system.pfs_read.clone(), scale);
    profile.materialize(&pfs);
    let pt = DoubleBufferRunner::pytorch_like(config.clone(), Arc::clone(&sizes))
        .run(&pfs, |l| run_training_loop(l, &loop_cfg, None).epoch_times);
    run("PyTorch-like", pt);

    // NoPFS on identical substrates.
    let pfs = Pfs::in_memory(system.pfs_read.clone(), scale);
    profile.materialize(&pfs);
    let job = Job::new(config, Arc::clone(&sizes));
    let np = job.run(&pfs, |w| {
        let metrics = run_training_loop(w, &loop_cfg, None);
        (metrics.epoch_times, w.stats())
    });
    let (times, stats): (Vec<_>, Vec<_>) = np.into_iter().unzip();
    run("NoPFS", times);

    let mut merged = stats[0].clone();
    for s in &stats[1..] {
        merged.merge(s);
    }
    let (local, remote, pfs_frac) = merged.fractions();
    println!();
    println!(
        "NoPFS fetch sources: {:.1}% local, {:.1}% remote, {:.1}% PFS \
         ({} false positives)",
        local * 100.0,
        remote * 100.0,
        pfs_frac * 100.0,
        merged.false_positives
    );
}
