//! The tiered storage hierarchy, end to end: one `DataSource` API from
//! worker RAM to the PFS.
//!
//! Three legs, each self-checking (this example is a CI smoke):
//!
//! 1. **`TierStack` directly** — a RAM → SSD → PFS stack serves reads
//!    byte-identically to the bare PFS while the per-tier statistics
//!    show promotions absorbing the traffic.
//! 2. **Simulator** — an SSD-equipped NoPFS run beats the PFS-only
//!    naive policy on a contended `t(γ)` curve, and a deeper hierarchy
//!    never loses to a flat one.
//! 3. **Thread runtime** — a real NoPFS `Job` on the tiered system
//!    delivers exactly its clairvoyant access streams (stream equality
//!    vs the flat-PFS baseline's untransformed order) and outruns the
//!    naive loader on the same contended filesystem.
//!
//! Run with: `cargo run --release --example tiers`

use bytes::Bytes;
use nopfs_baselines::NaiveRunner;
use nopfs_bench::report;
use nopfs_clairvoyance::stream::AccessStream;
use nopfs_core::{Job, JobConfig};
use nopfs_perfmodel::presets::{fig8_small_cluster, saturating_pfs_curve};
use nopfs_perfmodel::{SystemSpec, ThroughputCurve};
use nopfs_pfs::Pfs;
use nopfs_storage::{MemoryBackend, PromotePolicy, TierStack};
use nopfs_util::timing::TimeScale;
use nopfs_util::units::MB;
use std::sync::Arc;
use std::time::Instant;

const SAMPLES: u64 = 296;
const SAMPLE_BYTES: u64 = 20_000;
const EPOCHS: u64 = 3;
const BATCH: usize = 4;
const SEED: u64 = 0x71E5;

fn materialize(pfs: &Pfs) {
    for id in 0..SAMPLES {
        pfs.put(
            id,
            Bytes::from(vec![(id % 251) as u8; SAMPLE_BYTES as usize]),
        );
    }
}

/// Leg 1: the stack itself — transparent bytes, visible tier traffic.
fn stack_leg() {
    report::section("TierStack: RAM -> SSD -> PFS, one read entry point");
    let pfs = Pfs::in_memory(ThroughputCurve::flat(1e12), TimeScale::new(1e-6));
    materialize(&pfs);
    let stack = TierStack::new(
        vec![
            Arc::new(MemoryBackend::new("ram", 40 * SAMPLE_BYTES)),
            Arc::new(MemoryBackend::new("ssd", 120 * SAMPLE_BYTES)),
            Arc::new(pfs.clone()),
        ],
        PromotePolicy::Evicting,
    );
    // A cold full scan fills the tiers (RAM spill demotes into the
    // SSD), then a working set that fits RAM+SSD is re-read twice —
    // almost entirely cache-served. Bytes must match the bare PFS
    // exactly throughout.
    let working_set = 150u64; // < 40 (RAM) + 120 (SSD)
    for id in 0..SAMPLES {
        let via = stack.read(id).expect("origin holds the dataset");
        assert_eq!(via, pfs.read(id).expect("present"), "sample {id} corrupted");
    }
    let origin_after_scan = stack.stats(2).hits;
    for _pass in 0..2 {
        for id in 0..working_set {
            let via = stack.read(id).expect("origin holds the dataset");
            assert_eq!(via, pfs.read(id).expect("present"), "sample {id} corrupted");
        }
    }
    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "tier", "hits", "misses", "promoted", "demoted", "evicted", "hit rate"
    );
    for s in stack.all_stats() {
        println!(
            "{:<8} {:>8} {:>8} {:>10} {:>10} {:>10} {:>9.1}%",
            s.name,
            s.hits,
            s.misses,
            s.promotions,
            s.demotions,
            s.evictions,
            s.hit_rate() * 100.0
        );
    }
    let refetched = stack.stats(2).hits - origin_after_scan;
    assert!(
        refetched < working_set,
        "working-set re-reads should be mostly cache-served \
         ({refetched} of {} went back to the PFS)",
        2 * working_set
    );
    assert!(
        stack.stats(1).demotions > 0,
        "RAM spill should demote into the SSD tier"
    );
}

/// The contended tiered system the sim and runtime legs share: the PFS
/// saturates below cluster demand, caches hold ~80% of the dataset.
fn tiered_system() -> SystemSpec {
    let mut sys = fig8_small_cluster();
    sys.pfs_read = saturating_pfs_curve(30.0 * MB, 8.0);
    sys.staging.capacity = 16 * SAMPLE_BYTES;
    sys.staging.threads = 2;
    sys.classes[0].capacity = 20 * SAMPLE_BYTES; // RAM
    sys.classes[1].capacity = 40 * SAMPLE_BYTES; // SSD
    sys
}

/// Leg 2: simulator — SSD tier vs PFS-only, all policies unchanged.
fn simulator_leg() {
    report::section("simulator: SSD-equipped NoPFS vs the PFS-only naive policy");
    let sys = tiered_system();
    let scenario = nopfs_simulator::Scenario::new(
        "tiers",
        sys,
        vec![SAMPLE_BYTES; SAMPLES as usize],
        EPOCHS,
        BATCH,
        SEED,
    );
    let naive = nopfs_simulator::run(&scenario, nopfs_simulator::PolicyId::Naive)
        .expect("naive runs")
        .execution_time;
    let nopfs_ssd = nopfs_simulator::run(&scenario, nopfs_simulator::PolicyId::NoPfs)
        .expect("NoPFS runs")
        .execution_time;
    let mut flat = scenario.clone();
    flat.system.classes[0].capacity = 0;
    flat.system.classes[1].capacity = 0;
    let nopfs_flat = nopfs_simulator::run(&flat, nopfs_simulator::PolicyId::NoPfs)
        .expect("flat NoPFS runs")
        .execution_time;
    println!("naive (PFS only)     : {naive:>8.3} s");
    println!("NoPFS, no cache tiers: {nopfs_flat:>8.3} s");
    println!("NoPFS, RAM+SSD tiers : {nopfs_ssd:>8.3} s");
    assert!(
        nopfs_ssd < naive,
        "SSD-tier NoPFS ({nopfs_ssd}) must beat PFS-only naive ({naive})"
    );
    assert!(
        nopfs_ssd <= nopfs_flat * 1.02,
        "a deeper hierarchy must never lose to a flat one \
         ({nopfs_ssd} vs {nopfs_flat})"
    );
}

/// Leg 3: thread runtime — real bytes through the tiered fetch path.
fn runtime_leg() {
    report::section("thread runtime: tiered NoPFS job vs naive loader, wall clock");
    // Every paced wait stays above the sleep threshold at this scale,
    // so small CI machines measure PFS pacing, not CPU contention.
    let scale = TimeScale::new(0.5);
    let sys = tiered_system();
    let sizes = Arc::new(vec![SAMPLE_BYTES; SAMPLES as usize]);

    // NoPFS on the tiered hierarchy.
    let config = JobConfig::new(SEED, EPOCHS, BATCH, sys.clone(), scale);
    let job = Job::new(config.clone(), Arc::clone(&sizes));
    let pfs = Pfs::in_memory(sys.pfs_read.clone(), scale);
    materialize(&pfs);
    let t0 = Instant::now();
    let streams = job.run(&pfs, |w| {
        let mut got = Vec::new();
        while let Some((id, data)) = w.next_sample() {
            assert_eq!(data.len() as u64, SAMPLE_BYTES);
            got.push(id);
        }
        (w.rank(), got, w.tier_stats())
    });
    let nopfs_wall = t0.elapsed().as_secs_f64();

    // Stream equality: the tiered run delivered exactly the clairvoyant
    // access streams — the flat-PFS baseline's untransformed order.
    let spec = config.shuffle_spec(SAMPLES);
    for (rank, got, _) in &streams {
        let expect = AccessStream::new(spec, *rank, EPOCHS).materialize();
        assert_eq!(
            got, &expect,
            "rank {rank}: tiered delivery deviated from the clairvoyant stream"
        );
    }

    // The naive loader on an identical, private filesystem.
    let naive_pfs = Pfs::in_memory(sys.pfs_read.clone(), scale);
    materialize(&naive_pfs);
    let runner = NaiveRunner::new(config, Arc::clone(&sizes));
    let t0 = Instant::now();
    let counts = runner.run(&naive_pfs, |l| {
        let mut n = 0u64;
        while l.next_sample().is_some() {
            n += 1;
        }
        n
    });
    let naive_wall = t0.elapsed().as_secs_f64();
    assert_eq!(counts.iter().sum::<u64>(), SAMPLES * EPOCHS);

    println!("naive wall  : {naive_wall:>7.2} s");
    println!("NoPFS wall  : {nopfs_wall:>7.2} s  (RAM+SSD tiers over the same t(γ))");
    let (_, _, tiers) = &streams[0];
    for s in tiers {
        println!(
            "  rank 0 {:<6} hits {:>5}  fills {:>5}  used {:>9} B",
            s.name, s.hits, s.fills, s.used
        );
    }
    assert!(
        nopfs_wall < naive_wall,
        "tiered NoPFS ({nopfs_wall:.2}s) must beat PFS-only naive ({naive_wall:.2}s)"
    );
}

fn main() {
    report::banner(
        "Tiers",
        "one DataSource API from worker RAM to the PFS (self-checking smoke)",
    );
    println!(
        "dataset: {} samples x {:.0} KB, {} epochs, batch {}",
        SAMPLES,
        SAMPLE_BYTES as f64 / 1e3,
        EPOCHS,
        BATCH
    );
    stack_leg();
    simulator_leg();
    runtime_leg();
    println!();
    println!("all tier checks passed: byte-transparent hierarchy, SSD tier beats");
    println!("PFS-only naive, and stream equality holds vs the flat baseline.");
}
