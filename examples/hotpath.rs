//! Hot-path scaling smoke: the CI acceptance gate for the sharded
//! fetch path.
//!
//! A scaled-down version of the `hot_path` bench: a hot RAM tier with
//! a modelled per-request service time serves concurrent readers
//! through `TierStack::read`. The example self-checks the two
//! properties the sharding refactor must deliver:
//!
//! 1. **scaling** — two reader threads achieve at least 1.5x the
//!    aggregate throughput of one (service times overlap because no
//!    global lock spans the fetch);
//! 2. **stream equality** — the vectored `read_many` returns exactly
//!    the bytes sequential `read` calls return, and every concurrent
//!    read matches the id-derived pattern (sharding must never change
//!    what the trainer sees).
//!
//! Exits non-zero if either check fails.

use bytes::Bytes;
use nopfs_storage::{DataSource, MemoryBackend, PromotePolicy, SampleId, SourceError, TierStack};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source whose reads pay a modelled per-request service time in the
/// calling thread, with no lock held — so concurrent requests overlap
/// like real device queue depth.
struct Paced {
    inner: MemoryBackend,
    service: Duration,
}

impl DataSource for Paced {
    fn name(&self) -> &str {
        DataSource::name(&self.inner)
    }

    fn read(&self, id: SampleId) -> Result<Bytes, SourceError> {
        std::thread::sleep(self.service);
        DataSource::read(&self.inner, id)
    }

    fn write(&self, id: SampleId, data: Bytes) -> Result<(), SourceError> {
        DataSource::write(&self.inner, id, data)
    }

    fn contains(&self, id: SampleId) -> bool {
        DataSource::contains(&self.inner, id)
    }

    fn capacity(&self) -> Option<u64> {
        DataSource::capacity(&self.inner)
    }

    fn used(&self) -> u64 {
        DataSource::used(&self.inner)
    }

    fn evict(&self, id: SampleId) -> bool {
        DataSource::evict(&self.inner, id)
    }

    fn count(&self) -> usize {
        DataSource::count(&self.inner)
    }

    fn size_of(&self, id: SampleId) -> Option<u64> {
        DataSource::size_of(&self.inner, id)
    }
}

fn sample_bytes(id: SampleId, size: usize) -> Bytes {
    Bytes::from(vec![(id % 251) as u8; size])
}

/// A hot stack: all `n` samples pinned into a paced RAM tier; the
/// origin also holds everything, but no read should ever reach it.
fn hot_stack(n: u64, size: usize, service: Duration) -> TierStack {
    let ram = Arc::new(Paced {
        inner: MemoryBackend::new("ram", u64::MAX),
        service,
    });
    let origin = MemoryBackend::new("pfs", u64::MAX);
    for id in 0..n {
        DataSource::write(&origin, id, sample_bytes(id, size)).expect("origin preload");
    }
    let stack = TierStack::new(vec![ram, Arc::new(origin)], PromotePolicy::IfFits);
    for id in 0..n {
        stack.fill(0, id, sample_bytes(id, size)).expect("fill ram");
    }
    stack
}

/// Aggregate samples/second for `threads` readers doing `reads` each,
/// byte-checking every read.
fn throughput(stack: &TierStack, threads: u64, reads: u64, n: u64, size: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                for i in 0..reads {
                    let id = (t * reads + i).wrapping_mul(2_654_435_761) % n;
                    let data = stack.read(id).expect("hot read");
                    assert_eq!(data, sample_bytes(id, size), "bytes diverged for {id}");
                }
            });
        }
    });
    (threads * reads) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let n = 256u64;
    let size = 2048usize;
    let service = Duration::from_millis(2);
    let reads = 25u64;

    println!("=== hotpath — sharded fetch-path scaling smoke ===");

    // Check 1: scaling. Two readers must overlap their service times.
    let stack = hot_stack(n, size, service);
    let one = throughput(&stack, 1, reads, n, size);
    let two = throughput(&stack, 2, reads, n, size);
    let speedup = two / one;
    println!("    1 thread {one:>8.0} samples/s");
    println!("    2 threads {two:>7.0} samples/s ({speedup:.2}x)");
    assert!(
        speedup >= 1.5,
        "2 readers only {speedup:.2}x of 1 (need >=1.5x): fetch path serialized?"
    );

    // Check 2: stream equality. The vectored read returns exactly what
    // sequential reads return, on identical stacks.
    let seq_stack = hot_stack(n, size, service.min(Duration::from_micros(50)));
    let vec_stack = hot_stack(n, size, service.min(Duration::from_micros(50)));
    let ids: Vec<SampleId> = (0..n).rev().collect();
    let sequential: Vec<Bytes> = ids
        .iter()
        .map(|&id| seq_stack.read(id).expect("sequential read"))
        .collect();
    let vectored: Vec<Bytes> = vec_stack
        .read_many(&ids)
        .into_iter()
        .map(|r| r.expect("vectored read"))
        .collect();
    assert_eq!(sequential, vectored, "read_many diverged from read");

    // No read may ever have left the hot tier.
    for stack in [&stack, &seq_stack, &vec_stack] {
        let stats = stack.all_stats();
        assert_eq!(stats.last().expect("origin").hits, 0, "origin was read");
    }

    println!("    stream equality: read_many == sequential read over {n} samples");
    println!("    [PASS] scaling {speedup:.2}x (>=1.5x) and byte-identical streams");
}
