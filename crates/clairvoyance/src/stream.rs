//! Per-worker access streams.
//!
//! The access stream `R` of worker `i` (paper Sec. 4) is the concatenation
//! over epochs of the worker's per-epoch sample sequence:
//! `R = (B^{1,i}_1, B^{1,i}_2, …, B^{2,i}_1, …)`. NoPFS prefetches the
//! staging buffer strictly in `R` order (optimal-prefetching Rule 1) and
//! uses `R` to derive access frequencies and placement.
//!
//! Streams are exposed both lazily ([`AccessStream::iter`] generates one
//! epoch at a time, so a 90-epoch ImageNet stream never materializes) and
//! eagerly ([`AccessStream::materialize`]) for small cases and tests.

use crate::sampler::ShuffleSpec;
use crate::{SampleId, WorkerId};

/// The clairvoyantly-known access stream `R` of one worker across an
/// entire training run.
///
/// A pure view: two `AccessStream`s built from equal `(spec, worker,
/// epochs)` yield identical sequences, no matter which machine computes
/// them — this is what lets every worker know every other worker's
/// future accesses without communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessStream {
    spec: ShuffleSpec,
    worker: WorkerId,
    epochs: u64,
}

impl AccessStream {
    /// Creates the stream for `worker` over `epochs` epochs.
    ///
    /// # Panics
    /// Panics if the worker rank is out of range or `epochs == 0`.
    pub fn new(spec: ShuffleSpec, worker: WorkerId, epochs: u64) -> Self {
        assert!(
            worker < spec.num_workers,
            "worker {worker} out of range for {} workers",
            spec.num_workers
        );
        assert!(epochs > 0, "a training run has at least one epoch");
        Self {
            spec,
            worker,
            epochs,
        }
    }

    /// The generating spec.
    pub fn spec(&self) -> &ShuffleSpec {
        &self.spec
    }

    /// The worker whose stream this is.
    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    /// Number of training epochs covered.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Samples this worker consumes per epoch.
    pub fn epoch_len(&self) -> u64 {
        self.spec.worker_epoch_len(self.worker)
    }

    /// Total stream length `|R|`.
    pub fn len(&self) -> u64 {
        self.epoch_len() * self.epochs
    }

    /// Whether the stream is empty (only possible for degenerate specs
    /// where this worker receives no samples).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offset in `R` where epoch `e` begins.
    pub fn epoch_offset(&self, epoch: u64) -> u64 {
        assert!(epoch < self.epochs, "epoch {epoch} out of range");
        self.epoch_len() * epoch
    }

    /// This worker's sample sequence for one epoch.
    pub fn epoch_sequence(&self, epoch: u64) -> Vec<SampleId> {
        let mut perm = Vec::new();
        let mut out = Vec::new();
        self.epoch_sequence_into(epoch, &mut perm, &mut out);
        out
    }

    /// Fills `out` with this worker's sample sequence for one epoch,
    /// reusing both the scratch permutation buffer `perm` and `out`
    /// (the zero-alloc counterpart of
    /// [`AccessStream::epoch_sequence`]). `perm` is left holding the
    /// epoch's full global order.
    pub fn epoch_sequence_into(
        &self,
        epoch: u64,
        perm: &mut Vec<SampleId>,
        out: &mut Vec<SampleId>,
    ) {
        assert!(epoch < self.epochs, "epoch {epoch} out of range");
        self.spec.epoch_shuffle_into(epoch, perm);
        out.clear();
        out.extend(
            perm.iter()
                .skip(self.worker)
                .step_by(self.spec.num_workers)
                .copied(),
        );
    }

    /// Lazy iterator over the whole stream, one epoch generated at a
    /// time into reused buffers — the epoch-windowed cursor long runs
    /// use instead of materializing `8 · E · F/N` bytes.
    pub fn iter(&self) -> StreamIter {
        StreamIter {
            stream: *self,
            epoch: 0,
            perm: Vec::new(),
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Materializes the entire stream. Intended for tests and small runs;
    /// memory is `8 · E · F/N` bytes.
    pub fn materialize(&self) -> Vec<SampleId> {
        let mut out = Vec::with_capacity(self.len() as usize);
        let mut perm = Vec::new();
        for e in 0..self.epochs {
            self.spec.epoch_shuffle_into(e, &mut perm);
            out.extend(
                perm.iter()
                    .skip(self.worker)
                    .step_by(self.spec.num_workers)
                    .copied(),
            );
        }
        out
    }

    /// First position in `R` at which each sample appears, as a dense
    /// vector indexed by sample id (`u64::MAX` for samples this worker
    /// never accesses). Class prefetchers fetch their assigned samples in
    /// ascending first-access order (Rule 1 applied per class).
    pub fn first_access_positions(&self) -> Vec<u64> {
        let mut first = vec![u64::MAX; self.spec.num_samples as usize];
        let mut pos = 0u64;
        let mut perm = Vec::new();
        let mut seq = Vec::new();
        for e in 0..self.epochs {
            self.epoch_sequence_into(e, &mut perm, &mut seq);
            for &id in &seq {
                let slot = &mut first[id as usize];
                if *slot == u64::MAX {
                    *slot = pos;
                }
                pos += 1;
            }
        }
        first
    }
}

/// Lazy iterator over an [`AccessStream`]; see [`AccessStream::iter`].
#[derive(Debug, Clone)]
pub struct StreamIter {
    stream: AccessStream,
    epoch: u64,
    perm: Vec<SampleId>,
    buf: Vec<SampleId>,
    pos: usize,
}

impl Iterator for StreamIter {
    type Item = SampleId;

    fn next(&mut self) -> Option<SampleId> {
        if self.pos >= self.buf.len() {
            if self.epoch >= self.stream.epochs {
                return None;
            }
            let epoch = self.epoch;
            self.stream
                .epoch_sequence_into(epoch, &mut self.perm, &mut self.buf);
            self.epoch += 1;
            self.pos = 0;
            if self.buf.is_empty() {
                return None;
            }
        }
        let id = self.buf[self.pos];
        self.pos += 1;
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining_epochs = self.stream.epochs - self.epoch;
        let n = (self.buf.len() - self.pos) as u64 + remaining_epochs * self.stream.epoch_len();
        (n as usize, Some(n as usize))
    }
}

impl ExactSizeIterator for StreamIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(f: u64, n: usize) -> ShuffleSpec {
        ShuffleSpec::new(42, f, n, 4, false)
    }

    #[test]
    fn lazy_and_eager_agree() {
        let s = AccessStream::new(spec(101, 3), 1, 5);
        let eager = s.materialize();
        let lazy: Vec<SampleId> = s.iter().collect();
        assert_eq!(eager, lazy);
        assert_eq!(eager.len() as u64, s.len());
    }

    #[test]
    fn every_worker_can_compute_every_stream() {
        // The clairvoyance property: identical (spec, worker, epochs)
        // yields identical streams regardless of who computes them.
        let sp = spec(64, 4);
        for w in 0..4 {
            let a = AccessStream::new(sp, w, 3).materialize();
            let b = AccessStream::new(sp, w, 3).materialize();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn epoch_offsets_and_slices() {
        let s = AccessStream::new(spec(40, 2), 0, 4);
        assert_eq!(s.epoch_len(), 20);
        assert_eq!(s.epoch_offset(2), 40);
        let all = s.materialize();
        assert_eq!(&all[40..60], s.epoch_sequence(2).as_slice());
    }

    #[test]
    fn stream_len_accounts_for_uneven_split() {
        // 10 samples, 3 workers: lens 4,3,3.
        let sp = ShuffleSpec::new(9, 10, 3, 2, false);
        assert_eq!(AccessStream::new(sp, 0, 2).len(), 8);
        assert_eq!(AccessStream::new(sp, 1, 2).len(), 6);
        assert_eq!(AccessStream::new(sp, 2, 2).len(), 6);
    }

    #[test]
    fn first_access_positions_match_materialized() {
        let s = AccessStream::new(spec(30, 2), 0, 3);
        let first = s.first_access_positions();
        let all = s.materialize();
        for (id, &fpos) in first.iter().enumerate() {
            let found = all.iter().position(|&x| x == id as u64);
            match found {
                Some(p) => assert_eq!(fpos, p as u64, "sample {id}"),
                None => assert_eq!(fpos, u64::MAX, "sample {id}"),
            }
        }
    }

    #[test]
    fn exact_size_iterator() {
        let s = AccessStream::new(spec(25, 2), 1, 2);
        let mut it = s.iter();
        assert_eq!(it.len() as u64, s.len());
        it.next();
        assert_eq!(it.len() as u64, s.len() - 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_worker() {
        AccessStream::new(spec(10, 2), 2, 1);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn rejects_zero_epochs() {
        AccessStream::new(spec(10, 2), 0, 0);
    }

    #[test]
    fn per_epoch_access_exactly_once_across_workers() {
        let sp = spec(37, 3);
        let streams: Vec<_> = (0..3).map(|w| AccessStream::new(sp, w, 2)).collect();
        for e in 0..2 {
            let mut counts = [0u32; 37];
            for s in &streams {
                for id in s.epoch_sequence(e) {
                    counts[id as usize] += 1;
                }
            }
            assert!(counts.iter().all(|&c| c == 1));
        }
    }
}
