//! Seeded epoch shuffles and worker partitioning.
//!
//! One epoch of mini-batch SGD (paper Sec. 2): shuffle the indices
//! `0..F` with a PRNG seeded from `(job_seed, epoch)`, then hand worker
//! `i` of `N` the strided positions `i, i+N, i+2N, …` of the shuffle —
//! the semantics of PyTorch's `DistributedSampler`, which the paper's
//! implementation wraps. Consecutive runs of `b` samples form the
//! worker's local mini-batches (global batch size `B = N·b`).
//!
//! Everything here is a pure function of [`ShuffleSpec`] and the epoch
//! number, which is precisely the clairvoyance property: any worker can
//! evaluate any other worker's sequence.

use crate::{SampleId, WorkerId};
use nopfs_util::rng::{mix64, Xoshiro256pp};

/// Parameters that fully determine every worker's access order for an
/// entire training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShuffleSpec {
    /// Seed of the PRNG generating the access stream (the paper's "given
    /// the seed…" premise).
    pub seed: u64,
    /// Number of samples in the dataset (`F` in Table 2).
    pub num_samples: u64,
    /// Number of workers (`N`).
    pub num_workers: usize,
    /// Per-worker mini-batch size (`b_i`; the paper's global batch is
    /// `B = N·b`).
    pub batch_size: usize,
    /// If true, drop the trailing partial global batch each epoch so all
    /// iterations are full (the paper's `⌊F/B⌋` case); if false, keep the
    /// small final iteration (`⌈F/B⌉`).
    pub drop_last: bool,
}

impl ShuffleSpec {
    /// Creates a spec, validating parameters.
    ///
    /// # Panics
    /// Panics if there are zero samples, workers, or batch size, or if
    /// `drop_last` would drop the whole dataset (fewer samples than one
    /// global batch).
    pub fn new(
        seed: u64,
        num_samples: u64,
        num_workers: usize,
        batch_size: usize,
        drop_last: bool,
    ) -> Self {
        assert!(num_samples > 0, "dataset must contain samples");
        assert!(num_workers > 0, "need at least one worker");
        assert!(batch_size > 0, "batch size must be positive");
        let global_batch = (num_workers * batch_size) as u64;
        if drop_last {
            assert!(
                num_samples >= global_batch,
                "drop_last would drop the entire dataset \
                 ({num_samples} samples < global batch {global_batch})"
            );
        }
        Self {
            seed,
            num_samples,
            num_workers,
            batch_size,
            drop_last,
        }
    }

    /// Global batch size `B = N·b`.
    pub fn global_batch(&self) -> u64 {
        (self.num_workers * self.batch_size) as u64
    }

    /// Number of samples actually consumed per epoch (equals
    /// `num_samples`, or the largest multiple of the global batch when
    /// `drop_last`).
    pub fn samples_per_epoch(&self) -> u64 {
        if self.drop_last {
            self.num_samples - self.num_samples % self.global_batch()
        } else {
            self.num_samples
        }
    }

    /// Iterations (global mini-batches) per epoch: `⌊F/B⌋` or `⌈F/B⌉`
    /// (paper Sec. 4).
    pub fn iterations_per_epoch(&self) -> u64 {
        if self.drop_last {
            self.samples_per_epoch() / self.global_batch()
        } else {
            self.num_samples.div_ceil(self.global_batch())
        }
    }

    /// Derives the epoch-`e` shuffle seed. Stateless, so epoch `e` can be
    /// generated without generating epochs `0..e`.
    fn epoch_seed(&self, epoch: u64) -> u64 {
        mix64(self.seed, epoch)
    }

    /// Generates the full epoch-`e` shuffle (an [`EpochShuffle`]).
    pub fn epoch_shuffle(&self, epoch: u64) -> EpochShuffle {
        let mut rng = Xoshiro256pp::seed_from_u64(self.epoch_seed(epoch));
        let mut perm = rng.permutation(self.num_samples);
        perm.truncate(self.samples_per_epoch() as usize);
        EpochShuffle {
            spec: *self,
            epoch,
            perm,
        }
    }

    /// Number of samples worker `worker` consumes in one epoch.
    ///
    /// Without `drop_last` the final partial global batch is split
    /// among the lowest-ranked workers, so counts may differ by one.
    pub fn worker_epoch_len(&self, worker: WorkerId) -> u64 {
        assert!(worker < self.num_workers, "worker {worker} out of range");
        let n = self.num_workers as u64;
        let total = self.samples_per_epoch();
        let base = total / n;
        let extra = total % n;
        base + u64::from((worker as u64) < extra)
    }
}

/// One epoch's shuffled index sequence, with worker partitioning views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochShuffle {
    spec: ShuffleSpec,
    epoch: u64,
    perm: Vec<SampleId>,
}

impl EpochShuffle {
    /// The epoch this shuffle belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The full (possibly `drop_last`-truncated) shuffled sequence of
    /// sample ids consumed this epoch, in global consumption order.
    pub fn global_order(&self) -> &[SampleId] {
        &self.perm
    }

    /// Worker `worker`'s sample sequence for this epoch: strided
    /// positions `worker, worker+N, …` of the global order.
    pub fn worker_sequence(&self, worker: WorkerId) -> Vec<SampleId> {
        assert!(
            worker < self.spec.num_workers,
            "worker {worker} out of range"
        );
        self.perm
            .iter()
            .skip(worker)
            .step_by(self.spec.num_workers)
            .copied()
            .collect()
    }

    /// Worker `worker`'s sequence split into its local mini-batches (all
    /// of size `batch_size` except possibly the last).
    pub fn worker_batches(&self, worker: WorkerId) -> Vec<Vec<SampleId>> {
        let seq = self.worker_sequence(worker);
        seq.chunks(self.spec.batch_size)
            .map(|c| c.to_vec())
            .collect()
    }

    /// Which worker consumes the sample at global position `pos`.
    pub fn owner_of_position(&self, pos: usize) -> WorkerId {
        pos % self.spec.num_workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn spec(f: u64, n: usize, b: usize, drop_last: bool) -> ShuffleSpec {
        ShuffleSpec::new(1234, f, n, b, drop_last)
    }

    #[test]
    fn epoch_shuffle_is_permutation() {
        let s = spec(1000, 4, 8, false);
        let shuf = s.epoch_shuffle(0);
        let set: HashSet<_> = shuf.global_order().iter().collect();
        assert_eq!(set.len(), 1000);
        assert_eq!(shuf.global_order().len(), 1000);
    }

    #[test]
    fn different_epochs_shuffle_differently() {
        let s = spec(500, 2, 4, false);
        let a = s.epoch_shuffle(0);
        let b = s.epoch_shuffle(1);
        assert_ne!(a.global_order(), b.global_order());
    }

    #[test]
    fn shuffle_is_reproducible() {
        let s = spec(500, 2, 4, false);
        assert_eq!(
            s.epoch_shuffle(7).global_order(),
            s.epoch_shuffle(7).global_order()
        );
    }

    #[test]
    fn epoch_generation_is_random_access() {
        // Epoch 5's shuffle must not depend on having generated 0..5.
        let s = spec(100, 2, 4, false);
        let direct = s.epoch_shuffle(5);
        for e in 0..5 {
            let _ = s.epoch_shuffle(e);
        }
        assert_eq!(direct.global_order(), s.epoch_shuffle(5).global_order());
    }

    #[test]
    fn workers_partition_each_epoch() {
        let s = spec(103, 4, 8, false);
        let shuf = s.epoch_shuffle(3);
        let mut all: Vec<SampleId> = vec![];
        for w in 0..4 {
            all.extend(shuf.worker_sequence(w));
        }
        all.sort_unstable();
        let mut expect: Vec<SampleId> = shuf.global_order().to_vec();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn strided_assignment_matches_pytorch_distributed_sampler() {
        let s = spec(10, 2, 2, false);
        let shuf = s.epoch_shuffle(0);
        let g = shuf.global_order().to_vec();
        assert_eq!(shuf.worker_sequence(0), vec![g[0], g[2], g[4], g[6], g[8]]);
        assert_eq!(shuf.worker_sequence(1), vec![g[1], g[3], g[5], g[7], g[9]]);
    }

    #[test]
    fn drop_last_truncates_to_global_batches() {
        let s = spec(103, 4, 8, true); // B = 32; 103 -> 96
        assert_eq!(s.samples_per_epoch(), 96);
        assert_eq!(s.iterations_per_epoch(), 3);
        let shuf = s.epoch_shuffle(0);
        assert_eq!(shuf.global_order().len(), 96);
        for w in 0..4 {
            assert_eq!(shuf.worker_sequence(w).len(), 24);
            assert_eq!(s.worker_epoch_len(w), 24);
        }
    }

    #[test]
    fn keep_last_preserves_every_sample() {
        let s = spec(103, 4, 8, false);
        assert_eq!(s.samples_per_epoch(), 103);
        assert_eq!(s.iterations_per_epoch(), 4); // ceil(103/32)
        let lens: Vec<u64> = (0..4).map(|w| s.worker_epoch_len(w)).collect();
        assert_eq!(lens.iter().sum::<u64>(), 103);
        // 103 = 4*25 + 3: workers 0..3 get 26, worker 3 gets 25.
        assert_eq!(lens, vec![26, 26, 26, 25]);
        let shuf = s.epoch_shuffle(0);
        for (w, &len) in lens.iter().enumerate() {
            assert_eq!(shuf.worker_sequence(w).len() as u64, len);
        }
    }

    #[test]
    fn worker_batches_chunked_correctly() {
        let s = spec(20, 2, 3, false);
        let shuf = s.epoch_shuffle(0);
        let batches = shuf.worker_batches(0);
        // Worker 0 gets 10 samples -> batches of 3,3,3,1.
        let sizes: Vec<usize> = batches.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        let flat: Vec<SampleId> = batches.into_iter().flatten().collect();
        assert_eq!(flat, shuf.worker_sequence(0));
    }

    #[test]
    fn owner_of_position_round_robin() {
        let s = spec(16, 4, 2, false);
        let shuf = s.epoch_shuffle(0);
        assert_eq!(shuf.owner_of_position(0), 0);
        assert_eq!(shuf.owner_of_position(5), 1);
        assert_eq!(shuf.owner_of_position(7), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn worker_sequence_bounds_checked() {
        let s = spec(10, 2, 2, false);
        s.epoch_shuffle(0).worker_sequence(2);
    }

    #[test]
    #[should_panic(expected = "drop the entire dataset")]
    fn drop_last_rejects_tiny_dataset() {
        spec(5, 4, 8, true);
    }

    #[test]
    fn exactly_once_per_epoch_property() {
        // "a given sample is accessed exactly once in each epoch" (Sec. 2)
        let s = spec(257, 3, 5, false);
        for e in 0..4 {
            let shuf = s.epoch_shuffle(e);
            let mut counts = vec![0u32; 257];
            for w in 0..3 {
                for id in shuf.worker_sequence(w) {
                    counts[id as usize] += 1;
                }
            }
            assert!(counts.iter().all(|&c| c == 1), "epoch {e} not exactly-once");
        }
    }
}
