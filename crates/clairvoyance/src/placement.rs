//! Frequency-ranked assignment of samples to storage classes
//! (paper Sec. 5.1, "the last step is to define the fetch order").
//!
//! From the performance-model analysis the paper concludes: cache the
//! samples a worker accesses most frequently in its *fastest* storage
//! class, continue into slower classes, and stop when the dataset is
//! exhausted or local storage is full. Because access frequencies are a
//! pure function of the seed, **every worker computes every other
//! worker's assignment locally** — the distributed placement map needs no
//! metadata traffic at all.
//!
//! Within a class, samples are prefetched in order of their first access
//! in the worker's stream `R` (Rule 1 applied per class), so that data
//! needed early is cached early and no prestaging phase is required.

use crate::engine::{SetupArtifacts, SetupOptions, SetupPass};
use crate::sampler::ShuffleSpec;
use crate::{SampleId, WorkerId};

/// Sentinel: sample not assigned to any local storage class.
pub const UNASSIGNED: u8 = u8::MAX;

/// One worker's mapping of samples to its local storage classes.
///
/// Class indices are local-storage classes ordered fastest-first
/// (class 0 here is the fastest *cache* class, e.g. RAM — the staging
/// buffer is managed separately and never holds long-term assignments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheAssignment {
    /// `class_of[k]` = storage class caching sample `k`, or [`UNASSIGNED`].
    class_of: Vec<u8>,
    /// Per class: assigned samples in prefetch order (ascending first
    /// access in `R`; never-accessed samples last, by id).
    prefetch_order: Vec<Vec<SampleId>>,
    /// Bytes assigned per class.
    used_bytes: Vec<u64>,
}

impl CacheAssignment {
    /// Computes the assignment for one worker.
    ///
    /// * `frequencies` — `r_k` for this worker (from
    ///   [`crate::frequency::FrequencyTable`]).
    /// * `first_access` — first position of each sample in this worker's
    ///   `R` (`u64::MAX` if never accessed), from
    ///   [`crate::stream::AccessStream::first_access_positions`].
    /// * `sizes` — per-sample sizes in bytes.
    /// * `capacities` — capacity in bytes of each local storage class,
    ///   fastest first (`d_j` in Table 2).
    ///
    /// Ranking is by frequency descending with sample id as the
    /// deterministic tie-break; classes are filled greedily in rank
    /// order, skipping samples that no longer fit (first-fit by rank).
    ///
    /// # Panics
    /// Panics if the per-sample slices disagree in length or more than
    /// 254 storage classes are given (class 255 is the
    /// [`UNASSIGNED`] sentinel).
    pub fn compute(
        frequencies: &[u16],
        first_access: &[u64],
        sizes: &[u64],
        capacities: &[u64],
    ) -> Self {
        let f = frequencies.len();
        assert_eq!(f, first_access.len(), "first_access length mismatch");
        assert_eq!(f, sizes.len(), "sizes length mismatch");
        assert!(capacities.len() < usize::from(u8::MAX), "too many classes");

        // Rank: frequency desc, id asc. Sorting indices avoids moving the
        // payload vectors.
        let mut rank: Vec<u32> = (0..f as u32).collect();
        rank.sort_unstable_by(|&a, &b| {
            frequencies[b as usize]
                .cmp(&frequencies[a as usize])
                .then(a.cmp(&b))
        });

        let mut class_of = vec![UNASSIGNED; f];
        let mut used_bytes = vec![0u64; capacities.len()];
        let mut per_class: Vec<Vec<SampleId>> = vec![Vec::new(); capacities.len()];
        let mut cursor = 0usize;
        for (j, &cap) in capacities.iter().enumerate() {
            let mut used = 0u64;
            // Samples skipped for this class (too big for the remaining
            // space) are reconsidered for the next class, so we walk the
            // rank list once per class starting from the first
            // still-unassigned entry.
            let mut next_cursor = None;
            for (idx, &ranked) in rank.iter().enumerate().skip(cursor) {
                let k = ranked as usize;
                if class_of[k] != UNASSIGNED {
                    continue;
                }
                let s = sizes[k];
                if used + s <= cap {
                    class_of[k] = j as u8;
                    used += s;
                    per_class[j].push(k as SampleId);
                } else if next_cursor.is_none() {
                    next_cursor = Some(idx);
                }
            }
            used_bytes[j] = used;
            cursor = next_cursor.unwrap_or(f);
            if cursor >= f {
                break;
            }
        }

        // Prefetch order within each class: ascending first access,
        // never-accessed (u64::MAX) last, id as the tie-break.
        for list in &mut per_class {
            list.sort_unstable_by_key(|&k| (first_access[k as usize], k));
        }

        Self {
            class_of,
            prefetch_order: per_class,
            used_bytes,
        }
    }

    /// Storage class holding `sample`, if assigned locally.
    pub fn class_of(&self, sample: SampleId) -> Option<u8> {
        match self.class_of[sample as usize] {
            UNASSIGNED => None,
            c => Some(c),
        }
    }

    /// Dense class map (`UNASSIGNED` marks unassigned samples).
    pub fn class_map(&self) -> &[u8] {
        &self.class_of
    }

    /// Samples assigned to class `j` in prefetch order.
    pub fn prefetch_order(&self, class: usize) -> &[SampleId] {
        &self.prefetch_order[class]
    }

    /// Number of storage classes.
    pub fn num_classes(&self) -> usize {
        self.prefetch_order.len()
    }

    /// Bytes assigned to class `j`.
    pub fn used_bytes(&self, class: usize) -> u64 {
        self.used_bytes[class]
    }

    /// Total samples assigned to any local class.
    pub fn assigned_count(&self) -> u64 {
        self.prefetch_order.iter().map(|v| v.len() as u64).sum()
    }
}

/// The cluster-wide placement map: which workers cache which sample in
/// which class. Computed independently (and identically) by every worker
/// from the shared seed.
#[derive(Debug, Clone)]
pub struct GlobalPlacement {
    assignments: Vec<CacheAssignment>,
    /// `holders[k]` = (worker, class) pairs caching sample `k`.
    holders: Vec<Vec<(WorkerId, u8)>>,
}

impl GlobalPlacement {
    /// Computes placement for all workers of a job.
    ///
    /// `capacities[w]` lists worker `w`'s storage-class capacities,
    /// fastest first. Workers may have heterogeneous hierarchies.
    ///
    /// Runs a dedicated [`SetupPass`] (no stream materialization) to
    /// obtain the frequency and first-access inputs in O(E·F); setup
    /// paths that already hold [`SetupArtifacts`] should call
    /// [`GlobalPlacement::from_artifacts`] instead of paying a second
    /// pass.
    ///
    /// # Panics
    /// Panics if `capacities` does not cover every worker or `sizes`
    /// does not cover every sample.
    pub fn compute(
        spec: &ShuffleSpec,
        epochs: u64,
        sizes: &[u64],
        capacities: &[Vec<u64>],
    ) -> Self {
        let artifacts = SetupPass::with_options(
            *spec,
            epochs,
            SetupOptions {
                materialize_streams: false,
            },
        )
        .run();
        Self::from_artifacts(&artifacts, sizes, capacities)
    }

    /// Computes placement from precomputed [`SetupArtifacts`] without
    /// regenerating any shuffle.
    ///
    /// # Panics
    /// Panics if `capacities` does not cover every worker or `sizes`
    /// does not cover every sample.
    pub fn from_artifacts(
        artifacts: &SetupArtifacts,
        sizes: &[u64],
        capacities: &[Vec<u64>],
    ) -> Self {
        let spec = artifacts.spec();
        assert_eq!(
            capacities.len(),
            spec.num_workers,
            "capacities must cover every worker"
        );
        assert_eq!(
            sizes.len() as u64,
            spec.num_samples,
            "sizes must cover every sample"
        );
        let assignments: Vec<CacheAssignment> = (0..spec.num_workers)
            .map(|w| {
                CacheAssignment::compute(
                    artifacts.table.counts(w),
                    &artifacts.first_access[w],
                    sizes,
                    &capacities[w],
                )
            })
            .collect();

        let mut holders: Vec<Vec<(WorkerId, u8)>> = vec![Vec::new(); spec.num_samples as usize];
        for (w, a) in assignments.iter().enumerate() {
            for (k, &c) in a.class_map().iter().enumerate() {
                if c != UNASSIGNED {
                    holders[k].push((w, c));
                }
            }
        }
        Self {
            assignments,
            holders,
        }
    }

    /// Worker `w`'s assignment.
    pub fn assignment(&self, worker: WorkerId) -> &CacheAssignment {
        &self.assignments[worker]
    }

    /// All `(worker, class)` pairs that cache `sample`.
    pub fn holders(&self, sample: SampleId) -> &[(WorkerId, u8)] {
        &self.holders[sample as usize]
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.assignments.len()
    }

    /// Fraction of the dataset cached by at least one worker — DeepIO
    /// and sharding baselines use this to report dataset coverage.
    pub fn coverage(&self) -> f64 {
        let covered = self.holders.iter().filter(|h| !h.is_empty()).count();
        covered as f64 / self.holders.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highest_frequency_goes_to_fastest_class() {
        let freq = [5u16, 1, 3, 9, 0];
        let first = [0u64, 10, 5, 2, u64::MAX];
        let sizes = [10u64; 5];
        // Class 0 fits two samples, class 1 fits two more.
        let a = CacheAssignment::compute(&freq, &first, &sizes, &[20, 20]);
        // Rank: 3(9), 0(5), 2(3), 1(1), 4(0).
        assert_eq!(a.class_of(3), Some(0));
        assert_eq!(a.class_of(0), Some(0));
        assert_eq!(a.class_of(2), Some(1));
        assert_eq!(a.class_of(1), Some(1));
        assert_eq!(a.class_of(4), None);
        assert_eq!(a.used_bytes(0), 20);
        assert_eq!(a.used_bytes(1), 20);
    }

    #[test]
    fn prefetch_order_follows_first_access() {
        let freq = [5u16, 5, 5, 5];
        let first = [30u64, 10, 20, 0];
        let sizes = [1u64; 4];
        let a = CacheAssignment::compute(&freq, &first, &sizes, &[4]);
        assert_eq!(a.prefetch_order(0), &[3, 1, 2, 0]);
    }

    #[test]
    fn capacity_is_respected_with_skip() {
        let freq = [9u16, 8, 7];
        let first = [0u64, 1, 2];
        let sizes = [10u64, 100, 10];
        // Sample 1 (freq 8) does not fit class 0; sample 2 does.
        let a = CacheAssignment::compute(&freq, &first, &sizes, &[25, 150]);
        assert_eq!(a.class_of(0), Some(0));
        assert_eq!(a.class_of(2), Some(0));
        assert_eq!(a.class_of(1), Some(1));
        assert!(a.used_bytes(0) <= 25);
    }

    #[test]
    fn zero_capacity_class_gets_nothing() {
        let freq = [1u16, 2];
        let first = [0u64, 1];
        let sizes = [5u64, 5];
        let a = CacheAssignment::compute(&freq, &first, &sizes, &[0, 10]);
        assert_eq!(a.prefetch_order(0), &[] as &[SampleId]);
        assert_eq!(a.assigned_count(), 2);
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let freq = [3u16, 3, 3];
        let first = [0u64, 1, 2];
        let sizes = [1u64; 3];
        let a = CacheAssignment::compute(&freq, &first, &sizes, &[2]);
        // Equal frequencies: ids 0 and 1 win.
        assert_eq!(a.class_of(0), Some(0));
        assert_eq!(a.class_of(1), Some(0));
        assert_eq!(a.class_of(2), None);
    }

    #[test]
    fn no_local_storage_assigns_nothing() {
        let freq = [1u16; 3];
        let first = [0u64, 1, 2];
        let sizes = [1u64; 3];
        let a = CacheAssignment::compute(&freq, &first, &sizes, &[]);
        assert_eq!(a.assigned_count(), 0);
        assert_eq!(a.class_of(0), None);
        assert_eq!(a.num_classes(), 0);
    }

    fn small_placement() -> (ShuffleSpec, GlobalPlacement) {
        let spec = ShuffleSpec::new(11, 100, 4, 4, false);
        let sizes = vec![10u64; 100];
        let caps = vec![vec![120u64, 200u64]; 4]; // 12 + 20 samples/worker
        let p = GlobalPlacement::compute(&spec, 10, &sizes, &caps);
        (spec, p)
    }

    #[test]
    fn global_placement_is_consistent() {
        let (_, p) = small_placement();
        // holders() must agree with per-worker class maps.
        for k in 0..100u64 {
            for &(w, c) in p.holders(k) {
                assert_eq!(p.assignment(w).class_of(k), Some(c));
            }
        }
        for w in 0..4 {
            for k in 0..100u64 {
                if let Some(c) = p.assignment(w).class_of(k) {
                    assert!(p.holders(k).contains(&(w, c)));
                }
            }
        }
    }

    #[test]
    fn from_artifacts_matches_compute() {
        let spec = ShuffleSpec::new(11, 100, 4, 4, false);
        let sizes = vec![10u64; 100];
        let caps = vec![vec![120u64, 200u64]; 4];
        let direct = GlobalPlacement::compute(&spec, 10, &sizes, &caps);
        let arts = SetupPass::new(spec, 10).run();
        let via_arts = GlobalPlacement::from_artifacts(&arts, &sizes, &caps);
        for w in 0..4 {
            assert_eq!(direct.assignment(w), via_arts.assignment(w));
        }
    }

    #[test]
    fn every_worker_computes_identical_placement() {
        // Clairvoyance: placement is a pure function of the spec.
        let (spec, p1) = small_placement();
        let sizes = vec![10u64; 100];
        let caps = vec![vec![120u64, 200u64]; 4];
        let p2 = GlobalPlacement::compute(&spec, 10, &sizes, &caps);
        for w in 0..4 {
            assert_eq!(p1.assignment(w), p2.assignment(w));
        }
    }

    #[test]
    fn coverage_full_when_each_worker_holds_dataset() {
        // "until either it has cached the entire dataset or filled its
        // local storage": ample capacity means every worker caches all.
        let spec = ShuffleSpec::new(11, 100, 4, 4, false);
        let sizes = vec![10u64; 100];
        let caps = vec![vec![2_000u64]; 4];
        let p = GlobalPlacement::compute(&spec, 10, &sizes, &caps);
        assert_eq!(p.coverage(), 1.0);
        for w in 0..4 {
            assert_eq!(p.assignment(w).assigned_count(), 100);
        }
    }

    #[test]
    fn coverage_high_but_partial_with_moderate_storage() {
        // Each worker caches its own hottest samples; globally-cold
        // samples can be missed even when aggregate capacity exceeds the
        // dataset (the policy optimizes fetch time, not coverage).
        let (_, p) = small_placement();
        assert!(p.coverage() > 0.5 && p.coverage() <= 1.0);
    }

    #[test]
    fn coverage_partial_when_storage_scarce() {
        let spec = ShuffleSpec::new(11, 100, 2, 4, false);
        let sizes = vec![10u64; 100];
        let caps = vec![vec![100u64]; 2]; // 10 samples each, 100 total
        let p = GlobalPlacement::compute(&spec, 4, &sizes, &caps);
        assert!(p.coverage() <= 0.2 + 1e-9);
        assert!(p.coverage() > 0.0);
    }

    #[test]
    #[should_panic(expected = "cover every worker")]
    fn rejects_wrong_capacity_count() {
        let spec = ShuffleSpec::new(1, 10, 2, 2, false);
        GlobalPlacement::compute(&spec, 1, &[1; 10], &[vec![10]]);
    }
}
