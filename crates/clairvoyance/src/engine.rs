//! The single-pass clairvoyance engine.
//!
//! The paper claims the clairvoyant precomputation "is fast — a few
//! passes over the shuffles". The naive composition of this crate's
//! building blocks is *not* that: computing every worker's digest,
//! stream, frequency table, and placement inputs independently
//! regenerates the epoch shuffles once per (consumer, epoch) — an
//! O(N·E·F) setup per process, and O(N²·E·F) across a cluster where
//! every rank rederives every rank's artifacts.
//!
//! [`SetupPass`] restores the paper's cost: **one** streaming pass over
//! epochs `0..E` that generates each epoch shuffle exactly once, into a
//! reused buffer, and derives every setup artifact from that single
//! scan:
//!
//! - all `N` per-worker stream digests (the setup-allgather values),
//! - the full [`FrequencyTable`],
//! - each worker's first-access positions (the placement inputs),
//! - optionally the materialized per-worker streams.
//!
//! Total cost: `O(E·F)` time and one `O(F)` scratch buffer, regardless
//! of the worker count. For runs too long to materialize, skip the
//! streams (`materialize_streams = false`) and iterate epoch-windowed
//! via [`crate::stream::AccessStream::iter`], which reuses its buffers.
//!
//! Every artifact is bit-identical to what the per-consumer paths
//! produce (`FrequencyTable::build`, `AccessStream::materialize`,
//! `AccessStream::first_access_positions`, a [`stream_digest`] fold) —
//! property-tested in `tests/engine_equivalence.rs`.

use crate::frequency::FrequencyTable;
use crate::placement::GlobalPlacement;
use crate::sampler::ShuffleSpec;
use crate::stream::AccessStream;
use crate::{SampleId, WorkerId};
use nopfs_util::rng::mix64;
use std::sync::Arc;

/// Initial accumulator of a worker's stream digest.
const DIGEST_SEED: u64 = 0xC1A1_5C0D;

/// Digest of one worker's entire access stream, derived lazily from
/// the spec (the reference implementation the engine's cached digests
/// are checked against). Runtime setup should use
/// [`SetupArtifacts::digests`] instead of calling this per rank —
/// that is exactly the O(N²·E·F) path the engine exists to kill.
pub fn stream_digest(spec: &ShuffleSpec, worker: WorkerId, epochs: u64) -> u64 {
    let stream = AccessStream::new(*spec, worker, epochs);
    let mut acc = DIGEST_SEED ^ worker as u64;
    for id in stream.iter() {
        acc = mix64(acc, id);
    }
    acc
}

/// The one epoch loop every engine entry point shares: generates each
/// epoch shuffle exactly once into a reused buffer and visits every
/// position as `(owning worker, sample id)`, in global consumption
/// order. Keeping this loop in one place is what makes the engine's
/// bit-identity guarantees reviewable: every artifact is a fold over
/// this exact visitation order.
fn scan_epochs(spec: &ShuffleSpec, epochs: u64, mut visit: impl FnMut(usize, SampleId)) {
    assert!(epochs > 0, "a training run has at least one epoch");
    let n = spec.num_workers;
    let mut perm: Vec<SampleId> = Vec::new();
    for e in 0..epochs {
        spec.epoch_shuffle_into(e, &mut perm);
        for (pos, &id) in perm.iter().enumerate() {
            visit(pos % n, id);
        }
    }
}

/// Materializes every worker's access stream in one pass — E epoch
/// generations total, each into a reused buffer — without the
/// frequency/first-access/digest bookkeeping of a full [`SetupPass`].
/// Each returned stream equals [`AccessStream::materialize`] for that
/// rank. For loaders (e.g. baselines) that need only the streams.
///
/// # Panics
/// Panics if `epochs == 0`.
pub fn materialize_all_streams(spec: &ShuffleSpec, epochs: u64) -> Vec<Arc<Vec<SampleId>>> {
    let mut streams: Vec<Vec<SampleId>> = (0..spec.num_workers)
        .map(|w| Vec::with_capacity((spec.worker_epoch_len(w) * epochs) as usize))
        .collect();
    scan_epochs(spec, epochs, |w, id| streams[w].push(id));
    streams.into_iter().map(Arc::new).collect()
}

/// Configuration of a [`SetupPass`].
#[derive(Debug, Clone, Copy)]
pub struct SetupOptions {
    /// Materialize every worker's access stream (`8·E·F` bytes total
    /// across workers). Disable for long runs that iterate lazily.
    pub materialize_streams: bool,
}

impl Default for SetupOptions {
    fn default() -> Self {
        Self {
            materialize_streams: true,
        }
    }
}

/// The single streaming pass; see the module docs.
pub struct SetupPass {
    spec: ShuffleSpec,
    epochs: u64,
    options: SetupOptions,
}

/// Everything job setup needs, derived from one pass over the shuffles.
#[derive(Debug, Clone)]
pub struct SetupArtifacts {
    spec: ShuffleSpec,
    epochs: u64,
    /// Per-worker access-stream digests (the setup-allgather values);
    /// equal to [`stream_digest`] for every rank.
    pub digests: Vec<u64>,
    /// The full per-worker frequency table.
    pub table: FrequencyTable,
    /// `first_access[w][k]` = first position of sample `k` in worker
    /// `w`'s stream (`u64::MAX` if never accessed); equal to
    /// [`AccessStream::first_access_positions`].
    pub first_access: Vec<Vec<u64>>,
    /// Materialized per-worker streams (when requested); each equal to
    /// [`AccessStream::materialize`]. Behind `Arc` so workers can share
    /// them without copying.
    pub streams: Option<Vec<Arc<Vec<SampleId>>>>,
    /// Epoch shuffles generated by this pass — always exactly `E`, the
    /// counter behind the O(E) setup guarantee.
    pub shuffles_generated: u64,
}

impl SetupPass {
    /// A pass over `epochs` epochs of `spec` with default options
    /// (streams materialized).
    ///
    /// # Panics
    /// Panics if `epochs == 0`.
    pub fn new(spec: ShuffleSpec, epochs: u64) -> Self {
        Self::with_options(spec, epochs, SetupOptions::default())
    }

    /// A pass with explicit [`SetupOptions`].
    pub fn with_options(spec: ShuffleSpec, epochs: u64, options: SetupOptions) -> Self {
        assert!(epochs > 0, "a training run has at least one epoch");
        Self {
            spec,
            epochs,
            options,
        }
    }

    /// Runs the pass and returns every artifact.
    pub fn run(&self) -> SetupArtifacts {
        let spec = &self.spec;
        let n = spec.num_workers;
        let f = spec.num_samples as usize;

        let mut digests: Vec<u64> = (0..n).map(|w| DIGEST_SEED ^ w as u64).collect();
        let mut counts = vec![vec![0u16; f]; n];
        let mut first_access = vec![vec![u64::MAX; f]; n];
        // Position of each worker's next sample within its own stream.
        let mut stream_pos = vec![0u64; n];
        let mut streams: Option<Vec<Vec<SampleId>>> = self.options.materialize_streams.then(|| {
            (0..n)
                .map(|w| Vec::with_capacity((spec.worker_epoch_len(w) * self.epochs) as usize))
                .collect()
        });

        // The scan visits each worker's samples in exactly its stream
        // order, so the digest fold, first-access bookkeeping, and
        // stream append all see the same order the per-worker paths
        // would produce.
        scan_epochs(spec, self.epochs, |w, id| {
            let k = id as usize;
            digests[w] = mix64(digests[w], id);
            counts[w][k] += 1;
            if first_access[w][k] == u64::MAX {
                first_access[w][k] = stream_pos[w];
            }
            stream_pos[w] += 1;
            if let Some(streams) = &mut streams {
                streams[w].push(id);
            }
        });

        SetupArtifacts {
            spec: *spec,
            epochs: self.epochs,
            digests,
            table: FrequencyTable::from_counts(counts, self.epochs),
            first_access,
            streams: streams.map(|s| s.into_iter().map(Arc::new).collect()),
            shuffles_generated: self.epochs,
        }
    }
}

impl SetupArtifacts {
    /// The generating spec.
    pub fn spec(&self) -> &ShuffleSpec {
        &self.spec
    }

    /// Number of epochs covered.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Number of workers covered.
    pub fn num_workers(&self) -> usize {
        self.digests.len()
    }

    /// Worker `w`'s materialized stream.
    ///
    /// # Panics
    /// Panics if the pass ran with `materialize_streams = false`.
    pub fn stream(&self, worker: WorkerId) -> &Arc<Vec<SampleId>> {
        &self
            .streams
            .as_ref()
            .expect("pass ran without stream materialization")[worker]
    }

    /// Computes the cluster-wide placement from the artifacts without
    /// regenerating any shuffle (see
    /// [`GlobalPlacement::from_artifacts`]).
    pub fn placement(&self, sizes: &[u64], capacities: &[Vec<u64>]) -> GlobalPlacement {
        GlobalPlacement::from_artifacts(self, sizes, capacities)
    }

    /// Incrementally replans for a changed membership: rebuilds every
    /// setup artifact for `new_workers` ranks by re-splitting the
    /// cached streams, **without regenerating a single epoch shuffle**
    /// (`shuffles_generated` of the result is 0, and the global
    /// [`crate::sampler::epoch_shuffles_generated`] counter does not
    /// advance).
    ///
    /// This is what makes elastic recovery cheap and replay-exact: the
    /// epoch seed involves only `(seed, epoch)` — never the worker
    /// count — so the global consumption order at epoch `e` is the same
    /// permutation for any membership, merely dealt round-robin to a
    /// different number of ranks. The global order is reconstructed
    /// from the cached per-worker streams (position `pos` of epoch `e`
    /// lives at index `e·len(w) + pos/n` of worker `pos % n`'s stream)
    /// and folded into fresh digests, frequency table, first-access
    /// positions, and streams for the new membership. The result is
    /// bit-identical to a full [`SetupPass`] at `new_workers` — at the
    /// cost of a re-split instead of `E` Fisher–Yates generations.
    ///
    /// # Panics
    /// Panics if `new_workers == 0`, if this pass skipped stream
    /// materialization, or if the membership change would alter the
    /// epoch length (only possible with `drop_last`, whose truncation
    /// depends on the global batch `N·b` — elastic runs require
    /// `drop_last = false` or an unchanged `samples_per_epoch`).
    pub fn replan(&self, new_workers: usize) -> SetupArtifacts {
        assert!(new_workers > 0, "a job keeps at least one worker");
        let old = &self.spec;
        let cached = self
            .streams
            .as_ref()
            .expect("replan needs materialized streams (pass ran without them)");
        let new_spec = ShuffleSpec::new(
            old.seed,
            old.num_samples,
            new_workers,
            old.batch_size,
            old.drop_last,
        );
        assert_eq!(
            old.samples_per_epoch(),
            new_spec.samples_per_epoch(),
            "membership change alters the epoch length under drop_last; \
             replay-exact recovery requires an unchanged global order"
        );

        let n_old = old.num_workers;
        let f = old.num_samples as usize;
        let spe = old.samples_per_epoch();
        let old_lens: Vec<u64> = (0..n_old).map(|w| old.worker_epoch_len(w)).collect();

        // The same artifact fold as `SetupPass::run`, fed by stream
        // re-splitting instead of `scan_epochs`.
        let mut digests: Vec<u64> = (0..new_workers).map(|w| DIGEST_SEED ^ w as u64).collect();
        let mut counts = vec![vec![0u16; f]; new_workers];
        let mut first_access = vec![vec![u64::MAX; f]; new_workers];
        let mut stream_pos = vec![0u64; new_workers];
        let mut streams: Vec<Vec<SampleId>> = (0..new_workers)
            .map(|w| Vec::with_capacity((new_spec.worker_epoch_len(w) * self.epochs) as usize))
            .collect();

        for e in 0..self.epochs {
            for pos in 0..spe {
                let owner = (pos as usize) % n_old;
                let idx = (e * old_lens[owner] + pos / n_old as u64) as usize;
                let id = cached[owner][idx];
                let w = (pos as usize) % new_workers;
                let k = id as usize;
                digests[w] = mix64(digests[w], id);
                counts[w][k] += 1;
                if first_access[w][k] == u64::MAX {
                    first_access[w][k] = stream_pos[w];
                }
                stream_pos[w] += 1;
                streams[w].push(id);
            }
        }

        SetupArtifacts {
            spec: new_spec,
            epochs: self.epochs,
            digests,
            table: FrequencyTable::from_counts(counts, self.epochs),
            first_access,
            streams: Some(streams.into_iter().map(Arc::new).collect()),
            shuffles_generated: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::epoch_shuffles_generated;

    fn spec(f: u64, n: usize) -> ShuffleSpec {
        ShuffleSpec::new(0xE27, f, n, 4, false)
    }

    #[test]
    fn digests_match_reference_fold() {
        let sp = spec(121, 4);
        let arts = SetupPass::new(sp, 6).run();
        for w in 0..4 {
            assert_eq!(arts.digests[w], stream_digest(&sp, w, 6), "worker {w}");
        }
    }

    #[test]
    fn streams_match_per_worker_materialization() {
        let sp = spec(77, 3);
        let arts = SetupPass::new(sp, 4).run();
        for w in 0..3 {
            assert_eq!(
                arts.stream(w).as_slice(),
                AccessStream::new(sp, w, 4).materialize().as_slice(),
                "worker {w}"
            );
        }
    }

    #[test]
    fn table_and_first_access_match_old_paths() {
        let sp = spec(150, 5);
        let arts = SetupPass::new(sp, 7).run();
        assert_eq!(arts.table, FrequencyTable::build(&sp, 7));
        for w in 0..5 {
            assert_eq!(
                arts.first_access[w],
                AccessStream::new(sp, w, 7).first_access_positions(),
                "worker {w}"
            );
        }
    }

    #[test]
    fn materialize_all_streams_matches_per_worker() {
        let sp = spec(91, 4);
        let streams = materialize_all_streams(&sp, 3);
        for (w, s) in streams.iter().enumerate() {
            assert_eq!(
                s.as_slice(),
                AccessStream::new(sp, w, 3).materialize().as_slice(),
                "worker {w}"
            );
        }
    }

    #[test]
    fn drop_last_truncation_flows_through() {
        let sp = ShuffleSpec::new(9, 103, 4, 8, true); // 103 -> 96/epoch
        let arts = SetupPass::new(sp, 3).run();
        for w in 0..4 {
            assert_eq!(arts.stream(w).len(), 24 * 3);
            assert_eq!(arts.digests[w], stream_digest(&sp, w, 3));
        }
    }

    #[test]
    fn pass_generates_each_epoch_shuffle_once() {
        let sp = spec(200, 8);
        let before = epoch_shuffles_generated();
        let arts = SetupPass::new(sp, 9).run();
        let delta = epoch_shuffles_generated() - before;
        assert_eq!(arts.shuffles_generated, 9);
        // Parallel tests may also generate shuffles, so the global
        // counter only lower-bounds here; the exact-count assertion
        // lives in the single-test binary `nopfs_core/tests`.
        assert!(delta >= 9);
    }

    #[test]
    fn streams_can_be_skipped() {
        let sp = spec(50, 2);
        let arts = SetupPass::with_options(
            sp,
            2,
            SetupOptions {
                materialize_streams: false,
            },
        )
        .run();
        assert!(arts.streams.is_none());
        assert_eq!(arts.table, FrequencyTable::build(&sp, 2));
    }

    #[test]
    #[should_panic(expected = "without stream materialization")]
    fn stream_accessor_guards_unmaterialized() {
        let sp = spec(10, 2);
        let arts = SetupPass::with_options(
            sp,
            1,
            SetupOptions {
                materialize_streams: false,
            },
        )
        .run();
        let _ = arts.stream(0);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn rejects_zero_epochs() {
        SetupPass::new(spec(10, 2), 0);
    }

    #[test]
    fn replan_matches_fresh_pass_bit_for_bit() {
        let sp = spec(121, 4);
        let arts = SetupPass::new(sp, 5).run();
        // Shrink (crash), grow (join), and identity memberships.
        for n_new in [1usize, 3, 4, 5, 7] {
            let replanned = arts.replan(n_new);
            let fresh = SetupPass::new(spec(121, n_new), 5).run();
            assert_eq!(replanned.digests, fresh.digests, "n={n_new} digests");
            assert_eq!(replanned.table, fresh.table, "n={n_new} table");
            assert_eq!(
                replanned.first_access, fresh.first_access,
                "n={n_new} first access"
            );
            for w in 0..n_new {
                assert_eq!(
                    replanned.stream(w).as_slice(),
                    fresh.stream(w).as_slice(),
                    "n={n_new} worker {w} stream"
                );
            }
            // The whole point: a replan regenerates nothing.
            assert_eq!(replanned.shuffles_generated, 0);
            assert_eq!(replanned.spec().num_workers, n_new);
            assert_eq!(replanned.epochs(), 5);
        }
    }

    #[test]
    fn replan_composes_with_placement() {
        // A replanned artifact set must feed placement exactly like a
        // fresh pass would — ownership plans for the survivors.
        let sp = spec(60, 4);
        let arts = SetupPass::new(sp, 3).run();
        let sizes = vec![100u64; 60];
        let capacities: Vec<Vec<u64>> = (0..3).map(|_| vec![2_000u64, 1_000]).collect();
        let via_replan = arts.replan(3).placement(&sizes, &capacities);
        let fresh = SetupPass::new(spec(60, 3), 3).run();
        let via_fresh = fresh.placement(&sizes, &capacities);
        for w in 0..3 {
            assert_eq!(
                via_replan.assignment(w).class_map(),
                via_fresh.assignment(w).class_map(),
                "worker {w} placement"
            );
        }
    }

    #[test]
    #[should_panic(expected = "alters the epoch length")]
    fn replan_rejects_epoch_length_changes() {
        // drop_last truncates to the global batch N·b, so changing N
        // can change the epoch length — not replay-exact, must refuse.
        // 103 samples, b=8: N=4 keeps 96/epoch, N=5 would keep 80.
        let sp = ShuffleSpec::new(9, 103, 4, 8, true);
        SetupPass::new(sp, 2).run().replan(5);
    }

    #[test]
    #[should_panic(expected = "materialized streams")]
    fn replan_needs_streams() {
        let arts = SetupPass::with_options(
            spec(10, 2),
            1,
            SetupOptions {
                materialize_streams: false,
            },
        )
        .run();
        let _ = arts.replan(3);
    }
}
