//! Probabilistic analysis of access frequencies (paper Sec. 3.1).
//!
//! Fix a worker and a sample. Whether the worker accesses the sample in
//! epoch `e` is `X_e ~ Bernoulli(1/N)`, so the total access frequency over
//! `E` epochs is `X = Σ X_e ~ Binomial(E, 1/N)` with mean `μ = E/N`. The
//! paper exploits the spread of this distribution: although each sample is
//! accessed `E/N` times *on average* by a worker, a long tail of samples
//! is accessed far more often by that worker — and (Lemma 1)
//! correspondingly less often by some other worker. Caching decisions
//! follow the tail.
//!
//! This module provides the exact Binomial PMF/CDF/tail (via a Lanczos
//! log-gamma so that `E` in the thousands stays stable), the paper's
//! expected tail count `F·P(X > (1+δ)μ)`, Lemma 1's bound, and
//! [`FrequencyTable`] — the empirical counterpart computed from the real
//! access streams (the paper's Monte-Carlo verification and Fig. 3).

use crate::sampler::ShuffleSpec;
use crate::{SampleId, WorkerId};
use nopfs_util::stats::Histogram;

/// Natural log of the gamma function, Lanczos approximation (g = 7,
/// 9 coefficients). Accurate to ~1e-13 over the ranges used here.
fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const COEFFS: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the binomial coefficient `C(n, k)`.
fn ln_choose(n: u64, k: u64) -> f64 {
    debug_assert!(k <= n);
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Exact Binomial PMF `P(X = k)` for `X ~ Binomial(n, p)`.
///
/// # Panics
/// Panics unless `p ∈ [0, 1]`.
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Binomial survival function `P(X ≥ k)` (inclusive tail).
///
/// Sums the smaller side of the distribution starting from its largest
/// term (the one nearest the mean) and walks outward with the
/// incremental PMF ratio `pmf(j+1) = pmf(j) · (n−j)/(j+1) · p/(1−p)`,
/// so the whole tail costs one `exp`/`ln_gamma` evaluation plus O(tail)
/// multiplications — not O(tail) `exp`/`ln_gamma` calls. Starting at
/// the largest term keeps the recurrence numerically stable: terms only
/// shrink as the walk moves away from the mean.
pub fn binomial_sf(n: u64, p: f64, k: u64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return 0.0; // k >= 1 but X is identically 0
    }
    if p == 1.0 {
        return 1.0; // k <= n and X is identically n
    }
    let mean = n as f64 * p;
    let ratio = p / (1.0 - p);
    if (k as f64) > mean {
        // Upper tail: pmf(k) is the largest term; ascend to n.
        let mut pmf = binomial_pmf(n, p, k);
        let mut acc = pmf;
        for j in k..n {
            pmf *= (n - j) as f64 / (j + 1) as f64 * ratio;
            acc += pmf;
        }
        acc
    } else {
        // Lower tail: pmf(k−1) is the largest term; descend to 0.
        let mut pmf = binomial_pmf(n, p, k - 1);
        let mut acc = pmf;
        for j in (1..k).rev() {
            pmf *= j as f64 / (n - j + 1) as f64 / ratio;
            acc += pmf;
        }
        1.0 - acc
    }
}

/// Binomial CDF `P(X ≤ k)`.
pub fn binomial_cdf(n: u64, p: f64, k: u64) -> f64 {
    1.0 - binomial_sf(n, p, k + 1)
}

/// The paper's expected number of samples a fixed worker accesses more
/// than `(1+δ)·μ` times: `F · P(X ≥ ⌈(1+δ)·E/N⌉)` with
/// `X ~ Binomial(E, 1/N)` (Sec. 3.1).
///
/// For the paper's running example (`N=16, E=90, F=1,281,167, δ=0.8`)
/// this evaluates to ≈31,635, matching both the paper's calculation and
/// its Monte-Carlo count of 31,863.
pub fn expected_tail_count(num_samples: u64, epochs: u64, num_workers: usize, delta: f64) -> f64 {
    assert!(num_workers > 0, "need at least one worker");
    assert!(delta >= 0.0, "delta must be non-negative");
    let mu = epochs as f64 / num_workers as f64;
    let threshold = ((1.0 + delta) * mu).ceil() as u64;
    num_samples as f64 * binomial_sf(epochs, 1.0 / num_workers as f64, threshold)
}

/// Lemma 1's complementary bound: if some worker accesses a sample
/// `⌈(1+δ)·E/N⌉` times, then at least one other worker accesses it at
/// most `⌈((N−1−δ)/(N−1))·E/N⌉` times.
///
/// Returns that upper bound on the under-accessing worker's frequency.
///
/// # Panics
/// Panics if `num_workers < 2` (the lemma needs another worker) or if
/// `delta` is outside `[0, N−1]` (the lemma's stated range).
pub fn lemma1_upper_bound(epochs: u64, num_workers: usize, delta: f64) -> u64 {
    assert!(num_workers >= 2, "Lemma 1 requires at least two workers");
    let n = num_workers as f64;
    assert!(
        (0.0..=n - 1.0).contains(&delta),
        "Lemma 1 requires delta in [0, N-1]"
    );
    let mu = epochs as f64 / n;
    (((n - 1.0 - delta) / (n - 1.0)) * mu).ceil() as u64
}

/// Empirical per-worker access frequencies over a full training run —
/// the quantity `r_k` used by the placement policy (Sec. 5.1), and the
/// histogram of Fig. 3.
///
/// Built by replaying the clairvoyant access streams; `counts(w)[k]` is
/// exactly how many times worker `w` will read sample `k` during
/// training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyTable {
    num_workers: usize,
    epochs: u64,
    /// `counts[w][k]` = times worker `w` accesses sample `k`.
    counts: Vec<Vec<u16>>,
}

impl FrequencyTable {
    /// Builds the table for all workers by generating each epoch shuffle
    /// once (into a reused buffer) and attributing positions to workers.
    /// Cost: `O(E·F)` time, `O(N·F)` memory.
    ///
    /// When the setup path also needs digests, streams, or placement
    /// inputs, use [`crate::engine::SetupPass`] instead — it derives
    /// this table and every other artifact from the *same* single pass.
    pub fn build(spec: &ShuffleSpec, epochs: u64) -> Self {
        assert!(epochs > 0, "at least one epoch");
        let n = spec.num_workers;
        let f = spec.num_samples as usize;
        let mut counts = vec![vec![0u16; f]; n];
        let mut perm = Vec::new();
        for e in 0..epochs {
            spec.epoch_shuffle_into(e, &mut perm);
            for (pos, &id) in perm.iter().enumerate() {
                counts[pos % n][id as usize] += 1;
            }
        }
        Self::from_counts(counts, epochs)
    }

    /// Wraps already-computed per-worker counts (the single-pass
    /// engine's path into this type).
    ///
    /// # Panics
    /// Panics if `counts` is empty, ragged, or `epochs == 0`.
    pub fn from_counts(counts: Vec<Vec<u16>>, epochs: u64) -> Self {
        assert!(epochs > 0, "at least one epoch");
        assert!(!counts.is_empty(), "at least one worker");
        let f = counts[0].len();
        assert!(
            counts.iter().all(|c| c.len() == f),
            "per-worker count vectors must cover the same samples"
        );
        Self {
            num_workers: counts.len(),
            epochs,
            counts,
        }
    }

    /// Number of workers covered.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of epochs counted.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Per-sample access counts for one worker.
    pub fn counts(&self, worker: WorkerId) -> &[u16] {
        &self.counts[worker]
    }

    /// How often `worker` accesses `sample`.
    pub fn frequency(&self, worker: WorkerId, sample: SampleId) -> u16 {
        self.counts[worker][sample as usize]
    }

    /// Total accesses of `sample` across all workers. With full
    /// randomization and no `drop_last` this is exactly `E` for every
    /// sample (each sample is read once per epoch).
    pub fn total_frequency(&self, sample: SampleId) -> u32 {
        self.counts
            .iter()
            .map(|c| u32::from(c[sample as usize]))
            .sum()
    }

    /// Number of samples `worker` accesses at least `k` times — the
    /// empirical counterpart of [`expected_tail_count`].
    pub fn count_at_least(&self, worker: WorkerId, k: u16) -> u64 {
        self.counts[worker].iter().filter(|&&c| c >= k).count() as u64
    }

    /// Access-frequency histogram for one worker (Fig. 3): bucket `i`
    /// counts samples accessed exactly `i` times, with frequencies at or
    /// above `max_frequency` clamped into the last bucket.
    pub fn histogram(&self, worker: WorkerId, max_frequency: u16) -> Histogram {
        assert!(max_frequency > 0);
        let mut h = Histogram::new(max_frequency as usize + 1, 1);
        for &c in &self.counts[worker] {
            h.record(u64::from(c));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-11);
    }

    #[test]
    fn pmf_sums_to_one() {
        for (n, p) in [(10u64, 0.3), (90, 1.0 / 16.0), (500, 0.01)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, p, k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn pmf_known_values() {
        // Binomial(4, 0.5): P(X=2) = 6/16.
        assert!((binomial_pmf(4, 0.5, 2) - 0.375).abs() < 1e-12);
        // Degenerate p.
        assert_eq!(binomial_pmf(5, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(5, 0.0, 1), 0.0);
        assert_eq!(binomial_pmf(5, 1.0, 5), 1.0);
        assert_eq!(binomial_pmf(5, 0.5, 6), 0.0);
    }

    #[test]
    fn sf_and_cdf_consistent() {
        let (n, p) = (90u64, 1.0 / 16.0);
        for k in 0..=n {
            let sf = binomial_sf(n, p, k);
            let cdf_prev = if k == 0 {
                0.0
            } else {
                binomial_cdf(n, p, k - 1)
            };
            assert!((sf + cdf_prev - 1.0).abs() < 1e-10, "k={k}");
        }
        assert_eq!(binomial_sf(10, 0.5, 0), 1.0);
        assert_eq!(binomial_sf(10, 0.5, 11), 0.0);
    }

    #[test]
    fn sf_matches_direct_pmf_summation() {
        // The incremental-ratio tail must agree with naive term-by-term
        // summation of the exact PMF on both sides of the mean.
        for (n, p) in [(1u64, 0.5f64), (10, 0.3), (90, 1.0 / 16.0), (300, 0.9)] {
            for k in 0..=n {
                let direct: f64 = (k..=n).map(|j| binomial_pmf(n, p, j)).sum();
                let fast = binomial_sf(n, p, k);
                assert!(
                    (fast - direct).abs() < 1e-10,
                    "n={n} p={p} k={k}: fast {fast} vs direct {direct}"
                );
            }
        }
        // Degenerate probabilities short-circuit.
        assert_eq!(binomial_sf(5, 0.0, 1), 0.0);
        assert_eq!(binomial_sf(5, 0.0, 0), 1.0);
        assert_eq!(binomial_sf(5, 1.0, 5), 1.0);
    }

    #[test]
    fn from_counts_round_trips_build() {
        let spec = ShuffleSpec::new(3, 60, 3, 4, false);
        let built = FrequencyTable::build(&spec, 5);
        let counts: Vec<Vec<u16>> = (0..3).map(|w| built.counts(w).to_vec()).collect();
        assert_eq!(FrequencyTable::from_counts(counts, 5), built);
    }

    #[test]
    #[should_panic(expected = "same samples")]
    fn from_counts_rejects_ragged_input() {
        FrequencyTable::from_counts(vec![vec![0u16; 3], vec![0u16; 4]], 1);
    }

    /// The paper's running example: N=16, E=90, F=1,281,167, δ=0.8 gives
    /// an expected tail of ~31,635 samples accessed more than 10 times.
    #[test]
    fn paper_example_tail_count() {
        let expect = expected_tail_count(1_281_167, 90, 16, 0.8);
        assert!(
            (expect - 31_634.7).abs() < 1.0,
            "paper reports ~31,635, got {expect}"
        );
    }

    #[test]
    fn lemma1_bound_values() {
        // N=2: if one worker over-accesses by δ, the other under-accesses
        // symmetrically: bound = ceil((1-δ)·E/2).
        assert_eq!(lemma1_upper_bound(90, 2, 1.0), 0);
        // ((16-1-0.8)/(16-1)) * 90/16 = 5.325, ceil = 6.
        assert_eq!(lemma1_upper_bound(90, 16, 0.8), 6);
        // δ=0 degenerates to the mean.
        assert_eq!(lemma1_upper_bound(90, 16, 0.0), 6); // ceil(5.625)
    }

    #[test]
    #[should_panic(expected = "at least two workers")]
    fn lemma1_needs_two_workers() {
        lemma1_upper_bound(10, 1, 0.5);
    }

    fn small_table() -> (ShuffleSpec, FrequencyTable) {
        let spec = ShuffleSpec::new(77, 200, 4, 8, false);
        let table = FrequencyTable::build(&spec, 12);
        (spec, table)
    }

    #[test]
    fn totals_equal_epochs() {
        // Every sample is read exactly once per epoch across workers.
        let (_, table) = small_table();
        for k in 0..200 {
            assert_eq!(table.total_frequency(k), 12, "sample {k}");
        }
    }

    #[test]
    fn counts_sum_matches_stream_lengths() {
        let (spec, table) = small_table();
        for w in 0..4 {
            let total: u64 = table.counts(w).iter().map(|&c| u64::from(c)).sum();
            assert_eq!(total, spec.worker_epoch_len(w) * 12);
        }
    }

    #[test]
    fn table_matches_explicit_stream_replay() {
        let (spec, table) = small_table();
        let stream = crate::stream::AccessStream::new(spec, 2, 12);
        let mut counts = vec![0u16; 200];
        for id in stream.iter() {
            counts[id as usize] += 1;
        }
        assert_eq!(table.counts(2), counts.as_slice());
    }

    #[test]
    fn count_at_least_is_monotone() {
        let (_, table) = small_table();
        let mut prev = u64::MAX;
        for k in 0..10 {
            let c = table.count_at_least(0, k);
            assert!(c <= prev);
            prev = c;
        }
        assert_eq!(table.count_at_least(0, 0), 200);
    }

    #[test]
    fn histogram_total_is_sample_count() {
        let (_, table) = small_table();
        let h = table.histogram(1, 12);
        assert_eq!(h.total(), 200);
    }

    #[test]
    fn empirical_tail_tracks_binomial_prediction() {
        // A modest Monte-Carlo check mirroring the paper's Fig. 3
        // verification, scaled down: N=4, E=40, F=20,000.
        let spec = ShuffleSpec::new(2024, 20_000, 4, 16, false);
        let table = FrequencyTable::build(&spec, 40);
        let delta = 0.5;
        let mu = 40.0f64 / 4.0;
        let threshold = ((1.0 + delta) * mu).ceil() as u16;
        let empirical = table.count_at_least(0, threshold) as f64;
        let predicted = expected_tail_count(20_000, 40, 4, delta);
        let rel = (empirical - predicted).abs() / predicted;
        assert!(
            rel < 0.15,
            "empirical {empirical} vs predicted {predicted} (rel {rel})"
        );
    }

    #[test]
    fn lemma1_holds_empirically() {
        // For every sample, if some worker hits the (1+δ)μ threshold,
        // some other worker must be at or below the Lemma 1 bound.
        let spec = ShuffleSpec::new(5, 500, 4, 4, false);
        let epochs = 20;
        let table = FrequencyTable::build(&spec, epochs);
        let delta = 1.0;
        let hi = ((1.0 + delta) * epochs as f64 / 4.0).ceil() as u16;
        let bound = lemma1_upper_bound(epochs, 4, delta) as u16;
        for k in 0..500u64 {
            let counts: Vec<u16> = (0..4).map(|w| table.frequency(w, k)).collect();
            if counts.iter().any(|&c| c >= hi) {
                assert!(
                    counts.iter().any(|&c| c <= bound),
                    "sample {k}: counts {counts:?} violate Lemma 1 (bound {bound})"
                );
            }
        }
    }
}
