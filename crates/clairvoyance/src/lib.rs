//! Clairvoyant access-stream generation and analysis.
//!
//! Mini-batch SGD shuffles the dataset indices once per epoch with a
//! seeded PRNG and partitions the shuffle among workers; therefore, given
//! the seed, *every* worker can compute exactly which worker will access
//! which sample at which point of training — arbitrarily far in the
//! future. The paper (Sec. 2) calls this **clairvoyance**, and everything
//! NoPFS does flows from it.
//!
//! This crate implements:
//! - [`sampler`] — the seeded epoch shuffle and the PyTorch
//!   `DistributedSampler`-style partitioning of each epoch among workers.
//! - [`stream`] — per-worker access streams `R` (lazy and materialized),
//!   the object the prefetching rules of Sec. 3 operate on.
//! - [`frequency`] — the probabilistic access-frequency analysis of
//!   Sec. 3.1: exact Binomial(E, 1/N) tail bounds, Monte-Carlo counting,
//!   and the Fig. 3 histogram.
//! - [`placement`] — the frequency-ranked mapping of samples to storage
//!   classes (Sec. 5.1) that every worker computes for every other worker
//!   without any communication.
//! - [`engine`] — the single-pass setup engine: one streaming pass over
//!   the epoch shuffles that derives every worker's digests, streams,
//!   frequencies, and placement inputs simultaneously in O(E·F), the
//!   cost the paper's "a few passes over the shuffles" claim promises.

pub mod engine;
pub mod frequency;
pub mod placement;
pub mod sampler;
pub mod stream;

pub use engine::{SetupArtifacts, SetupOptions, SetupPass};
pub use frequency::{binomial_pmf, binomial_sf, expected_tail_count, FrequencyTable};
pub use placement::{CacheAssignment, GlobalPlacement};
pub use sampler::{EpochShuffle, ShuffleSpec};
pub use stream::AccessStream;

/// Index of a sample within a dataset (0-based, dense).
pub type SampleId = u64;

/// Rank of a worker within the job (0-based, dense).
pub type WorkerId = usize;
