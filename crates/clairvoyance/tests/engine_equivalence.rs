//! Property tests proving the single-pass engine's artifacts are
//! bit-identical to the old per-consumer recomputation paths, across
//! random `ShuffleSpec`s (including `drop_last`).
//!
//! These are the guarantees that let `Job` setup swap N independent
//! digest/stream/frequency derivations for one shared pass without
//! changing a single delivered sample.

use nopfs_clairvoyance::engine::{stream_digest, SetupPass};
use nopfs_clairvoyance::frequency::FrequencyTable;
use nopfs_clairvoyance::placement::GlobalPlacement;
use nopfs_clairvoyance::sampler::ShuffleSpec;
use nopfs_clairvoyance::stream::AccessStream;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = ShuffleSpec> {
    (
        any::<u64>(),
        30u64..300,
        1usize..6,
        1usize..9,
        any::<bool>(),
    )
        .prop_map(|(seed, f, n, b, drop_last)| {
            // drop_last requires at least one full global batch; f >= 30
            // and n*b <= 5*8 = 40 can still collide, so clamp.
            let drop_last = drop_last && f >= (n * b) as u64;
            ShuffleSpec::new(seed, f, n, b, drop_last)
        })
}

proptest! {
    /// Engine digests equal the per-worker lazy-stream fold.
    #[test]
    fn digests_are_bit_identical(spec in arb_spec(), epochs in 1u64..5) {
        let arts = SetupPass::new(spec, epochs).run();
        for w in 0..spec.num_workers {
            prop_assert_eq!(arts.digests[w], stream_digest(&spec, w, epochs));
        }
    }

    /// Engine frequency tables equal `FrequencyTable::build`.
    #[test]
    fn tables_are_bit_identical(spec in arb_spec(), epochs in 1u64..5) {
        let arts = SetupPass::new(spec, epochs).run();
        prop_assert_eq!(&arts.table, &FrequencyTable::build(&spec, epochs));
    }

    /// Engine streams equal per-worker materialization, and the
    /// first-access artifact equals the per-worker scan.
    #[test]
    fn streams_and_first_access_are_bit_identical(
        spec in arb_spec(),
        epochs in 1u64..5,
    ) {
        let arts = SetupPass::new(spec, epochs).run();
        for w in 0..spec.num_workers {
            let stream = AccessStream::new(spec, w, epochs);
            let eager = stream.materialize();
            prop_assert_eq!(arts.stream(w).as_slice(), eager.as_slice());
            prop_assert_eq!(&arts.first_access[w], &stream.first_access_positions());
        }
    }

    /// Placement built from engine artifacts equals placement computed
    /// from scratch.
    #[test]
    fn placement_is_bit_identical(spec in arb_spec(), epochs in 1u64..4) {
        let f = spec.num_samples as usize;
        let sizes = vec![10u64; f];
        let caps = vec![vec![150u64, 400u64]; spec.num_workers];
        let arts = SetupPass::new(spec, epochs).run();
        let via_arts = GlobalPlacement::from_artifacts(&arts, &sizes, &caps);
        let direct = GlobalPlacement::compute(&spec, epochs, &sizes, &caps);
        for w in 0..spec.num_workers {
            prop_assert_eq!(direct.assignment(w), via_arts.assignment(w));
        }
        for k in 0..spec.num_samples {
            prop_assert_eq!(direct.holders(k), via_arts.holders(k));
        }
    }
}
