//! Property-based tests of the clairvoyance invariants — the facts the
//! entire NoPFS design rests on.

use nopfs_clairvoyance::frequency::{binomial_pmf, binomial_sf, FrequencyTable};
use nopfs_clairvoyance::placement::{CacheAssignment, UNASSIGNED};
use nopfs_clairvoyance::sampler::ShuffleSpec;
use nopfs_clairvoyance::stream::AccessStream;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = ShuffleSpec> {
    (any::<u64>(), 1u64..400, 1usize..6, 1usize..9)
        .prop_map(|(seed, f, n, b)| ShuffleSpec::new(seed, f, n, b, false))
}

proptest! {
    /// Each epoch's global order is a permutation of the dataset.
    #[test]
    fn epoch_is_permutation(spec in arb_spec(), epoch in 0u64..6) {
        let shuffle = spec.epoch_shuffle(epoch);
        let mut got: Vec<u64> = shuffle.global_order().to_vec();
        got.sort_unstable();
        prop_assert_eq!(got, (0..spec.num_samples).collect::<Vec<_>>());
    }

    /// Worker sequences partition each epoch: every sample appears in
    /// exactly one worker's sequence, exactly once.
    #[test]
    fn workers_partition_epoch(spec in arb_spec(), epoch in 0u64..4) {
        let shuffle = spec.epoch_shuffle(epoch);
        let mut counts = vec![0u32; spec.num_samples as usize];
        for w in 0..spec.num_workers {
            for id in shuffle.worker_sequence(w) {
                counts[id as usize] += 1;
            }
        }
        prop_assert!(counts.iter().all(|&c| c == 1));
    }

    /// Clairvoyance: streams are pure functions of (seed, worker, epochs),
    /// identical no matter who computes them or how often.
    #[test]
    fn streams_are_reproducible(spec in arb_spec(), epochs in 1u64..4) {
        for w in 0..spec.num_workers {
            let a = AccessStream::new(spec, w, epochs).materialize();
            let b = AccessStream::new(spec, w, epochs).materialize();
            prop_assert_eq!(&a, &b);
            let lazy: Vec<u64> = AccessStream::new(spec, w, epochs).iter().collect();
            prop_assert_eq!(a, lazy);
        }
    }

    /// Frequency counts are conserved: per-sample totals equal the epoch
    /// count and per-worker totals equal the worker's stream length.
    #[test]
    fn frequency_conservation(spec in arb_spec(), epochs in 1u64..5) {
        let table = FrequencyTable::build(&spec, epochs);
        for k in 0..spec.num_samples {
            prop_assert_eq!(u64::from(table.total_frequency(k)), epochs);
        }
        for w in 0..spec.num_workers {
            let total: u64 = table.counts(w).iter().map(|&c| u64::from(c)).sum();
            prop_assert_eq!(total, spec.worker_epoch_len(w) * epochs);
        }
    }

    /// The Binomial PMF is a distribution and the survival function is
    /// monotone non-increasing, for any parameters.
    #[test]
    fn binomial_is_a_distribution(n in 1u64..200, p in 0.0f64..1.0) {
        let total: f64 = (0..=n).map(|k| binomial_pmf(n, p, k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        let mut prev = 1.0f64;
        for k in 0..=n {
            let sf = binomial_sf(n, p, k);
            prop_assert!(sf <= prev + 1e-12);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&sf));
            prev = sf;
        }
    }

    /// Placement never overfills a class, never double-assigns a sample,
    /// and ranks strictly by frequency: any unassigned sample must not
    /// have a higher frequency than some assigned one it would displace
    /// (checked via the weakest assigned frequency per class).
    #[test]
    fn placement_capacity_and_rank(
        freqs in prop::collection::vec(0u16..20, 1..200),
        cap_a in 0u64..2_000,
        cap_b in 0u64..2_000,
    ) {
        let f = freqs.len();
        let first: Vec<u64> = (0..f as u64).collect();
        let sizes = vec![10u64; f];
        let a = CacheAssignment::compute(&freqs, &first, &sizes, &[cap_a, cap_b]);
        // Capacity respected.
        prop_assert!(a.used_bytes(0) <= cap_a);
        prop_assert!(a.used_bytes(1) <= cap_b);
        // No double assignment: class lists are disjoint.
        let mut seen = std::collections::HashSet::new();
        for class in 0..a.num_classes() {
            for &k in a.prefetch_order(class) {
                prop_assert!(seen.insert(k), "sample {k} assigned twice");
            }
        }
        // Rank respected with uniform sizes: an unassigned sample's
        // frequency cannot exceed the minimum assigned frequency.
        let min_assigned = a
            .class_map()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != UNASSIGNED)
            .map(|(k, _)| freqs[k])
            .min();
        if let Some(min_assigned) = min_assigned {
            for (k, &c) in a.class_map().iter().enumerate() {
                if c == UNASSIGNED && seen.len() * 10 < (cap_a + cap_b) as usize {
                    // Only binding when capacity was the constraint.
                    prop_assert!(freqs[k] <= min_assigned);
                }
            }
        }
    }

    /// First-access positions point at genuine first occurrences.
    #[test]
    fn first_access_is_first(spec in arb_spec(), epochs in 1u64..3) {
        let stream = AccessStream::new(spec, 0, epochs);
        let first = stream.first_access_positions();
        let all = stream.materialize();
        for (pos, &id) in all.iter().enumerate() {
            prop_assert!(first[id as usize] <= pos as u64);
        }
        for (id, &p) in first.iter().enumerate() {
            if p != u64::MAX {
                prop_assert_eq!(all[p as usize], id as u64);
            }
        }
    }
}
