//! The timed bulk-synchronous consumption loop.
//!
//! Reproduces the timing structure of distributed SGD: per step, each
//! worker (1) pulls its mini-batch from the loader — stalling if I/O
//! is behind, (2) "computes" for `batch_bytes / c` model seconds (the
//! paper models compute as a throughput, Sec. 4), and (3) allreduces a
//! gradient buffer through the modelled interconnect, which
//! synchronizes the step on the slowest worker — the mechanism that
//! turns I/O noise into a scalability barrier (Sec. 7.1's discussion).

use nopfs_baselines::DataLoader;
use nopfs_core::stats::WorkerStats;
use nopfs_net::Endpoint;
use nopfs_util::timing::TimeScale;

/// Parameters of the timed loop.
#[derive(Debug, Clone, Copy)]
pub struct TrainLoopConfig {
    /// Compute throughput `c`, model bytes/second.
    pub compute_rate: f64,
    /// Model-to-wall time mapping (must match the loader's substrates).
    pub scale: TimeScale,
    /// Elements in the emulated gradient allreduce (0 disables the
    /// synchronization entirely — single-worker or unsynchronized runs).
    pub grad_elems: usize,
}

impl TrainLoopConfig {
    /// A config with the given compute rate and scale and a small
    /// default gradient.
    pub fn new(compute_rate: f64, scale: TimeScale) -> Self {
        assert!(compute_rate > 0.0 && compute_rate.is_finite());
        Self {
            compute_rate,
            scale,
            grad_elems: 256,
        }
    }
}

/// What one worker measured over a run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Per-epoch times, model seconds.
    pub epoch_times: Vec<f64>,
    /// Per-batch times across all epochs, model seconds.
    pub batch_times: Vec<f64>,
    /// Batch count per epoch (to slice `batch_times` by epoch).
    pub batches_per_epoch: Vec<usize>,
    /// The loader's final I/O statistics.
    pub stats: WorkerStats,
}

impl RunMetrics {
    /// Per-epoch bulk-synchronous times across a worker set: the
    /// slowest worker defines each epoch (truncated to the epochs every
    /// worker completed). The one aggregation both the solo benches and
    /// the multi-tenant cluster report from.
    pub fn bulk_epoch_times(per_worker: &[RunMetrics]) -> Vec<f64> {
        let epochs = per_worker
            .iter()
            .map(|m| m.epoch_times.len())
            .min()
            .unwrap_or(0);
        (0..epochs)
            .map(|e| {
                per_worker
                    .iter()
                    .map(|m| m.epoch_times[e])
                    .fold(0.0, f64::max)
            })
            .collect()
    }

    /// Loader statistics merged across a worker set.
    ///
    /// # Panics
    /// Panics on an empty worker set.
    pub fn merged_stats(per_worker: &[RunMetrics]) -> WorkerStats {
        let mut merged = per_worker[0].stats.clone();
        for m in &per_worker[1..] {
            merged.merge(&m.stats);
        }
        merged
    }

    /// Batch times of epoch `e`.
    pub fn epoch_batches(&self, e: usize) -> &[f64] {
        let start: usize = self.batches_per_epoch[..e].iter().sum();
        &self.batch_times[start..start + self.batches_per_epoch[e]]
    }

    /// Batch times excluding epoch 0 (the figures' "excl. epoch 0").
    pub fn batches_after_warmup(&self) -> &[f64] {
        if self.batches_per_epoch.is_empty() {
            return &self.batch_times;
        }
        &self.batch_times[self.batches_per_epoch[0]..]
    }
}

/// Runs the timed loop to exhaustion of the loader.
///
/// `sync`: the per-step gradient allreduce endpoint (pass `None` for
/// unsynchronized consumption). All workers of a job must make the
/// same choice **and have identical batch counts** (use `drop_last`
/// when the dataset does not divide evenly), or the collective
/// deadlocks — the same constraint real distributed training has.
pub fn run_training_loop(
    loader: &mut dyn DataLoader,
    cfg: &TrainLoopConfig,
    sync: Option<&Endpoint<Vec<f32>>>,
) -> RunMetrics {
    let mut epoch_times = Vec::new();
    let mut batch_times = Vec::new();
    let mut batches_per_epoch = Vec::new();
    let epoch_len = loader.epoch_len().max(1);
    let mut consumed_in_epoch = 0u64;
    let mut epoch_start = std::time::Instant::now();
    let mut batches_this_epoch = 0usize;
    let mut grad = vec![0.0f32; cfg.grad_elems];

    loop {
        let t0 = std::time::Instant::now();
        let Some(batch) = loader.next_batch() else {
            break;
        };
        let bytes: u64 = batch.iter().map(|(_, d)| d.len() as u64).sum();
        // The modelled forward/backward pass.
        cfg.scale.wait(bytes as f64 / cfg.compute_rate);
        // The gradient allreduce: the bulk-synchronous barrier.
        if let Some(ep) = sync {
            if cfg.grad_elems > 0 {
                ep.allreduce_sum(&mut grad).expect("allreduce failed");
            }
        }
        batch_times.push(cfg.scale.to_model(t0.elapsed()));
        batches_this_epoch += 1;
        consumed_in_epoch += batch.len() as u64;
        if consumed_in_epoch >= epoch_len {
            epoch_times.push(cfg.scale.to_model(epoch_start.elapsed()));
            batches_per_epoch.push(batches_this_epoch);
            consumed_in_epoch = 0;
            batches_this_epoch = 0;
            epoch_start = std::time::Instant::now();
        }
    }
    if batches_this_epoch > 0 {
        epoch_times.push(cfg.scale.to_model(epoch_start.elapsed()));
        batches_per_epoch.push(batches_this_epoch);
    }

    RunMetrics {
        epoch_times,
        batch_times,
        batches_per_epoch,
        stats: loader.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_baselines::NoIoRunner;
    use nopfs_core::JobConfig;
    use nopfs_perfmodel::presets::fig8_small_cluster;
    use std::sync::Arc;

    fn config(workers: usize, epochs: u64) -> JobConfig {
        let mut sys = fig8_small_cluster();
        sys.workers = workers;
        JobConfig::new(3, epochs, 4, sys, TimeScale::new(1e-6))
    }

    #[test]
    fn counts_epochs_and_batches() {
        let cfg = config(2, 3);
        let sizes = Arc::new(vec![1_000u64; 40]); // 20/worker/epoch
        let runner = NoIoRunner::new(cfg.clone(), sizes);
        let loop_cfg = TrainLoopConfig {
            compute_rate: 1e9,
            scale: cfg.scale,
            grad_elems: 0,
        };
        let metrics = runner.run(|loader| run_training_loop(loader, &loop_cfg, None));
        for m in metrics {
            assert_eq!(m.epoch_times.len(), 3);
            // 20 samples / batch 4 = 5 batches per epoch.
            assert_eq!(m.batches_per_epoch, vec![5, 5, 5]);
            assert_eq!(m.batch_times.len(), 15);
            assert_eq!(m.epoch_batches(1).len(), 5);
            assert_eq!(m.batches_after_warmup().len(), 10);
            assert_eq!(m.stats.samples_consumed, 60);
            assert!(m.epoch_times.iter().all(|&t| t > 0.0));
        }
    }

    #[test]
    fn compute_rate_dominates_no_io_epoch_time() {
        // With a slow modelled GPU, epoch time ≈ bytes/c. The scale must
        // map modelled durations well above wall-clock overhead
        // (1 model second = 10 ms here), or scheduling noise dominates.
        let mut cfg = config(1, 1);
        cfg.scale = TimeScale::new(1e-2);
        let sizes = Arc::new(vec![10_000u64; 16]);
        let runner = NoIoRunner::new(cfg.clone(), sizes);
        let loop_cfg = TrainLoopConfig {
            compute_rate: 1e6, // 160 KB at 1 MB/s = 0.16 model seconds
            scale: cfg.scale,
            grad_elems: 0,
        };
        let metrics = runner.run(|l| run_training_loop(l, &loop_cfg, None));
        let t = metrics[0].epoch_times[0];
        assert!((t - 0.16).abs() < 0.06, "epoch time {t}");
    }

    #[test]
    fn allreduce_synchronizes_batch_times() {
        // Two workers advance in lockstep because of the allreduce.
        let mut cfg = config(2, 1);
        cfg.scale = TimeScale::new(1e-2);
        let sizes = Arc::new(vec![5_000u64; 16]);
        let endpoints = parking_lot::Mutex::new(
            nopfs_net::cluster::<Vec<f32>>(2, nopfs_net::NetConfig::new(1e12, cfg.scale))
                .into_iter()
                .map(Some)
                .collect::<Vec<_>>(),
        );
        let runner = NoIoRunner::new(cfg.clone(), sizes);
        let loop_cfg = TrainLoopConfig {
            compute_rate: 1e6,
            scale: cfg.scale,
            grad_elems: 64,
        };
        let metrics = runner.run(|loader| {
            let ep = endpoints.lock()[loader.rank()]
                .take()
                .expect("one take per rank");
            run_training_loop(loader, &loop_cfg, Some(&ep))
        });
        assert_eq!(metrics.len(), 2);
        let (a, b) = (metrics[0].epoch_times[0], metrics[1].epoch_times[0]);
        let rel = (a - b).abs() / a.max(b);
        assert!(rel < 0.35, "synchronized workers diverged: {a} vs {b}");
    }
}
