//! A real (tiny) model for end-to-end training: binary logistic
//! regression on a synthetic separable task.
//!
//! Fig. 16 trains ResNet-50 to 76.5% top-1 and shows that NoPFS
//! compresses the accuracy-vs-*time* curve while the accuracy-vs-*epoch*
//! curve is unchanged (both loaders perform full-dataset
//! randomization). Reproducing that only needs a model whose accuracy
//! genuinely improves with SGD epochs and whose gradients really flow
//! through the data-parallel allreduce — fidelity to ResNet itself is
//! irrelevant to the I/O claim. This module provides exactly that: each
//! sample's feature vector is a noisy projection of its label along a
//! hidden direction, and a logistic regression learns to separate the
//! classes.

use nopfs_util::rng::{mix64, Xoshiro256pp};

/// The synthetic binary classification task.
///
/// Sample `id` with label `y ∈ {0, 1}` gets features
/// `x = (2y − 1)·margin·u + noise`, where `u` is a fixed unit direction
/// derived from the task seed and the noise is per-sample deterministic
/// — so datasets are reproducible and every worker agrees on them.
#[derive(Debug, Clone)]
pub struct SyntheticTask {
    /// Feature dimensionality.
    pub dim: usize,
    /// Class separation along the hidden direction.
    pub margin: f64,
    /// Per-coordinate noise standard deviation.
    pub noise: f64,
    seed: u64,
    direction: Vec<f32>,
}

impl SyntheticTask {
    /// Creates a task.
    ///
    /// # Panics
    /// Panics on zero dimension or non-positive margin.
    pub fn new(dim: usize, margin: f64, noise: f64, seed: u64) -> Self {
        assert!(dim > 0, "need at least one feature");
        assert!(margin > 0.0, "margin must be positive");
        assert!(noise >= 0.0, "noise must be non-negative");
        let mut rng = Xoshiro256pp::seed_from_u64(mix64(seed, 0xD12C));
        let mut direction: Vec<f32> = (0..dim)
            .map(|_| rng.next_standard_normal() as f32)
            .collect();
        let norm = direction
            .iter()
            .map(|x| x * x)
            .sum::<f32>()
            .sqrt()
            .max(1e-12);
        for d in &mut direction {
            *d /= norm;
        }
        Self {
            dim,
            margin,
            noise,
            seed,
            direction,
        }
    }

    /// Binary label of sample `id` (reduces any multi-class dataset
    /// label to its parity for this task).
    pub fn label(&self, dataset_label: u32) -> f32 {
        (dataset_label % 2) as f32
    }

    /// The feature vector of sample `id` given its dataset label.
    pub fn features(&self, id: u64, dataset_label: u32) -> Vec<f32> {
        let y = f64::from(self.label(dataset_label));
        let sign = 2.0 * y - 1.0;
        let mut rng = Xoshiro256pp::seed_from_u64(mix64(self.seed ^ 0xFEA7, id));
        self.direction
            .iter()
            .map(|&u| {
                (sign * self.margin * f64::from(u) + self.noise * rng.next_standard_normal()) as f32
            })
            .collect()
    }
}

/// Binary logistic regression trained with mini-batch SGD.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    /// Weights (one per feature).
    pub w: Vec<f32>,
    /// Bias.
    pub b: f32,
}

impl LogisticModel {
    /// A zero-initialized model for `dim` features.
    pub fn new(dim: usize) -> Self {
        Self {
            w: vec![0.0; dim],
            b: 0.0,
        }
    }

    fn sigmoid(z: f32) -> f32 {
        1.0 / (1.0 + (-z).exp())
    }

    /// Predicted probability of class 1.
    pub fn predict(&self, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.w.len());
        let z: f32 = self.w.iter().zip(x).map(|(w, x)| w * x).sum::<f32>() + self.b;
        Self::sigmoid(z)
    }

    /// Accumulates the mini-batch gradient of the logistic loss into
    /// `grad` (layout: `dim` weight entries then the bias). Returns the
    /// mean loss.
    pub fn gradient(&self, batch: &[(Vec<f32>, f32)], grad: &mut [f32]) -> f32 {
        assert_eq!(grad.len(), self.w.len() + 1, "grad buffer layout");
        grad.fill(0.0);
        let mut loss = 0.0f32;
        for (x, y) in batch {
            let p = self.predict(x);
            let err = p - y;
            for (g, xi) in grad[..self.w.len()].iter_mut().zip(x) {
                *g += err * xi;
            }
            grad[self.w.len()] += err;
            let p_clamped = p.clamp(1e-7, 1.0 - 1e-7);
            loss -= y * p_clamped.ln() + (1.0 - y) * (1.0 - p_clamped).ln();
        }
        let n = batch.len().max(1) as f32;
        for g in grad.iter_mut() {
            *g /= n;
        }
        loss / n
    }

    /// Applies an (already averaged) gradient with learning rate `lr`.
    pub fn apply(&mut self, grad: &[f32], lr: f32) {
        assert_eq!(grad.len(), self.w.len() + 1);
        for (w, g) in self.w.iter_mut().zip(grad) {
            *w -= lr * g;
        }
        self.b -= lr * grad[self.w.len()];
    }

    /// Classification accuracy over `(features, label)` pairs.
    pub fn accuracy(&self, eval: &[(Vec<f32>, f32)]) -> f64 {
        if eval.is_empty() {
            return 0.0;
        }
        let correct = eval
            .iter()
            .filter(|(x, y)| (self.predict(x) >= 0.5) == (*y >= 0.5))
            .count();
        correct as f64 / eval.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_eval(task: &SyntheticTask, n: u64) -> Vec<(Vec<f32>, f32)> {
        (0..n)
            .map(|id| {
                let label = (id % 2) as u32;
                (task.features(id, label), task.label(label))
            })
            .collect()
    }

    #[test]
    fn features_are_deterministic_and_separated() {
        let task = SyntheticTask::new(16, 2.0, 0.5, 9);
        let a = task.features(5, 1);
        let b = task.features(5, 1);
        assert_eq!(a, b);
        // Projections onto the hidden direction have opposite signs for
        // opposite labels (margin >> noise here on average).
        let pos = task.features(1, 1);
        let neg = task.features(2, 0);
        let proj = |x: &[f32]| -> f32 { x.iter().zip(&task.direction).map(|(a, b)| a * b).sum() };
        assert!(proj(&pos) > 0.0);
        assert!(proj(&neg) < 0.0);
    }

    #[test]
    fn sgd_learns_the_task() {
        let task = SyntheticTask::new(16, 1.5, 1.0, 4);
        let mut model = LogisticModel::new(16);
        let eval = make_eval(&task, 400);
        let initial = model.accuracy(&eval);
        assert!(initial < 0.6, "zero model should be ~chance: {initial}");
        let mut grad = vec![0.0f32; 17];
        // A few epochs of mini-batch SGD over 400 training samples.
        for _ in 0..5 {
            for chunk in (400..800u64).collect::<Vec<_>>().chunks(16) {
                let batch: Vec<(Vec<f32>, f32)> = chunk
                    .iter()
                    .map(|&id| {
                        let label = (id % 2) as u32;
                        (task.features(id, label), task.label(label))
                    })
                    .collect();
                model.gradient(&batch, &mut grad);
                model.apply(&grad, 0.5);
            }
        }
        let trained = model.accuracy(&eval);
        assert!(
            trained > 0.85,
            "model failed to learn: {initial} -> {trained}"
        );
    }

    #[test]
    fn gradient_points_downhill() {
        let task = SyntheticTask::new(8, 2.0, 0.2, 7);
        let mut model = LogisticModel::new(8);
        let batch = make_eval(&task, 64);
        let mut grad = vec![0.0f32; 9];
        let loss0 = model.gradient(&batch, &mut grad);
        model.apply(&grad, 0.1);
        let loss1 = model.gradient(&batch, &mut grad);
        assert!(loss1 < loss0, "loss increased: {loss0} -> {loss1}");
    }

    #[test]
    fn averaged_gradients_match_data_parallelism() {
        // Gradient of the union equals the mean of shard gradients
        // (equal shard sizes) — the correctness condition for allreduce
        // data parallelism.
        let task = SyntheticTask::new(8, 1.0, 0.5, 3);
        let model = LogisticModel::new(8);
        let all = make_eval(&task, 32);
        let mut g_all = vec![0.0f32; 9];
        model.gradient(&all, &mut g_all);
        let mut g_a = vec![0.0f32; 9];
        let mut g_b = vec![0.0f32; 9];
        model.gradient(&all[..16], &mut g_a);
        model.gradient(&all[16..], &mut g_b);
        for i in 0..9 {
            let mean = (g_a[i] + g_b[i]) / 2.0;
            assert!((mean - g_all[i]).abs() < 1e-5, "component {i}");
        }
    }

    #[test]
    fn label_parity_reduction() {
        let task = SyntheticTask::new(4, 1.0, 0.1, 1);
        assert_eq!(task.label(0), 0.0);
        assert_eq!(task.label(1), 1.0);
        assert_eq!(task.label(999), 1.0);
        assert_eq!(task.label(1000), 0.0);
    }

    #[test]
    #[should_panic(expected = "grad buffer layout")]
    fn gradient_checks_buffer_size() {
        let model = LogisticModel::new(4);
        let mut bad = vec![0.0f32; 3];
        model.gradient(&[], &mut bad);
    }
}
