//! Bulk-synchronous data-parallel training on top of any
//! [`DataLoader`](nopfs_baselines::DataLoader).
//!
//! Two levels of fidelity, matching what each experiment needs:
//!
//! - [`loop_runner`] — a *timed consumption loop*: compute is modelled
//!   as the throughput `c` (the paper's own model), gradients are
//!   emulated by fixed-size allreduces through the modelled
//!   interconnect, and per-epoch/per-batch times are recorded. This
//!   drives the epoch/batch-time reproductions (Figs. 10–15): the
//!   training loop's *timing structure* — bulk-synchronous steps that
//!   stall on the slowest worker — is real, while the arithmetic inside
//!   the "GPU" is replaced by its duration.
//! - [`model`] — a real (tiny) logistic-regression model trained with
//!   data-parallel SGD on a synthetic separable task whose features
//!   derive deterministically from sample labels. Accuracy genuinely
//!   improves over epochs, giving Fig. 16 its accuracy-vs-time curves
//!   without a GPU.

pub mod loop_runner;
pub mod model;

pub use loop_runner::{run_training_loop, RunMetrics, TrainLoopConfig};
pub use model::{LogisticModel, SyntheticTask};
