//! The lockstep simulation engine.
//!
//! Workers advance iteration by iteration (global mini-batch by global
//! mini-batch, the bulk-synchronous structure of data-parallel SGD). For
//! every access the active policy picks a fetch source; the engine turns
//! that into a `read_i` time via the performance model, feeds the
//! `t_{i,f}` recurrence, and attributes the resulting stall to the
//! source (see [`crate::result::Breakdown`]).
//!
//! PFS contention is tracked dynamically: `γ` is the number of PFS
//! *clients* (reader threads) observed in the previous iteration —
//! `p_0` per prefetching worker, one for synchronous readers — so
//! policies that stop hitting the PFS (because caches warmed up) see
//! the per-client share `t(γ)/γ` improve as the run progresses, while
//! policies that hammer the PFS see it collapse as workers are added.
//! This is the feedback loop behind the paper's scaling results.

use crate::cloud::CloudModel;
use crate::policies;
use crate::result::{Breakdown, SimError, SimResult};
use crate::scenario::Scenario;
use nopfs_obs::{names, ObsCtx};
use nopfs_perfmodel::equations::ConsumeAccumulator;
use nopfs_perfmodel::Location;
use nopfs_policy::PolicyId;

/// Per-worker consumption state: either the pipelined `t_{i,f}`
/// recurrence (policies with prefetch threads) or fully serialized
/// consumption (the Naive policy, which reads synchronously).
pub(crate) enum Acc {
    Overlapped(ConsumeAccumulator),
    Serial {
        compute: f64,
        t: f64,
        prev_size: u64,
        stall: f64,
    },
}

impl Acc {
    pub(crate) fn new(compute: f64, p0: u32, overlapped: bool) -> Self {
        if overlapped {
            Acc::Overlapped(ConsumeAccumulator::new(compute, p0))
        } else {
            Acc::Serial {
                compute,
                t: 0.0,
                prev_size: 0,
                stall: 0.0,
            }
        }
    }

    /// Records an access; returns `(consumed_at, stall)`.
    pub(crate) fn push(&mut self, read: f64, size: u64) -> (f64, f64) {
        match self {
            Acc::Overlapped(a) => {
                let timing = a.push(read, size);
                (timing.consumed, timing.stall)
            }
            Acc::Serial {
                compute,
                t,
                prev_size,
                stall,
            } => {
                // No overlap: the trainer finishes computing, then waits
                // out the entire read.
                let ready = *t + *prev_size as f64 / *compute;
                let consumed = ready + read;
                *t = consumed;
                *prev_size = size;
                *stall += read;
                (consumed, read)
            }
        }
    }

    pub(crate) fn last(&self) -> f64 {
        match self {
            Acc::Overlapped(a) => a.last_consumed(),
            Acc::Serial { t, .. } => *t,
        }
    }

    pub(crate) fn total_stall(&self) -> f64 {
        match self {
            Acc::Overlapped(a) => a.total_stall(),
            Acc::Serial { stall, .. } => *stall,
        }
    }

    pub(crate) fn finish(&self) -> f64 {
        match self {
            Acc::Overlapped(a) => a.finish(),
            Acc::Serial {
                compute,
                t,
                prev_size,
                ..
            } => *t + *prev_size as f64 / *compute,
        }
    }
}

pub(crate) fn loc_index(loc: Location) -> usize {
    match loc {
        Location::Staging => 0,
        Location::Local(_) => 1,
        Location::Remote(_) => 2,
        Location::Pfs => 3,
    }
}

/// Simulates `policy` on `scenario`.
///
/// Returns [`SimError::Unsupported`] when the policy cannot run the
/// scenario (e.g. the LBANN data store with a dataset larger than
/// aggregate worker memory).
pub fn run(scenario: &Scenario, policy: PolicyId) -> Result<SimResult, SimError> {
    run_with_obs(scenario, policy, &ObsCtx::new())
}

/// [`run`] with an observability context: modelled fetches count into
/// the registry (`sim.fetch{loc=…}`) and the engine emits model-clock
/// trace events — an epoch instant per epoch boundary, plus the cloud
/// origin's breaker transitions and hedges when the scenario has a
/// cloud clause and the context's tracer is active.
///
/// # Errors
/// Same contract as [`run`].
pub fn run_with_obs(
    scenario: &Scenario,
    policy: PolicyId,
    obs: &ObsCtx,
) -> Result<SimResult, SimError> {
    let mut p = policies::build(policy, scenario)?;
    let sys = &scenario.system;
    let n = sys.workers;
    let b = scenario.batch_size;
    let spec = scenario.shuffle_spec();

    let mut cloud = scenario
        .cloud
        .clone()
        .map(|spec| CloudModel::with_obs(spec, obs));
    let fetch_counters = [
        obs.registry
            .counter_with(names::SIM_FETCH, &[("loc", "staging")]),
        obs.registry
            .counter_with(names::SIM_FETCH, &[("loc", "local")]),
        obs.registry
            .counter_with(names::SIM_FETCH, &[("loc", "remote")]),
        obs.registry
            .counter_with(names::SIM_FETCH, &[("loc", "pfs")]),
    ];
    let mut accs: Vec<Acc> = (0..n)
        .map(|_| Acc::new(sys.compute, sys.staging.threads, p.overlapped()))
        .collect();
    let mut prev_consumed = vec![0.0f64; n];
    let mut breakdown = Breakdown::default();
    let mut fetch_counts = [0u64; 4];

    // γ: PFS clients observed last iteration. Starts pessimistic (every
    // worker's readers on the PFS), which epoch 0 will realize anyway.
    let threads_per_worker = if p.overlapped() {
        sys.staging.threads as usize
    } else {
        1
    };
    let mut gamma = (n * threads_per_worker).max(1);

    for epoch in 0..scenario.epochs {
        // The epoch boundary on the model clock: the time front of the
        // slowest worker when the epoch opens.
        let front = accs.iter().map(Acc::last).fold(0.0, f64::max);
        obs.tracer
            .instant_at(names::EV_EPOCH, "sim", front, vec![("epoch", epoch.into())]);
        let shuffle = spec.epoch_shuffle(epoch);
        p.on_epoch_start(epoch);
        let seqs: Vec<Vec<u64>> = (0..n).map(|w| shuffle.worker_sequence(w)).collect();
        let seqs = p.transform_epoch(epoch, seqs, &shuffle);
        let iterations = seqs.iter().map(|s| s.len().div_ceil(b)).max().unwrap_or(0);
        for h in 0..iterations {
            let mut pfs_workers = 0usize;
            for w in 0..n {
                let seq = &seqs[w];
                let lo = h * b;
                if lo >= seq.len() {
                    continue;
                }
                let hi = ((h + 1) * b).min(seq.len());
                let mut used_pfs = false;
                for &k in &seq[lo..hi] {
                    let now = accs[w].last();
                    let size = scenario.sizes[k as usize];
                    // An origin whose breaker is open and cooling fails
                    // reads fast: the degraded selection steers eligible
                    // fetches to peers/local tiers (graceful
                    // degradation); only fetches with no alternative
                    // still reach the origin and wait out the breaker.
                    let origin_ok = cloud.as_ref().is_none_or(|c| c.available(now));
                    let loc = p.source_degraded(w, k, size, now, gamma, origin_ok);
                    let read = match (&mut cloud, loc) {
                        (Some(c), Location::Pfs) => c.read_cost(now, size, gamma),
                        _ => sys.read_time(loc, size, gamma),
                    };
                    let (consumed, stall) = accs[w].push(read, size);
                    let interval = consumed - prev_consumed[w];
                    // Attribute to the fetch source both the stall and
                    // the overlapped fetch activity within the interval
                    // (Fig. 8's bars show where fetch time was spent,
                    // not only where the trainer blocked).
                    let busy = (interval - stall).max(0.0);
                    let overlapped_fetch = read.min(busy);
                    breakdown.attribute(loc, stall + overlapped_fetch, busy - overlapped_fetch);
                    prev_consumed[w] = consumed;
                    fetch_counts[loc_index(loc)] += 1;
                    fetch_counters[loc_index(loc)].inc();
                    used_pfs |= matches!(loc, Location::Pfs);
                    p.on_consumed(w, k, consumed);
                }
                if used_pfs {
                    pfs_workers += 1;
                }
            }
            gamma = (pfs_workers * threads_per_worker).max(1);
        }
        if std::env::var_os("NOPFS_SIM_DEBUG").is_some() {
            eprintln!(
                "epoch {epoch}: w0 consumed={:.3} stall={:.3} pfs_total={} gamma={gamma}",
                accs[0].last(),
                accs[0].total_stall(),
                fetch_counts[3],
            );
        }
    }

    let prestage = p.prestage_seconds();
    if prestage > 0.0 {
        // The prestaging phase reads from the PFS on every worker
        // simultaneously and nothing overlaps it.
        breakdown.pfs += prestage * n as f64;
    }
    let per_worker_time: Vec<f64> = accs.iter().map(|a| a.finish() + prestage).collect();
    let per_worker_stall: Vec<f64> = accs.iter().map(Acc::total_stall).collect();
    let execution_time = per_worker_time.iter().copied().fold(0.0, f64::max);

    Ok(SimResult {
        policy,
        execution_time,
        per_worker_time,
        prestage_time: prestage,
        per_worker_stall,
        breakdown,
        fetch_counts,
        coverage: p.coverage(),
        note: p.note(),
        resilience: cloud.as_ref().map(CloudModel::stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::{fig8_small_cluster, saturating_pfs_curve};
    use nopfs_util::units::MB;

    /// A small scenario where the PFS is a genuine bottleneck: aggregate
    /// PFS saturates at ~2x one worker's compute demand, so policies
    /// that keep hitting the PFS stall while cache-based policies don't.
    fn contended_scenario() -> Scenario {
        let mut sys = fig8_small_cluster();
        // Aggregate PFS saturates below the cluster's compute demand
        // (4 workers x 64 MB/s = 256 MB/s demand vs 200 MB/s PFS), so
        // PFS-bound policies stall while cache-based policies do not.
        sys.pfs_read = saturating_pfs_curve(200.0 * MB, 8.0);
        // Shrink caches so the dataset (~200 MB) spans RAM + SSD:
        // 60 MB RAM, 200 MB SSD per worker.
        sys.classes[0].capacity = 60 * 1_000_000;
        sys.classes[1].capacity = 200 * 1_000_000;
        sys.staging.capacity = 16 * 1_000_000;
        Scenario::new(
            "contended",
            sys,
            vec![100_000u64; 2_000], // 200 MB, 2000 samples
            3,
            8,
            42,
        )
    }

    #[test]
    fn perfect_has_negligible_stall() {
        let r = run(&contended_scenario(), PolicyId::Perfect).unwrap();
        // Only pipeline-warmup stall is allowed (first few accesses).
        assert!(
            r.total_stall() < 0.05 * r.execution_time,
            "stall {} vs exec {}",
            r.total_stall(),
            r.execution_time
        );
        let (staging, _, _, pfs) = r.breakdown.fractions();
        assert!(staging > 0.95, "staging fraction {staging}");
        assert!(pfs < 0.01);
    }

    #[test]
    fn obs_run_counts_fetches_and_emits_epoch_instants() {
        let s = contended_scenario();
        let obs = ObsCtx::traced();
        let r = run_with_obs(&s, PolicyId::NoPfs, &obs).unwrap();
        // Every modelled fetch lands in the registry, by source.
        let snap = obs.snapshot();
        assert_eq!(
            snap.counter_total(names::SIM_FETCH),
            r.fetch_counts.iter().sum::<u64>()
        );
        assert_eq!(
            snap.counter("sim.fetch{loc=pfs}"),
            Some(r.fetch_counts[3]).filter(|&v| v > 0)
        );
        // One model-clock epoch instant per epoch, in model order.
        let epochs: Vec<f64> = obs
            .tracer
            .export()
            .iter()
            .filter(|e| e.name == names::EV_EPOCH)
            .map(|e| e.model_s)
            .collect();
        assert_eq!(epochs.len(), s.epochs as usize);
        assert!(epochs.windows(2).all(|w| w[0] <= w[1]));
        // And the plain entry point stays deterministic alongside.
        let plain = run(&s, PolicyId::NoPfs).unwrap();
        assert_eq!(plain.fetch_counts, r.fetch_counts);
        assert_eq!(plain.execution_time, r.execution_time);
    }

    #[test]
    fn naive_is_the_slowest() {
        let s = contended_scenario();
        let naive = run(&s, PolicyId::Naive).unwrap();
        for p in [
            PolicyId::Perfect,
            PolicyId::StagingBuffer,
            PolicyId::NoPfs,
            PolicyId::LocalityAware,
        ] {
            let r = run(&s, p).unwrap();
            assert!(
                naive.execution_time >= r.execution_time,
                "Naive ({}) should not beat {p} ({})",
                naive.execution_time,
                r.execution_time
            );
        }
    }

    #[test]
    fn nopfs_beats_staging_buffer_under_contention() {
        let s = contended_scenario();
        let nopfs = run(&s, PolicyId::NoPfs).unwrap();
        let sb = run(&s, PolicyId::StagingBuffer).unwrap();
        assert!(
            nopfs.execution_time < sb.execution_time,
            "NoPFS {} vs StagingBuffer {}",
            nopfs.execution_time,
            sb.execution_time
        );
    }

    #[test]
    fn nopfs_is_close_to_lower_bound() {
        let s = contended_scenario();
        let nopfs = run(&s, PolicyId::NoPfs).unwrap();
        let lb = run(&s, PolicyId::Perfect).unwrap();
        assert!(nopfs.execution_time >= lb.execution_time * 0.999);
        assert!(
            nopfs.execution_time < lb.execution_time * 1.35,
            "NoPFS {} too far from bound {}",
            nopfs.execution_time,
            lb.execution_time
        );
    }

    #[test]
    fn staging_buffer_time_is_all_pfs_or_staging() {
        let r = run(&contended_scenario(), PolicyId::StagingBuffer).unwrap();
        let (_, local, remote, _) = r.breakdown.fractions();
        assert_eq!(local, 0.0);
        assert_eq!(remote, 0.0);
        assert_eq!(r.fetch_counts[1], 0);
        assert_eq!(r.fetch_counts[2], 0);
    }

    #[test]
    fn fetch_counts_cover_every_access() {
        let s = contended_scenario();
        let expected: u64 = (0..4)
            .map(|w| s.shuffle_spec().worker_epoch_len(w) * s.epochs)
            .sum();
        for p in [PolicyId::Naive, PolicyId::NoPfs, PolicyId::LbannDynamic] {
            let r = run(&s, p).unwrap();
            let total: u64 = r.fetch_counts.iter().sum();
            assert_eq!(total, expected, "{p}");
        }
    }

    #[test]
    fn nopfs_pfs_traffic_drops_after_first_epoch() {
        // Caches warm up during the run: PFS fetches must be well below
        // the all-PFS policies' count (every access) and leave a
        // substantial cached share.
        let s = contended_scenario();
        let r = run(&s, PolicyId::NoPfs).unwrap();
        let total: u64 = r.fetch_counts.iter().sum();
        assert!(
            (r.fetch_counts[3] as f64) < 0.6 * total as f64,
            "PFS fetches {} of {total} — caches never warmed up",
            r.fetch_counts[3]
        );
        assert!(r.fetch_counts[1] + r.fetch_counts[2] > 0);
    }

    #[test]
    fn lbann_unsupported_when_dataset_exceeds_memory() {
        let mut s = contended_scenario();
        // Shrink RAM so aggregate memory (4 x 30 MB) < 200 MB dataset.
        s.system.classes[0].capacity = 30 * 1_000_000;
        match run(&s, PolicyId::LbannDynamic) {
            Err(SimError::Unsupported(msg)) => {
                assert!(msg.contains("memory"), "msg: {msg}")
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn parallel_staging_notes_partial_coverage() {
        let mut s = contended_scenario();
        // Worker storage D = 40 MB < S = 200 MB: shards can't hold all.
        s.system.classes[0].capacity = 20 * 1_000_000;
        s.system.classes[1].capacity = 20 * 1_000_000;
        let r = run(&s, PolicyId::ParallelStaging).unwrap();
        assert!(r.coverage < 1.0);
        assert!(r.note.is_some());
        assert!(r.prestage_time > 0.0);
    }

    #[test]
    fn parallel_staging_full_dataset_when_it_fits() {
        let s = contended_scenario(); // D = 260 MB > S = 200 MB
        let r = run(&s, PolicyId::ParallelStaging).unwrap();
        assert_eq!(r.coverage, 1.0);
        assert!(r.note.is_none());
        // After staging, no PFS access at all.
        assert_eq!(r.fetch_counts[3], 0);
    }

    #[test]
    fn deep_io_opportunistic_never_reads_pfs_after_prestage() {
        let r = run(&contended_scenario(), PolicyId::DeepIoOpportunistic).unwrap();
        assert_eq!(r.fetch_counts[3], 0);
    }

    #[test]
    fn deep_io_ordered_reads_uncached_from_pfs() {
        let mut s = contended_scenario();
        // RAM (the only class DeepIO uses) holds 1/4 of the shard needs.
        s.system.classes[0].capacity = 10 * 1_000_000;
        let r = run(&s, PolicyId::DeepIoOrdered).unwrap();
        assert!(r.fetch_counts[3] > 0, "ordered mode must hit the PFS");
        assert_eq!(r.coverage, 1.0, "ordered mode accesses everything");
    }

    #[test]
    fn lbann_dynamic_epoch0_is_all_pfs() {
        let s = contended_scenario();
        let r = run(&s, PolicyId::LbannDynamic).unwrap();
        // Epoch 0 reads the whole dataset from the PFS; later epochs are
        // local/remote only.
        assert_eq!(r.fetch_counts[3], s.num_samples());
        assert_eq!(r.fetch_counts[1] + r.fetch_counts[2], s.num_samples() * 2);
    }

    #[test]
    fn preloading_pays_prestage_but_never_reads_pfs() {
        let s = contended_scenario();
        let r = run(&s, PolicyId::LbannPreloading).unwrap();
        assert!(r.prestage_time > 0.0);
        assert_eq!(r.fetch_counts[3], 0);
    }

    #[test]
    fn per_worker_times_are_positive_and_close() {
        let r = run(&contended_scenario(), PolicyId::NoPfs).unwrap();
        let min = r.per_worker_time.iter().copied().fold(f64::MAX, f64::min);
        assert!(min > 0.0);
        assert!(r.execution_time >= min);
        // Homogeneous workers finish within 25% of each other.
        assert!(r.execution_time < min * 1.25);
    }

    #[test]
    fn cloud_brownout_hurts_naive_clients_more_than_hardened_ones() {
        use crate::cloud::{CloudResilience, CloudSpec};
        use nopfs_policy::CloudFaults;

        let base = contended_scenario();
        let floor = 0.002;
        let with = |faults: CloudFaults, res: CloudResilience| {
            let mut s = base.clone();
            let curve = s.system.pfs_read.clone();
            s = s.with_cloud(CloudSpec::new(floor, curve, faults, res));
            s
        };
        // The fault-free reference on the same store economics.
        let quiet = run(
            &with(CloudFaults::none(9), CloudResilience::hardened(floor)),
            PolicyId::NoPfs,
        )
        .unwrap();
        // A brownout over the first 30% of the quiet run (covering the
        // cold-cache epoch, when origin traffic peaks): 3x latency, 40%
        // extra throttles, and 2% 20x tail spikes throughout. The
        // hardened client's edge is hedging the spikes away and tripping
        // the breaker on throttle storms; the naive client waits every
        // disturbance out in full.
        let storm = CloudFaults {
            spike_rate: 0.02,
            spike_factor: 20.0,
            throttle_burst: 6,
            retry_after: floor,
            ..CloudFaults::none(9)
        }
        .brownout(0.0, 0.3 * quiet.execution_time, 3.0, 0.4);
        let hardened = run(
            &with(storm.clone(), CloudResilience::hardened(floor)),
            PolicyId::NoPfs,
        )
        .unwrap();
        let naive = run(
            &with(storm, CloudResilience::naive(floor / 4.0)),
            PolicyId::NoPfs,
        )
        .unwrap();

        // Disturbances cost time for everyone, but the hedged + breaker
        // client stays close to fault-free while the unbounded client
        // waits the storm out request by request.
        assert!(quiet.execution_time < hardened.execution_time);
        assert!(
            hardened.execution_time < naive.execution_time,
            "hardened {} vs naive {}",
            hardened.execution_time,
            naive.execution_time
        );
        // The access stream is untouched: every client fetched exactly
        // the same number of samples.
        let total = |r: &SimResult| r.fetch_counts.iter().sum::<u64>();
        assert_eq!(total(&quiet), total(&hardened));
        assert_eq!(total(&quiet), total(&naive));
        // The failure domain was exercised and reported.
        let hs = hardened.resilience.expect("cloud run reports stats");
        assert!(hs.throttled > 0);
        assert!(hs.breaker_to_open > 0, "the brownout must trip the breaker");
        assert!(hs.hedges_fired > 0, "20x spikes must arm hedges");
        let ns = naive.resilience.expect("cloud run reports stats");
        assert_eq!(ns.breaker_to_open, 0);
        assert_eq!(ns.hedges_fired, 0);
    }

    #[test]
    fn more_epochs_take_longer() {
        let mut s = contended_scenario();
        let t3 = run(&s, PolicyId::NoPfs).unwrap().execution_time;
        s.epochs = 6;
        let t6 = run(&s, PolicyId::NoPfs).unwrap().execution_time;
        assert!(t6 > t3 * 1.5, "t3={t3} t6={t6}");
    }
}
