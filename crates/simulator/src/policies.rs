//! Implementations of the simulated data-loading policies (Sec. 6).
//!
//! Each policy answers one question per access — *where does this sample
//! come from?* — and optionally transforms epoch sequences (sharding and
//! opportunistic policies change the access order, which is exactly the
//! randomization compromise the paper criticizes them for) or pays a
//! non-overlapped prestaging phase.

use crate::policy::Policy;
use crate::result::SimError;
use crate::scenario::Scenario;
use nopfs_clairvoyance::engine::{SetupOptions, SetupPass};
use nopfs_clairvoyance::placement::{CacheAssignment, UNASSIGNED};
use nopfs_clairvoyance::sampler::EpochShuffle;
use nopfs_clairvoyance::SampleId;
use nopfs_perfmodel::{Location, SystemSpec};
use nopfs_util::rng::{mix64, Xoshiro256pp};
use nopfs_util::units::format_bytes;
use std::collections::HashSet;

/// The behaviour a simulated policy plugs into the engine.
pub(crate) trait PolicyImpl {
    /// Whether reads overlap with compute through prefetch threads
    /// (false only for the synchronous Naive policy).
    fn overlapped(&self) -> bool {
        true
    }

    /// Seconds of non-overlapped prestaging before training starts.
    fn prestage_seconds(&self) -> f64 {
        0.0
    }

    /// Called at the start of each epoch.
    fn on_epoch_start(&mut self, _epoch: u64) {}

    /// May reorder or replace the per-worker epoch sequences.
    fn transform_epoch(
        &mut self,
        _epoch: u64,
        seqs: Vec<Vec<SampleId>>,
        _global: &EpochShuffle,
    ) -> Vec<Vec<SampleId>> {
        seqs
    }

    /// Picks the fetch source for one access.
    fn source(
        &mut self,
        worker: usize,
        sample: SampleId,
        size: u64,
        now: f64,
        gamma: usize,
    ) -> Location;

    /// Called after the access is consumed at time `now`.
    fn on_consumed(&mut self, _worker: usize, _sample: SampleId, _now: f64) {}

    /// Fraction of the dataset a worker can ever access.
    fn coverage(&self) -> f64 {
        1.0
    }

    /// Caveat note (the paper's "Does not access entire dataset").
    fn note(&self) -> Option<String> {
        None
    }
}

/// Per-worker PFS share (bytes/s) during bulk staging phases: all `N`
/// workers stream concurrently, so each gets `t(N)/N`.
fn staging_share(sys: &SystemSpec) -> f64 {
    let n = sys.workers as f64;
    sys.pfs_read.at(n) / n
}

/// Builds the implementation for `policy`, or reports why the scenario
/// is unsupported.
pub(crate) fn build(policy: Policy, scenario: &Scenario) -> Result<Box<dyn PolicyImpl>, SimError> {
    Ok(match policy {
        Policy::Perfect => Box::new(Perfect),
        Policy::Naive => Box::new(Naive),
        Policy::StagingBuffer => Box::new(StagingBuffer),
        Policy::DeepIoOrdered => Box::new(DeepIo::new(scenario, true)),
        Policy::DeepIoOpportunistic => Box::new(DeepIo::new(scenario, false)),
        Policy::ParallelStaging => Box::new(ParallelStaging::new(scenario)),
        Policy::LbannDynamic => Box::new(Lbann::new(scenario, false)?),
        Policy::LbannPreloading => Box::new(Lbann::new(scenario, true)?),
        Policy::LocalityAware => Box::new(LocalityAware::new(scenario)),
        Policy::NoPfs => Box::new(NoPfs::new(scenario)),
    })
}

// ---------------------------------------------------------------------
// Trivial policies
// ---------------------------------------------------------------------

/// The no-stall lower bound: every sample is always already staged.
struct Perfect;

impl PolicyImpl for Perfect {
    fn source(&mut self, _w: usize, _k: SampleId, _s: u64, _now: f64, _g: usize) -> Location {
        Location::Staging
    }
}

/// Synchronous PFS reads with no prefetching or caching.
struct Naive;

impl PolicyImpl for Naive {
    fn overlapped(&self) -> bool {
        false
    }
    fn source(&mut self, _w: usize, _k: SampleId, _s: u64, _now: f64, _g: usize) -> Location {
        Location::Pfs
    }
}

/// Staging-buffer prefetching from the PFS in access order: PyTorch
/// double-buffering / `tf.data`.
struct StagingBuffer;

impl PolicyImpl for StagingBuffer {
    fn source(&mut self, _w: usize, _k: SampleId, _s: u64, _now: f64, _g: usize) -> Location {
        Location::Pfs
    }
}

// ---------------------------------------------------------------------
// DeepIO
// ---------------------------------------------------------------------

/// DeepIO: a sharded in-memory (RAM-only) cache. Each worker holds the
/// round-robin shard `id ≡ rank (mod N)` up to its RAM capacity,
/// preloaded before training. Ordered mode preserves the requested
/// order, reading uncached samples from the PFS; opportunistic mode
/// substitutes cached samples for uncached ones, never touching the PFS
/// again but shrinking effective dataset coverage.
struct DeepIo {
    ordered: bool,
    /// Caching worker per sample, or -1.
    owner_of: Vec<i32>,
    /// Each worker's cached sample ids (substitution pool).
    shards: Vec<Vec<SampleId>>,
    /// Cursor into the substitution pool, per worker.
    cursors: Vec<usize>,
    prestage: f64,
    cached_samples: u64,
    num_samples: u64,
}

impl DeepIo {
    fn new(scenario: &Scenario, ordered: bool) -> Self {
        let n = scenario.system.workers;
        let f = scenario.sizes.len();
        let ram_cap = scenario.system.classes.first().map_or(0, |c| c.capacity);
        let mut owner_of = vec![-1i32; f];
        let mut shards: Vec<Vec<SampleId>> = vec![Vec::new(); n];
        let mut max_shard_bytes = 0u64;
        for (w, shard) in shards.iter_mut().enumerate() {
            let mut used = 0u64;
            let mut id = w;
            while id < f {
                let s = scenario.sizes[id];
                if used + s > ram_cap {
                    break;
                }
                used += s;
                owner_of[id] = w as i32;
                shard.push(id as SampleId);
                id += n;
            }
            max_shard_bytes = max_shard_bytes.max(used);
        }
        let cached_samples = owner_of.iter().filter(|&&o| o >= 0).count() as u64;
        let prestage = max_shard_bytes as f64 / staging_share(&scenario.system);
        Self {
            ordered,
            owner_of,
            shards,
            cursors: vec![0; n],
            prestage,
            cached_samples,
            num_samples: f as u64,
        }
    }
}

impl PolicyImpl for DeepIo {
    fn prestage_seconds(&self) -> f64 {
        self.prestage
    }

    fn transform_epoch(
        &mut self,
        _epoch: u64,
        mut seqs: Vec<Vec<SampleId>>,
        _global: &EpochShuffle,
    ) -> Vec<Vec<SampleId>> {
        if self.ordered {
            return seqs;
        }
        // Opportunistic mode: swap uncached accesses for cached samples,
        // preferring the worker's own shard.
        for (w, seq) in seqs.iter_mut().enumerate() {
            for slot in seq.iter_mut() {
                if self.owner_of[*slot as usize] >= 0 {
                    continue;
                }
                let shard = &self.shards[w];
                if !shard.is_empty() {
                    let c = self.cursors[w];
                    *slot = shard[c % shard.len()];
                    self.cursors[w] = c.wrapping_add(1);
                } else if let Some(other) = self.shards.iter().find(|s| !s.is_empty()) {
                    let c = self.cursors[w];
                    *slot = other[c % other.len()];
                    self.cursors[w] = c.wrapping_add(1);
                }
                // No cache anywhere: leave the access as-is (PFS).
            }
        }
        seqs
    }

    fn source(&mut self, w: usize, k: SampleId, _s: u64, _now: f64, _g: usize) -> Location {
        match self.owner_of[k as usize] {
            o if o == w as i32 => Location::Local(0),
            o if o >= 0 => Location::Remote(0),
            _ => Location::Pfs,
        }
    }

    fn coverage(&self) -> f64 {
        if self.ordered {
            1.0
        } else {
            self.cached_samples as f64 / self.num_samples as f64
        }
    }

    fn note(&self) -> Option<String> {
        if !self.ordered && self.cached_samples < self.num_samples {
            Some("Does not access entire dataset".to_string())
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// Parallel staging (data sharding)
// ---------------------------------------------------------------------

/// Data sharding with a prestaging phase. When the dataset fits in one
/// worker's storage (`S ≤ D`, the paper's "shards may share samples"),
/// every worker stages the whole dataset and randomization is preserved.
/// Otherwise each worker stages a disjoint round-robin shard capped at
/// its capacity and trains only on that shard — the access-order change
/// the paper flags.
struct ParallelStaging {
    /// Every worker holds the full dataset.
    full_copy: bool,
    owner_of: Vec<i32>,
    /// Storage class per cached sample (fill order across classes).
    class_of: Vec<u8>,
    shards: Vec<Vec<SampleId>>,
    epoch_lens: Vec<u64>,
    prestage: f64,
    shard_bytes: Vec<u64>,
    total_bytes: u64,
    seed: u64,
}

impl ParallelStaging {
    fn new(scenario: &Scenario) -> Self {
        let n = scenario.system.workers;
        let f = scenario.sizes.len();
        let caps = scenario.system.class_capacities();
        let d: u64 = caps.iter().sum();
        let s_total = scenario.total_bytes();
        let spec = scenario.shuffle_spec();
        let epoch_lens: Vec<u64> = (0..n).map(|w| spec.worker_epoch_len(w)).collect();
        let full_copy = s_total <= d;

        let mut owner_of = vec![-1i32; f];
        let mut class_of = vec![UNASSIGNED; f];
        let mut shards: Vec<Vec<SampleId>> = vec![Vec::new(); n];
        let mut shard_bytes = vec![0u64; n];

        if full_copy {
            // Identical layout on every worker: fill classes in id order.
            let mut class = 0usize;
            let mut used = 0u64;
            for (id, slot) in class_of.iter_mut().enumerate() {
                let sz = scenario.sizes[id];
                while class < caps.len() && used + sz > caps[class] {
                    class += 1;
                    used = 0;
                }
                // `S <= D` guarantees everything fits across classes for
                // same-size-dominated datasets; any residual overflow
                // lands in the slowest class.
                let c = class.min(caps.len().saturating_sub(1));
                *slot = c as u8;
                used += sz;
            }
            for (w, sb) in shard_bytes.iter_mut().enumerate() {
                *sb = s_total;
                shards[w] = (0..f as u64).collect();
            }
        } else {
            for w in 0..n {
                let mut used_in_class = vec![0u64; caps.len()];
                let mut id = w;
                'fill: while id < f {
                    let sz = scenario.sizes[id];
                    for (j, cap) in caps.iter().enumerate() {
                        if used_in_class[j] + sz <= *cap {
                            used_in_class[j] += sz;
                            owner_of[id] = w as i32;
                            class_of[id] = j as u8;
                            shards[w].push(id as SampleId);
                            shard_bytes[w] += sz;
                            id += n;
                            continue 'fill;
                        }
                    }
                    break; // storage full
                }
            }
        }
        let max_shard = shard_bytes.iter().copied().max().unwrap_or(0);
        let prestage = max_shard as f64 / staging_share(&scenario.system);
        Self {
            full_copy,
            owner_of,
            class_of,
            shards,
            epoch_lens,
            prestage,
            shard_bytes,
            total_bytes: s_total,
            seed: scenario.seed,
        }
    }
}

impl PolicyImpl for ParallelStaging {
    fn prestage_seconds(&self) -> f64 {
        self.prestage
    }

    fn transform_epoch(
        &mut self,
        epoch: u64,
        seqs: Vec<Vec<SampleId>>,
        _global: &EpochShuffle,
    ) -> Vec<Vec<SampleId>> {
        if self.full_copy {
            // Whole dataset everywhere: the standard fully-randomized
            // sequence is served entirely from local storage.
            return seqs;
        }
        // Shard-restricted: each worker draws its epoch from its own
        // shard (reshuffled per epoch; cycled if the shard is smaller
        // than the epoch length).
        (0..seqs.len())
            .map(|w| {
                let shard = &self.shards[w];
                let want = self.epoch_lens[w] as usize;
                if shard.is_empty() {
                    // No local storage at all: fall back to the standard
                    // sequence (every access will be a PFS read).
                    return seqs[w].clone();
                }
                let mut rng =
                    Xoshiro256pp::seed_from_u64(mix64(self.seed ^ 0x5A5A, epoch * 1024 + w as u64));
                let mut out = Vec::with_capacity(want);
                while out.len() < want {
                    let mut perm = shard.clone();
                    rng.shuffle(&mut perm);
                    let take = (want - out.len()).min(perm.len());
                    out.extend_from_slice(&perm[..take]);
                }
                out
            })
            .collect()
    }

    fn source(&mut self, w: usize, k: SampleId, _s: u64, _now: f64, _g: usize) -> Location {
        if self.full_copy {
            return Location::Local(self.class_of[k as usize]);
        }
        match self.owner_of[k as usize] {
            o if o == w as i32 => Location::Local(self.class_of[k as usize]),
            o if o >= 0 => Location::Remote(self.class_of[k as usize]),
            _ => Location::Pfs,
        }
    }

    fn coverage(&self) -> f64 {
        if self.full_copy {
            return 1.0;
        }
        // A worker only ever sees its own shard.
        let max_shard = self.shard_bytes.iter().copied().max().unwrap_or(0);
        max_shard as f64 / self.total_bytes as f64
    }

    fn note(&self) -> Option<String> {
        if self.full_copy {
            None
        } else {
            Some("Does not access entire dataset".to_string())
        }
    }
}

// ---------------------------------------------------------------------
// LBANN data store
// ---------------------------------------------------------------------

/// The LBANN data store: an in-memory, owner-served sample cache.
/// Dynamic mode populates it first-touch during epoch 0 (epoch 0 reads
/// the PFS); preloading mode pays an explicit prestaging phase instead.
/// Either way the store requires the dataset to fit in aggregate worker
/// memory — the dataset-scalability limitation of Table 1.
struct Lbann {
    preloading: bool,
    /// Owner of each sample: its epoch-0 reader.
    owner_of: Vec<u16>,
    epoch: u64,
    prestage: f64,
}

impl Lbann {
    fn new(scenario: &Scenario, preloading: bool) -> Result<Self, SimError> {
        let n = scenario.system.workers;
        let ram = scenario.system.classes.first().map_or(0, |c| c.capacity);
        let aggregate = ram.saturating_mul(n as u64);
        let s_total = scenario.total_bytes();
        if s_total > aggregate {
            return Err(SimError::Unsupported(format!(
                "LBANN data store requires the dataset ({}) to fit in aggregate worker memory ({})",
                format_bytes(s_total as f64),
                format_bytes(aggregate as f64),
            )));
        }
        // Epoch-0 first-touch ownership is clairvoyantly computable.
        let spec = scenario.shuffle_spec();
        let shuffle = spec.epoch_shuffle(0);
        let mut owner_of = vec![0u16; scenario.sizes.len()];
        for (pos, &id) in shuffle.global_order().iter().enumerate() {
            owner_of[id as usize] = (pos % n) as u16;
        }
        let prestage = if preloading {
            (s_total as f64 / n as f64) / staging_share(&scenario.system)
        } else {
            0.0
        };
        Ok(Self {
            preloading,
            owner_of,
            epoch: 0,
            prestage,
        })
    }
}

impl PolicyImpl for Lbann {
    fn prestage_seconds(&self) -> f64 {
        self.prestage
    }

    fn on_epoch_start(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    fn source(&mut self, w: usize, k: SampleId, _s: u64, _now: f64, _g: usize) -> Location {
        if !self.preloading && self.epoch == 0 {
            // Dynamic mode: epoch 0 populates the store from the PFS.
            return Location::Pfs;
        }
        if self.owner_of[k as usize] as usize == w {
            Location::Local(0)
        } else {
            Location::Remote(0)
        }
    }
}

// ---------------------------------------------------------------------
// Locality-aware loading (Yang & Cong)
// ---------------------------------------------------------------------

/// Locality-aware loading: first-touch caching in epoch 0 (RAM, then
/// further classes), then per-iteration batch reassignment so cached
/// samples are consumed by the worker holding them. Preserves full
/// coverage (uncached samples still come from the PFS) but changes which
/// worker sees which sample — the "reorder batches" logic the paper
/// simulates.
struct LocalityAware {
    owner_of: Vec<i32>,
    class_of: Vec<u8>,
    epoch: u64,
    workers: usize,
    batch: usize,
}

impl LocalityAware {
    fn new(scenario: &Scenario) -> Self {
        let n = scenario.system.workers;
        let caps = scenario.system.class_capacities();
        let spec = scenario.shuffle_spec();
        let shuffle = spec.epoch_shuffle(0);
        let f = scenario.sizes.len();
        let mut owner_of = vec![-1i32; f];
        let mut class_of = vec![UNASSIGNED; f];
        let mut used = vec![vec![0u64; caps.len()]; n];
        for (pos, &id) in shuffle.global_order().iter().enumerate() {
            let w = pos % n;
            let sz = scenario.sizes[id as usize];
            for (j, cap) in caps.iter().enumerate() {
                if used[w][j] + sz <= *cap {
                    used[w][j] += sz;
                    owner_of[id as usize] = w as i32;
                    class_of[id as usize] = j as u8;
                    break;
                }
            }
        }
        Self {
            owner_of,
            class_of,
            epoch: 0,
            workers: n,
            batch: scenario.batch_size,
        }
    }
}

impl PolicyImpl for LocalityAware {
    fn on_epoch_start(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    fn transform_epoch(
        &mut self,
        epoch: u64,
        seqs: Vec<Vec<SampleId>>,
        global: &EpochShuffle,
    ) -> Vec<Vec<SampleId>> {
        if epoch == 0 {
            return seqs;
        }
        // Reassign each global iteration window so cache owners consume
        // their own samples where quota allows.
        let n = self.workers;
        let order = global.global_order();
        let window = n * self.batch;
        let mut out: Vec<Vec<SampleId>> = vec![Vec::new(); n];
        for chunk in order.chunks(window) {
            let mut quota = vec![0usize; n];
            let base = chunk.len() / n;
            let extra = chunk.len() % n;
            for (w, q) in quota.iter_mut().enumerate() {
                *q = base + usize::from(w < extra);
            }
            let mut leftovers: Vec<SampleId> = Vec::new();
            for &id in chunk {
                match self.owner_of[id as usize] {
                    o if o >= 0 && quota[o as usize] > 0 => {
                        quota[o as usize] -= 1;
                        out[o as usize].push(id);
                    }
                    _ => leftovers.push(id),
                }
            }
            let mut w = 0usize;
            for id in leftovers {
                while quota[w] == 0 {
                    w = (w + 1) % n;
                }
                quota[w] -= 1;
                out[w].push(id);
            }
        }
        out
    }

    fn source(&mut self, w: usize, k: SampleId, _s: u64, _now: f64, _g: usize) -> Location {
        if self.epoch == 0 {
            return Location::Pfs;
        }
        match self.owner_of[k as usize] {
            o if o == w as i32 => Location::Local(self.class_of[k as usize]),
            o if o >= 0 => Location::Remote(self.class_of[k as usize]),
            _ => Location::Pfs,
        }
    }
}

// ---------------------------------------------------------------------
// NoPFS
// ---------------------------------------------------------------------

/// NoPFS's clairvoyant policy (Sec. 5): frequency-ranked placement into
/// the storage hierarchy, class prefetchers filling in first-access
/// order concurrently with training, and per-access source selection by
/// modelled fetch time over {local class, remote holder, PFS}.
///
/// Prefetch progress is modelled by per-sample *ready times*: each class
/// prefetcher drains its assignment list at the smaller of the class's
/// write bandwidth and its share of this worker's PFS bandwidth (shares
/// split proportionally to prefetch thread counts). A sample consumed
/// before its prefetcher reached it becomes cached at consumption time —
/// the paper's "that prefetcher will retrieve and cache the sample
/// itself" self-healing.
struct NoPfs {
    sys: SystemSpec,
    /// Per worker: class of each sample or UNASSIGNED.
    class_of: Vec<Vec<u8>>,
    /// Per worker: modelled time at which each sample is cached locally.
    ready: Vec<Vec<f32>>,
    /// Per worker: samples cached early by self-healing.
    overrides: Vec<HashSet<SampleId>>,
}

impl NoPfs {
    fn new(scenario: &Scenario) -> Self {
        let sys = scenario.system.clone();
        let n = sys.workers;
        let spec = scenario.shuffle_spec();
        let caps = sys.class_capacities();
        // One engine pass derives frequencies and first-access inputs
        // for every worker (the per-worker recomputation here used to
        // cost O(N·E·F) shuffle generations).
        let artifacts = SetupPass::with_options(
            spec,
            scenario.epochs,
            SetupOptions {
                materialize_streams: false,
            },
        )
        .run();
        let share = staging_share(&sys);
        let total_threads: u32 = sys
            .classes
            .iter()
            .map(|c| c.prefetch_threads.max(1))
            .sum::<u32>()
            .max(1);

        let mut class_of = Vec::with_capacity(n);
        let mut ready = Vec::with_capacity(n);
        for w in 0..n {
            let assignment = CacheAssignment::compute(
                artifacts.table.counts(w),
                &artifacts.first_access[w],
                &scenario.sizes,
                &caps,
            );
            let mut ready_w = vec![f32::INFINITY; scenario.sizes.len()];
            for (j, class) in sys.classes.iter().enumerate() {
                let write_bw = class.write.at(f64::from(class.prefetch_threads.max(1)));
                let pfs_part =
                    share * f64::from(class.prefetch_threads.max(1)) / f64::from(total_threads);
                let fill_rate = write_bw.min(pfs_part).max(1.0);
                let mut cum = 0u64;
                for &k in assignment.prefetch_order(j) {
                    cum += scenario.sizes[k as usize];
                    ready_w[k as usize] = (cum as f64 / fill_rate) as f32;
                }
            }
            class_of.push(assignment.class_map().to_vec());
            ready.push(ready_w);
        }
        Self {
            sys,
            class_of,
            ready,
            overrides: vec![HashSet::new(); n],
        }
    }

    fn locally_ready(&self, w: usize, k: SampleId, now: f64) -> bool {
        f64::from(self.ready[w][k as usize]) <= now || self.overrides[w].contains(&k)
    }
}

impl PolicyImpl for NoPfs {
    fn source(&mut self, w: usize, k: SampleId, size: u64, now: f64, gamma: usize) -> Location {
        let mut candidates: Vec<Location> = Vec::with_capacity(3);
        let own = self.class_of[w][k as usize];
        if own != UNASSIGNED && self.locally_ready(w, k, now) {
            candidates.push(Location::Local(own));
        }
        // Fastest remote holder whose prefetcher (per the progress
        // estimate) already cached the sample. Remote self-heal state is
        // deliberately not consulted — the runtime heuristic can't see
        // it either.
        let mut best_remote: Option<u8> = None;
        for (o, classes) in self.class_of.iter().enumerate() {
            if o == w {
                continue;
            }
            let c = classes[k as usize];
            if c != UNASSIGNED && f64::from(self.ready[o][k as usize]) <= now {
                best_remote = Some(best_remote.map_or(c, |b| b.min(c)));
            }
        }
        if let Some(c) = best_remote {
            candidates.push(Location::Remote(c));
        }
        candidates.push(Location::Pfs);
        self.sys
            .fastest_source(&candidates, size, gamma)
            .expect("candidates never empty")
    }

    fn on_consumed(&mut self, w: usize, k: SampleId, now: f64) {
        // Self-healing: consuming a sample that its class prefetcher had
        // not reached caches it immediately (the staging fetch doubles
        // as the class fill).
        let c = self.class_of[w][k as usize];
        if c != UNASSIGNED && f64::from(self.ready[w][k as usize]) > now {
            self.overrides[w].insert(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::fig8_small_cluster;

    fn tiny_scenario(total_samples: usize, sample_bytes: u64) -> Scenario {
        let mut sys = fig8_small_cluster();
        sys.classes[0].capacity = 50 * sample_bytes;
        sys.classes[1].capacity = 100 * sample_bytes;
        Scenario::new("tiny", sys, vec![sample_bytes; total_samples], 2, 4, 11)
    }

    #[test]
    fn deep_io_shards_are_round_robin_and_capped() {
        let s = tiny_scenario(1000, 1_000_000);
        let d = DeepIo::new(&s, true);
        // RAM holds 50 samples per worker.
        for shard in &d.shards {
            assert_eq!(shard.len(), 50);
        }
        // Round-robin membership.
        for (w, shard) in d.shards.iter().enumerate() {
            assert!(shard.iter().all(|&id| id as usize % 4 == w));
        }
        assert_eq!(d.cached_samples, 200);
        assert!(d.prestage > 0.0);
    }

    #[test]
    fn deep_io_opportunistic_substitutes_uncached() {
        let s = tiny_scenario(1000, 1_000_000);
        let mut d = DeepIo::new(&s, false);
        let spec = s.shuffle_spec();
        let shuffle = spec.epoch_shuffle(0);
        let seqs: Vec<Vec<SampleId>> = (0..4).map(|w| shuffle.worker_sequence(w)).collect();
        let out = d.transform_epoch(0, seqs, &shuffle);
        for seq in &out {
            for &k in seq {
                assert!(d.owner_of[k as usize] >= 0, "uncached sample {k} survived");
            }
        }
        assert!(d.coverage() < 1.0);
        assert!(d.note().is_some());
    }

    #[test]
    fn parallel_staging_full_copy_when_fits() {
        let s = tiny_scenario(100, 1_000_000); // S=100 MB < D=150 MB
        let p = ParallelStaging::new(&s);
        assert!(p.full_copy);
        assert_eq!(p.coverage(), 1.0);
        // RAM then SSD fill order: first 50 in class 0, rest class 1.
        assert_eq!(p.class_of[0], 0);
        assert_eq!(p.class_of[99], 1);
    }

    #[test]
    fn parallel_staging_shards_when_too_big() {
        let s = tiny_scenario(1000, 1_000_000); // S=1000 > D=150
        let mut p = ParallelStaging::new(&s);
        assert!(!p.full_copy);
        assert!(p.coverage() < 1.0);
        // Each worker's epoch sequence draws only from its shard.
        let spec = s.shuffle_spec();
        let shuffle = spec.epoch_shuffle(1);
        let seqs: Vec<Vec<SampleId>> = (0..4).map(|w| shuffle.worker_sequence(w)).collect();
        let lens: Vec<usize> = seqs.iter().map(Vec::len).collect();
        let out = p.transform_epoch(1, seqs, &shuffle);
        for (w, seq) in out.iter().enumerate() {
            assert_eq!(seq.len(), lens[w], "epoch length preserved");
            assert!(seq.iter().all(|&k| p.owner_of[k as usize] == w as i32));
        }
    }

    #[test]
    fn lbann_owner_partition_covers_dataset() {
        let s = tiny_scenario(150, 1_000_000); // fits in 4*50 MB RAM
        let l = Lbann::new(&s, false).unwrap();
        // Every sample has an owner in range.
        assert!(l.owner_of.iter().all(|&o| (o as usize) < 4));
    }

    #[test]
    fn lbann_rejects_oversized_dataset() {
        let s = tiny_scenario(1000, 1_000_000); // 1000 MB > 200 MB RAM
        match Lbann::new(&s, true) {
            Err(SimError::Unsupported(m)) => assert!(m.contains("aggregate")),
            _ => panic!("expected unsupported"),
        }
    }

    #[test]
    fn locality_aware_reassigns_to_owners() {
        let s = tiny_scenario(400, 1_000_000);
        let mut la = LocalityAware::new(&s);
        let spec = s.shuffle_spec();
        let shuffle = spec.epoch_shuffle(1);
        let seqs: Vec<Vec<SampleId>> = (0..4).map(|w| shuffle.worker_sequence(w)).collect();
        let before_local: usize = seqs
            .iter()
            .enumerate()
            .map(|(w, s_)| {
                s_.iter()
                    .filter(|&&k| la.owner_of[k as usize] == w as i32)
                    .count()
            })
            .sum();
        let out = la.transform_epoch(1, seqs, &shuffle);
        let after_local: usize = out
            .iter()
            .enumerate()
            .map(|(w, s_)| {
                s_.iter()
                    .filter(|&&k| la.owner_of[k as usize] == w as i32)
                    .count()
            })
            .sum();
        assert!(
            after_local > before_local,
            "reassignment should increase locality: {before_local} -> {after_local}"
        );
        // The transformed epoch is still a permutation of the original.
        let mut all: Vec<SampleId> = out.into_iter().flatten().collect();
        all.sort_unstable();
        let mut expect: Vec<SampleId> = shuffle.global_order().to_vec();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn nopfs_self_heals_on_early_consumption() {
        let s = tiny_scenario(200, 1_000_000);
        let mut np = NoPfs::new(&s);
        // Find a sample assigned to worker 0 whose prefetcher reaches it
        // late, then consume it before that.
        let k = (0..200u64)
            .find(|&k| np.class_of[0][k as usize] != UNASSIGNED && np.ready[0][k as usize] > 0.1)
            .expect("some sample is assigned with a late ready time");
        assert!(!np.locally_ready(0, k, 0.05));
        np.on_consumed(0, k, 0.05);
        assert!(np.locally_ready(0, k, 0.05));
    }

    #[test]
    fn nopfs_prefers_local_when_ready() {
        let s = tiny_scenario(200, 1_000_000);
        let mut np = NoPfs::new(&s);
        let k = (0..200u64)
            .find(|&k| np.class_of[0][k as usize] == 0)
            .expect("worker 0 caches something in RAM");
        // Far in the future everything is prefetched.
        let loc = np.source(0, k, 1_000_000, 1e12, 4);
        assert_eq!(loc, Location::Local(0));
    }

    #[test]
    fn nopfs_falls_back_to_pfs_initially() {
        let s = tiny_scenario(200, 1_000_000);
        let mut np = NoPfs::new(&s);
        // At time zero nothing is prefetched anywhere.
        let loc = np.source(0, 7, 1_000_000, 0.0, 4);
        assert_eq!(loc, Location::Pfs);
    }
}
