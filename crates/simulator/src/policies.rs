//! The simulated data-loading policies (Sec. 6), as adapters over the
//! workspace decision core.
//!
//! Every baseline policy's *decision* logic — ownership maps, epoch
//! transforms, prestage plans, coverage — lives in
//! [`nopfs_policy::core`], where the threaded runtime executes the
//! identical objects; the `CoreAdapter` here merely translates a
//! [`PolicyCore`]'s answers into the event loop's `Location`s. Only two
//! policies are simulator-specific: `Perfect` (definitionally a bound)
//! and `NoPfs`, whose candidates come from modelled prefetch ready
//! times — though its final pick still goes through the shared
//! [`nopfs_policy::decision::select_source`] code path, exactly like
//! the runtime's staging fetches.

use crate::result::SimError;
use crate::scenario::Scenario;
use nopfs_clairvoyance::engine::{SetupOptions, SetupPass};
use nopfs_clairvoyance::placement::{CacheAssignment, UNASSIGNED};
use nopfs_clairvoyance::sampler::EpochShuffle;
use nopfs_clairvoyance::SampleId;
use nopfs_perfmodel::{Location, SystemSpec};
use nopfs_policy::decision::{select_source, select_source_degraded, staging_share};
use nopfs_policy::PolicyId;
use nopfs_policy::{build_core, PolicyCore, Source};
use std::collections::HashSet;

/// The behaviour a simulated policy plugs into the engine.
pub(crate) trait PolicyImpl {
    /// Whether reads overlap with compute through prefetch threads
    /// (false only for the synchronous Naive policy).
    fn overlapped(&self) -> bool {
        true
    }

    /// Seconds of non-overlapped prestaging before training starts.
    fn prestage_seconds(&self) -> f64 {
        0.0
    }

    /// Called at the start of each epoch.
    fn on_epoch_start(&mut self, _epoch: u64) {}

    /// May reorder or replace the per-worker epoch sequences.
    fn transform_epoch(
        &mut self,
        _epoch: u64,
        seqs: Vec<Vec<SampleId>>,
        _global: &EpochShuffle,
    ) -> Vec<Vec<SampleId>> {
        seqs
    }

    /// Picks the fetch source for one access.
    fn source(
        &mut self,
        worker: usize,
        sample: SampleId,
        size: u64,
        now: f64,
        gamma: usize,
    ) -> Location;

    /// Like [`Self::source`], but told whether the origin is accepting
    /// traffic (`origin_ok` is false while a cloud origin's circuit
    /// breaker is open and cooling). Policies that pick sources by cost
    /// should steer away from an unavailable origin; the default
    /// ignores the hint — baseline policies have fixed source rules and
    /// simply wait the origin out, which is exactly their weakness.
    fn source_degraded(
        &mut self,
        worker: usize,
        sample: SampleId,
        size: u64,
        now: f64,
        gamma: usize,
        _origin_ok: bool,
    ) -> Location {
        self.source(worker, sample, size, now, gamma)
    }

    /// Called after the access is consumed at time `now`.
    fn on_consumed(&mut self, _worker: usize, _sample: SampleId, _now: f64) {}

    /// Fraction of the dataset a worker can ever access.
    fn coverage(&self) -> f64 {
        1.0
    }

    /// Caveat note (the paper's "Does not access entire dataset").
    fn note(&self) -> Option<String> {
        None
    }
}

/// Builds the implementation for `policy`, or reports why the scenario
/// is unsupported.
pub(crate) fn build(
    policy: PolicyId,
    scenario: &Scenario,
) -> Result<Box<dyn PolicyImpl>, SimError> {
    Ok(match policy {
        PolicyId::Perfect => Box::new(Perfect),
        PolicyId::NoPfs => Box::new(NoPfs::new(scenario)),
        _ => {
            let core = build_core(
                policy,
                &scenario.system,
                &scenario.sizes,
                &scenario.shuffle_spec(),
            )
            .map_err(|u| SimError::Unsupported(u.0))?
            .expect("every baseline policy has a shared core");
            Box::new(CoreAdapter::new(core, &scenario.system))
        }
    })
}

// ---------------------------------------------------------------------
// The shared-core adapter
// ---------------------------------------------------------------------

/// Runs a [`PolicyCore`]'s decisions inside the event loop: sources map
/// to `Location`s, the prestage plan to a non-overlapped phase, epoch
/// transforms pass straight through.
struct CoreAdapter {
    core: Box<dyn PolicyCore>,
    prestage: f64,
    epoch: u64,
}

impl CoreAdapter {
    fn new(core: Box<dyn PolicyCore>, sys: &SystemSpec) -> Self {
        let prestage = core.prestage_seconds(sys);
        Self {
            core,
            prestage,
            epoch: 0,
        }
    }
}

impl PolicyImpl for CoreAdapter {
    fn overlapped(&self) -> bool {
        self.core.overlapped()
    }

    fn prestage_seconds(&self) -> f64 {
        self.prestage
    }

    fn on_epoch_start(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    fn transform_epoch(
        &mut self,
        epoch: u64,
        seqs: Vec<Vec<SampleId>>,
        global: &EpochShuffle,
    ) -> Vec<Vec<SampleId>> {
        self.core.transform_epoch(epoch, seqs, global)
    }

    fn source(&mut self, w: usize, k: SampleId, _s: u64, _now: f64, _g: usize) -> Location {
        match self.core.source(w, k, self.epoch) {
            Source::Local(c) => Location::Local(c),
            Source::Remote { class, .. } => Location::Remote(class),
            Source::Pfs => Location::Pfs,
        }
    }

    fn coverage(&self) -> f64 {
        self.core.coverage()
    }

    fn note(&self) -> Option<String> {
        self.core.note()
    }
}

// ---------------------------------------------------------------------
// Simulator-specific policies
// ---------------------------------------------------------------------

/// The no-stall lower bound: every sample is always already staged.
struct Perfect;

impl PolicyImpl for Perfect {
    fn source(&mut self, _w: usize, _k: SampleId, _s: u64, _now: f64, _g: usize) -> Location {
        Location::Staging
    }
}

/// NoPFS's clairvoyant policy (Sec. 5): frequency-ranked placement into
/// the storage hierarchy, class prefetchers filling in first-access
/// order concurrently with training, and per-access source selection by
/// modelled fetch time over {local class, remote holder, PFS} — the
/// final pick made by the shared [`select_source`], the same code path
/// the threaded runtime's staging fetches go through.
///
/// Prefetch progress is modelled by per-sample *ready times*: each class
/// prefetcher drains its assignment list at the smaller of the class's
/// write bandwidth and its share of this worker's PFS bandwidth (shares
/// split proportionally to prefetch thread counts). A sample consumed
/// before its prefetcher reached it becomes cached at consumption time —
/// the paper's "that prefetcher will retrieve and cache the sample
/// itself" self-healing.
struct NoPfs {
    sys: SystemSpec,
    /// Per worker: class of each sample or UNASSIGNED.
    class_of: Vec<Vec<u8>>,
    /// Per worker: modelled time at which each sample is cached locally.
    ready: Vec<Vec<f32>>,
    /// Per worker: samples cached early by self-healing.
    overrides: Vec<HashSet<SampleId>>,
}

impl NoPfs {
    fn new(scenario: &Scenario) -> Self {
        let sys = scenario.system.clone();
        let n = sys.workers;
        let spec = scenario.shuffle_spec();
        let caps = sys.class_capacities();
        // One engine pass derives frequencies and first-access inputs
        // for every worker (the per-worker recomputation here used to
        // cost O(N·E·F) shuffle generations).
        let artifacts = SetupPass::with_options(
            spec,
            scenario.epochs,
            SetupOptions {
                materialize_streams: false,
            },
        )
        .run();
        let share = staging_share(&sys);
        let total_threads: u32 = sys
            .classes
            .iter()
            .map(|c| c.prefetch_threads.max(1))
            .sum::<u32>()
            .max(1);

        let mut class_of = Vec::with_capacity(n);
        let mut ready = Vec::with_capacity(n);
        for w in 0..n {
            let assignment = CacheAssignment::compute(
                artifacts.table.counts(w),
                &artifacts.first_access[w],
                &scenario.sizes,
                &caps,
            );
            let mut ready_w = vec![f32::INFINITY; scenario.sizes.len()];
            for (j, class) in sys.classes.iter().enumerate() {
                let write_bw = class.write.at(f64::from(class.prefetch_threads.max(1)));
                let pfs_part =
                    share * f64::from(class.prefetch_threads.max(1)) / f64::from(total_threads);
                let fill_rate = write_bw.min(pfs_part).max(1.0);
                let mut cum = 0u64;
                for &k in assignment.prefetch_order(j) {
                    cum += scenario.sizes[k as usize];
                    ready_w[k as usize] = (cum as f64 / fill_rate) as f32;
                }
            }
            class_of.push(assignment.class_map().to_vec());
            ready.push(ready_w);
        }
        Self {
            sys,
            class_of,
            ready,
            overrides: vec![HashSet::new(); n],
        }
    }

    fn locally_ready(&self, w: usize, k: SampleId, now: f64) -> bool {
        f64::from(self.ready[w][k as usize]) <= now || self.overrides[w].contains(&k)
    }

    /// The `{local class, fastest remote holder}` candidate pair at
    /// model time `now` — the inputs to the shared selection rule.
    fn candidates(&self, w: usize, k: SampleId, now: f64) -> (Option<u8>, Option<u8>) {
        let own = self.class_of[w][k as usize];
        let local = (own != UNASSIGNED && self.locally_ready(w, k, now)).then_some(own);
        // Fastest remote holder whose prefetcher (per the progress
        // estimate) already cached the sample. Remote self-heal state is
        // deliberately not consulted — the runtime heuristic can't see
        // it either.
        let mut remote: Option<u8> = None;
        for (o, classes) in self.class_of.iter().enumerate() {
            if o == w {
                continue;
            }
            let c = classes[k as usize];
            if c != UNASSIGNED && f64::from(self.ready[o][k as usize]) <= now {
                remote = Some(remote.map_or(c, |b| b.min(c)));
            }
        }
        (local, remote)
    }
}

impl PolicyImpl for NoPfs {
    fn source(&mut self, w: usize, k: SampleId, size: u64, now: f64, gamma: usize) -> Location {
        // The same shared code path the runtime's staging fetches go
        // through: the {local, remote, origin} wrapper over the
        // ordered-tier-list argmin (`select_source_tiered`).
        let (local, remote) = self.candidates(w, k, now);
        select_source(&self.sys, local, remote, size, gamma)
    }

    fn source_degraded(
        &mut self,
        w: usize,
        k: SampleId,
        size: u64,
        now: f64,
        gamma: usize,
        origin_ok: bool,
    ) -> Location {
        // Graceful degradation, same shared rule as the runtime: an
        // unavailable origin is dropped from the candidate list when
        // any peer or local tier can serve the sample.
        let (local, remote) = self.candidates(w, k, now);
        select_source_degraded(&self.sys, local, remote, size, gamma, origin_ok)
    }

    fn on_consumed(&mut self, w: usize, k: SampleId, now: f64) {
        // Self-healing: consuming a sample that its class prefetcher had
        // not reached caches it immediately (the staging fetch doubles
        // as the class fill).
        let c = self.class_of[w][k as usize];
        if c != UNASSIGNED && f64::from(self.ready[w][k as usize]) > now {
            self.overrides[w].insert(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::fig8_small_cluster;

    fn tiny_scenario(total_samples: usize, sample_bytes: u64) -> Scenario {
        let mut sys = fig8_small_cluster();
        sys.classes[0].capacity = 50 * sample_bytes;
        sys.classes[1].capacity = 100 * sample_bytes;
        Scenario::new("tiny", sys, vec![sample_bytes; total_samples], 2, 4, 11)
    }

    #[test]
    fn nopfs_self_heals_on_early_consumption() {
        let s = tiny_scenario(200, 1_000_000);
        let mut np = NoPfs::new(&s);
        // Find a sample assigned to worker 0 whose prefetcher reaches it
        // late, then consume it before that.
        let k = (0..200u64)
            .find(|&k| np.class_of[0][k as usize] != UNASSIGNED && np.ready[0][k as usize] > 0.1)
            .expect("some sample is assigned with a late ready time");
        assert!(!np.locally_ready(0, k, 0.05));
        np.on_consumed(0, k, 0.05);
        assert!(np.locally_ready(0, k, 0.05));
    }

    #[test]
    fn nopfs_prefers_local_when_ready() {
        let s = tiny_scenario(200, 1_000_000);
        let mut np = NoPfs::new(&s);
        let k = (0..200u64)
            .find(|&k| np.class_of[0][k as usize] == 0)
            .expect("worker 0 caches something in RAM");
        // Far in the future everything is prefetched.
        let loc = np.source(0, k, 1_000_000, 1e12, 4);
        assert_eq!(loc, Location::Local(0));
    }

    #[test]
    fn nopfs_falls_back_to_pfs_initially() {
        let s = tiny_scenario(200, 1_000_000);
        let mut np = NoPfs::new(&s);
        // At time zero nothing is prefetched anywhere.
        let loc = np.source(0, 7, 1_000_000, 0.0, 4);
        assert_eq!(loc, Location::Pfs);
    }

    #[test]
    fn core_adapter_prices_prestage_and_tracks_epochs() {
        let s = tiny_scenario(1000, 1_000_000);
        let mut p = build(PolicyId::DeepIoOrdered, &s).expect("supported");
        assert!(p.prestage_seconds() > 0.0);
        assert!(p.overlapped());
        // DeepIO ordered: a worker's own shard is local, a peer's is
        // remote, uncached samples hit the PFS.
        let core = build_core(
            PolicyId::DeepIoOrdered,
            &s.system,
            &s.sizes,
            &s.shuffle_spec(),
        )
        .unwrap()
        .unwrap();
        for k in 0..1000u64 {
            let loc = p.source(0, k, 1_000_000, 0.0, 1);
            let expect = match core.source(0, k, 0) {
                Source::Local(c) => Location::Local(c),
                Source::Remote { class, .. } => Location::Remote(class),
                Source::Pfs => Location::Pfs,
            };
            assert_eq!(loc, expect, "sample {k}");
        }
    }

    #[test]
    fn naive_core_is_synchronous() {
        let s = tiny_scenario(32, 1_000);
        let p = build(PolicyId::Naive, &s).expect("supported");
        assert!(!p.overlapped());
        let p = build(PolicyId::StagingBuffer, &s).expect("supported");
        assert!(p.overlapped());
    }

    #[test]
    fn unsupported_core_surfaces_as_sim_error() {
        let s = tiny_scenario(1000, 1_000_000); // 1000 MB > 200 MB RAM
        match build(PolicyId::LbannDynamic, &s) {
            Err(SimError::Unsupported(m)) => assert!(m.contains("aggregate")),
            _ => panic!("expected unsupported"),
        }
    }
}
