//! Multi-job simulation: K co-scheduled training jobs contending on one
//! shared PFS.
//!
//! The single-job engine ([`crate::engine::run`]) tracks the PFS client
//! count `γ` only within one job; here several jobs — each with its own
//! scenario, policy, and staggered start time — advance through a
//! shared model clock, and every job's reads are priced at `t(γ)` for
//! the **combined** client count across all concurrently active jobs.
//! This is the paper's opening scenario (Sec. 1–2, Fig. 2): aggregate
//! PFS throughput saturates, so co-located jobs interfere — unless a
//! policy stops hitting the PFS once its caches warm up.
//!
//! Scheduling is discrete and approximate in the same spirit as the
//! single-job engine: the job whose time front (its slowest worker's
//! consumption clock plus its start offset) is earliest advances by one
//! iteration, with `γ` summed over the jobs that have started and not
//! yet finished. Because jobs are simulated rather than threaded, K can
//! sweep far past what the in-process thread runtime allows.
//!
//! Interconnects are *partitioned*: each job keeps its own modelled
//! cluster network (co-scheduled HPC jobs run on disjoint node sets but
//! share the filesystem), so only the PFS couples tenants.

use crate::cloud::CloudModel;
use crate::engine::{loc_index, Acc};
use crate::policies;
use crate::result::{Breakdown, SimError, SimResult};
use crate::scenario::Scenario;
use nopfs_policy::PolicyId;

/// One co-scheduled job: a scenario, its loader policy, and when it
/// starts relative to the cluster clock (model seconds).
#[derive(Debug, Clone)]
pub struct SimTenant {
    /// The job's own system + dataset + run parameters. Each tenant's
    /// reads are priced on its own `system` — including its `pfs_read`
    /// curve — so to model one shared filesystem, give every tenant
    /// the same curve (as `nopfs_bench::scenarios::fig2` does); the
    /// engine does not cross-check them.
    pub scenario: Scenario,
    /// The data-loading policy this job runs.
    pub policy: PolicyId,
    /// Start offset, model seconds (`0.0` = starts immediately).
    pub start: f64,
}

impl SimTenant {
    /// A tenant starting at t = 0.
    pub fn new(scenario: Scenario, policy: PolicyId) -> Self {
        Self {
            scenario,
            policy,
            start: 0.0,
        }
    }

    /// Sets the start offset.
    pub fn starting_at(self, start: f64) -> Self {
        assert!(start >= 0.0 && start.is_finite());
        Self { start, ..self }
    }
}

/// Per-job simulation state between iterations.
struct JobState<'a> {
    tenant: &'a SimTenant,
    policy: Box<dyn policies::PolicyImpl>,
    accs: Vec<Acc>,
    prev_consumed: Vec<f64>,
    breakdown: Breakdown,
    fetch_counts: [u64; 4],
    /// Current epoch's per-worker sequences.
    seqs: Vec<Vec<u64>>,
    /// Iterations in the current epoch and the next one to run.
    iterations: usize,
    iter: usize,
    epoch: u64,
    /// This job's PFS clients observed in its previous iteration.
    gamma_self: usize,
    threads_per_worker: usize,
    started: bool,
    finished: bool,
    /// Per-tenant cloud origin model, when the scenario routes the
    /// origin through an object store.
    cloud: Option<CloudModel>,
}

impl<'a> JobState<'a> {
    fn new(tenant: &'a SimTenant) -> Result<Self, SimError> {
        let policy = policies::build(tenant.policy, &tenant.scenario)?;
        let sys = &tenant.scenario.system;
        let n = sys.workers;
        let threads_per_worker = if policy.overlapped() {
            sys.staging.threads as usize
        } else {
            1
        };
        let accs = (0..n)
            .map(|_| Acc::new(sys.compute, sys.staging.threads, policy.overlapped()))
            .collect();
        let mut state = Self {
            tenant,
            policy,
            accs,
            prev_consumed: vec![0.0; n],
            breakdown: Breakdown::default(),
            fetch_counts: [0; 4],
            seqs: Vec::new(),
            iterations: 0,
            iter: 0,
            epoch: 0,
            // Pessimistic before the first iteration, like the
            // single-job engine.
            gamma_self: (n * threads_per_worker).max(1),
            threads_per_worker,
            started: false,
            finished: false,
            cloud: tenant.scenario.cloud.clone().map(CloudModel::new),
        };
        state.load_epoch(0);
        Ok(state)
    }

    /// Loads epoch `e`'s sequences, or marks the job finished.
    fn load_epoch(&mut self, e: u64) {
        if e >= self.tenant.scenario.epochs {
            self.finished = true;
            self.gamma_self = 0;
            return;
        }
        let spec = self.tenant.scenario.shuffle_spec();
        let shuffle = spec.epoch_shuffle(e);
        self.policy.on_epoch_start(e);
        let n = self.tenant.scenario.system.workers;
        let seqs: Vec<Vec<u64>> = (0..n).map(|w| shuffle.worker_sequence(w)).collect();
        self.seqs = self.policy.transform_epoch(e, seqs, &shuffle);
        let b = self.tenant.scenario.batch_size;
        self.iterations = self
            .seqs
            .iter()
            .map(|s| s.len().div_ceil(b))
            .max()
            .unwrap_or(0);
        self.iter = 0;
        self.epoch = e;
        if self.iterations == 0 {
            self.load_epoch(e + 1);
        }
    }

    /// The job's time front on the cluster clock: start offset plus the
    /// slowest worker's consumption clock.
    fn front(&self) -> f64 {
        self.tenant.start + self.accs.iter().map(Acc::last).fold(0.0, f64::max)
    }

    /// Advances one iteration, pricing PFS reads at the cluster-wide
    /// `gamma`. Returns this job's new own-client count.
    fn advance(&mut self, gamma: usize) -> usize {
        self.started = true;
        let scenario = &self.tenant.scenario;
        let sys = &scenario.system;
        let n = sys.workers;
        let b = scenario.batch_size;
        let h = self.iter;
        let mut pfs_workers = 0usize;
        for w in 0..n {
            let seq = &self.seqs[w];
            let lo = h * b;
            if lo >= seq.len() {
                continue;
            }
            let hi = ((h + 1) * b).min(seq.len());
            let mut used_pfs = false;
            for &k in &seq[lo..hi] {
                let now = self.accs[w].last();
                let size = scenario.sizes[k as usize];
                let origin_ok = self.cloud.as_ref().is_none_or(|c| c.available(now));
                let loc = self
                    .policy
                    .source_degraded(w, k, size, now, gamma, origin_ok);
                let read = match (&mut self.cloud, loc) {
                    (Some(c), nopfs_perfmodel::Location::Pfs) => c.read_cost(now, size, gamma),
                    _ => sys.read_time(loc, size, gamma),
                };
                let (consumed, stall) = self.accs[w].push(read, size);
                let interval = consumed - self.prev_consumed[w];
                let busy = (interval - stall).max(0.0);
                let overlapped_fetch = read.min(busy);
                self.breakdown
                    .attribute(loc, stall + overlapped_fetch, busy - overlapped_fetch);
                self.prev_consumed[w] = consumed;
                self.fetch_counts[loc_index(loc)] += 1;
                used_pfs |= matches!(loc, nopfs_perfmodel::Location::Pfs);
                self.policy.on_consumed(w, k, consumed);
            }
            if used_pfs {
                pfs_workers += 1;
            }
        }
        self.gamma_self = pfs_workers * self.threads_per_worker;
        self.iter += 1;
        if self.iter >= self.iterations {
            self.load_epoch(self.epoch + 1);
        }
        self.gamma_self
    }

    fn into_result(self) -> SimResult {
        let prestage = self.policy.prestage_seconds();
        let n = self.tenant.scenario.system.workers;
        let mut breakdown = self.breakdown;
        if prestage > 0.0 {
            breakdown.pfs += prestage * n as f64;
        }
        let per_worker_time: Vec<f64> = self.accs.iter().map(|a| a.finish() + prestage).collect();
        let per_worker_stall: Vec<f64> = self.accs.iter().map(Acc::total_stall).collect();
        let execution_time = per_worker_time.iter().copied().fold(0.0, f64::max);
        SimResult {
            policy: self.tenant.policy,
            execution_time,
            per_worker_time,
            prestage_time: prestage,
            per_worker_stall,
            breakdown,
            fetch_counts: self.fetch_counts,
            coverage: self.policy.coverage(),
            note: self.policy.note(),
            resilience: self.cloud.as_ref().map(CloudModel::stats),
        }
    }
}

/// Simulates `tenants` co-scheduled on one shared PFS.
///
/// Returns one [`SimResult`] per tenant, in input order; each result's
/// `execution_time` excludes the tenant's start offset (it is the
/// job's own wall time, directly comparable to a solo
/// [`crate::engine::run`] of the same scenario — the ratio of the two
/// is the *interference slowdown*).
///
/// # Errors
/// Returns the first policy's [`SimError`] if any tenant's policy
/// cannot run its scenario.
pub fn run_cluster(tenants: &[SimTenant]) -> Result<Vec<SimResult>, SimError> {
    assert!(!tenants.is_empty(), "a cluster needs at least one tenant");
    let mut jobs: Vec<JobState> = tenants
        .iter()
        .map(JobState::new)
        .collect::<Result<_, _>>()?;

    loop {
        // Pick the unfinished job with the earliest time front.
        let next = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| !j.finished)
            .min_by(|(_, a), (_, b)| {
                a.front()
                    .partial_cmp(&b.front())
                    .expect("time fronts are finite")
            })
            .map(|(i, _)| i);
        let Some(i) = next else { break };
        // γ: this job's previous-iteration clients plus every other
        // started-and-unfinished job's.
        let gamma = jobs
            .iter()
            .enumerate()
            .map(|(j, job)| {
                if j == i || (job.started && !job.finished) {
                    job.gamma_self
                } else {
                    0
                }
            })
            .sum::<usize>()
            .max(1);
        jobs[i].advance(gamma);
    }

    Ok(jobs.into_iter().map(JobState::into_result).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run as run_solo;
    use nopfs_perfmodel::presets::{fig8_small_cluster, saturating_pfs_curve};
    use nopfs_util::units::MB;

    /// A scenario in which the PFS saturates well below the demand of
    /// several co-scheduled jobs.
    fn tenant_scenario(name: &str, seed: u64) -> Scenario {
        let mut sys = fig8_small_cluster();
        sys.workers = 2;
        sys.pfs_read = saturating_pfs_curve(120.0 * MB, 3.0);
        sys.classes[0].capacity = 40 * 1_000_000;
        sys.classes[1].capacity = 120 * 1_000_000;
        sys.staging.capacity = 8 * 1_000_000;
        Scenario::new(name, sys, vec![100_000u64; 800], 3, 8, seed)
    }

    #[test]
    fn single_tenant_matches_solo_engine() {
        let s = tenant_scenario("solo", 7);
        for policy in [PolicyId::Naive, PolicyId::NoPfs, PolicyId::StagingBuffer] {
            let solo = run_solo(&s, policy).unwrap();
            let multi = run_cluster(&[SimTenant::new(s.clone(), policy)]).unwrap();
            let a = solo.execution_time;
            let b = multi[0].execution_time;
            assert!(
                (a - b).abs() < 1e-9 * a.max(1.0),
                "{policy}: solo {a} vs cluster-of-one {b}"
            );
        }
    }

    #[test]
    fn co_scheduled_naive_jobs_interfere() {
        let s = tenant_scenario("naive", 11);
        let solo = run_solo(&s, PolicyId::Naive).unwrap().execution_time;
        let tenants: Vec<SimTenant> = (0..3)
            .map(|i| SimTenant::new(tenant_scenario("naive", 11 + i), PolicyId::Naive))
            .collect();
        let results = run_cluster(&tenants).unwrap();
        for r in &results {
            let slowdown = r.execution_time / solo;
            assert!(
                slowdown > 1.3,
                "3 naive tenants on a saturated PFS must interfere: {slowdown}x"
            );
        }
    }

    #[test]
    fn nopfs_is_shielded_relative_to_naive() {
        let naive_solo = run_solo(&tenant_scenario("t", 21), PolicyId::Naive)
            .unwrap()
            .execution_time;
        let nopfs_solo = run_solo(&tenant_scenario("t", 21), PolicyId::NoPfs)
            .unwrap()
            .execution_time;
        let tenants: Vec<SimTenant> = (0..3)
            .map(|i| {
                let policy = if i == 0 {
                    PolicyId::NoPfs
                } else {
                    PolicyId::Naive
                };
                SimTenant::new(tenant_scenario("t", 21 + i), policy)
            })
            .collect();
        let results = run_cluster(&tenants).unwrap();
        let nopfs_slowdown = results[0].execution_time / nopfs_solo;
        let naive_slowdown = results[1].execution_time / naive_solo;
        assert!(
            nopfs_slowdown < naive_slowdown,
            "NoPFS ({nopfs_slowdown}x) must degrade less than naive ({naive_slowdown}x)"
        );
    }

    #[test]
    fn stagger_defers_contention() {
        // A tenant starting after the others have finished must see
        // (almost) no interference.
        let s = tenant_scenario("lone", 31);
        let solo = run_solo(&s, PolicyId::Naive).unwrap().execution_time;
        let far_future = solo * 100.0;
        let tenants = vec![
            SimTenant::new(tenant_scenario("lone", 31), PolicyId::Naive),
            SimTenant::new(tenant_scenario("late", 32), PolicyId::Naive).starting_at(far_future),
        ];
        let results = run_cluster(&tenants).unwrap();
        let late_slowdown = results[1].execution_time / solo;
        assert!(
            late_slowdown < 1.05,
            "a fully staggered tenant must run near solo speed: {late_slowdown}x"
        );
    }

    #[test]
    fn sweeps_past_thread_scale() {
        // 16 simulated tenants — far more than the thread runtime could
        // co-schedule — and interference grows monotonically enough to
        // rank K=16 above K=2.
        let solo = run_solo(&tenant_scenario("k", 41), PolicyId::Naive)
            .unwrap()
            .execution_time;
        let mut slowdowns = Vec::new();
        for k in [2usize, 16] {
            let tenants: Vec<SimTenant> = (0..k)
                .map(|i| SimTenant::new(tenant_scenario("k", 41 + i as u64), PolicyId::Naive))
                .collect();
            let results = run_cluster(&tenants).unwrap();
            let worst = results
                .iter()
                .map(|r| r.execution_time / solo)
                .fold(0.0, f64::max);
            slowdowns.push(worst);
        }
        assert!(
            slowdowns[1] > slowdowns[0],
            "K=16 ({}) must interfere more than K=2 ({})",
            slowdowns[1],
            slowdowns[0]
        );
    }
}
