//! Environment (design-space) evaluation — paper Sec. 6.2 / Fig. 9.
//!
//! Beyond comparing policies, the simulator quantifies how *hardware
//! changes* affect training time: sweep staging-buffer, RAM, and SSD
//! capacities and simulate NoPFS on each configuration. The paper uses
//! this to show that (a) below some size the staging buffer is not the
//! limiting factor, (b) RAM and SSD trade off against each other, and
//! (c) an I/O framework must adapt to whatever hierarchy it finds —
//! conclusions [`sweep`] reproduces on any scenario.

use crate::engine::run;
use crate::result::SimError;
use crate::scenario::Scenario;
use nopfs_policy::PolicyId;

/// One simulated hardware configuration and its predicted runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvPoint {
    /// Staging-buffer capacity, bytes.
    pub staging: u64,
    /// RAM class capacity, bytes.
    pub ram: u64,
    /// SSD class capacity, bytes (0 = no SSD class).
    pub ssd: u64,
    /// Predicted execution time, seconds.
    pub execution_time: f64,
}

/// Builds a copy of `base` with the given storage configuration.
///
/// The base scenario's system must have a RAM class at index 0; an SSD
/// class is kept, resized, or dropped depending on `ssd`.
fn with_storage(base: &Scenario, staging: u64, ram: u64, ssd: u64) -> Scenario {
    let mut s = base.clone();
    s.system.staging.capacity = staging;
    assert!(
        !s.system.classes.is_empty(),
        "environment sweep requires at least a RAM class"
    );
    s.system.classes[0].capacity = ram;
    if ssd == 0 {
        s.system.classes.truncate(1);
    } else if s.system.classes.len() >= 2 {
        s.system.classes[1].capacity = ssd;
        s.system.classes.truncate(2);
    } else {
        // Clone the RAM class shape as a stand-in SSD if the base system
        // had none; callers normally sweep systems that do have one.
        let mut ssd_class = s.system.classes[0].clone();
        ssd_class.name = "ssd".to_string();
        ssd_class.capacity = ssd;
        s.system.classes.push(ssd_class);
    }
    s
}

/// Simulates `policy` over the cross product of staging, RAM, and SSD
/// capacities. Points are returned in sweep order (staging-major, then
/// RAM, then SSD).
pub fn sweep(
    base: &Scenario,
    policy: PolicyId,
    staging_sizes: &[u64],
    ram_sizes: &[u64],
    ssd_sizes: &[u64],
) -> Result<Vec<EnvPoint>, SimError> {
    let mut out = Vec::with_capacity(staging_sizes.len() * ram_sizes.len() * ssd_sizes.len());
    for &staging in staging_sizes {
        for &ram in ram_sizes {
            for &ssd in ssd_sizes {
                let scenario = with_storage(base, staging, ram, ssd);
                let result = run(&scenario, policy)?;
                out.push(EnvPoint {
                    staging,
                    ram,
                    ssd,
                    execution_time: result.execution_time,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::{fig8_small_cluster, saturating_pfs_curve};
    use nopfs_util::units::MB;

    fn base() -> Scenario {
        let mut sys = fig8_small_cluster();
        // Saturation well below cluster demand, so steady-state epochs
        // stall whenever the caches are too small — the regime where
        // Fig. 9's capacity tradeoffs are visible.
        sys.pfs_read = saturating_pfs_curve(100.0 * MB, 8.0);
        Scenario::new(
            "env",
            sys,
            vec![100_000u64; 1_500], // 150 MB
            3,
            8,
            5,
        )
    }

    #[test]
    fn sweep_covers_cross_product() {
        let pts = sweep(
            &base(),
            PolicyId::NoPfs,
            &[4_000_000],
            &[10_000_000, 40_000_000],
            &[0, 50_000_000],
        )
        .unwrap();
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().all(|p| p.execution_time > 0.0));
    }

    #[test]
    fn more_ram_helps_when_fills_complete() {
        // Fig. 9's monotonicity holds in the regime the paper sweeps:
        // cache fills complete early relative to the run, so a larger
        // class strictly increases hit rates. (In very short runs a
        // larger class can transiently *hurt*, because the first-access
        // fill order dilutes hot samples with cold ones — see the
        // ablation bench.)
        let mut b = base();
        b.epochs = 8;
        let pts = sweep(
            &b,
            PolicyId::NoPfs,
            &[4_000_000],
            &[5_000_000, 10_000_000, 20_000_000, 40_000_000],
            &[0],
        )
        .unwrap();
        for w in pts.windows(2) {
            assert!(
                w[1].execution_time <= w[0].execution_time * 1.02,
                "RAM {} -> {} worsened time {} -> {}",
                w[0].ram,
                w[1].ram,
                w[0].execution_time,
                w[1].execution_time
            );
        }
        assert!(
            pts.last().unwrap().execution_time < pts[0].execution_time,
            "growing RAM 8x should strictly help"
        );
    }

    #[test]
    fn ssd_compensates_for_small_ram() {
        // Fig. 9's tradeoff: a small-RAM + large-SSD config beats a
        // small-RAM + no-SSD config.
        let pts = sweep(
            &base(),
            PolicyId::NoPfs,
            &[4_000_000],
            &[10_000_000],
            &[0, 150_000_000],
        )
        .unwrap();
        assert!(
            pts[1].execution_time < pts[0].execution_time,
            "adding an SSD should help: {} vs {}",
            pts[1].execution_time,
            pts[0].execution_time
        );
    }

    #[test]
    fn ssd_dropped_when_zero() {
        let s = with_storage(&base(), 1_000_000, 2_000_000, 0);
        assert_eq!(s.system.classes.len(), 1);
        let s2 = with_storage(&base(), 1_000_000, 2_000_000, 7_000_000);
        assert_eq!(s2.system.classes.len(), 2);
        assert_eq!(s2.system.classes[1].capacity, 7_000_000);
    }
}
