//! The analytic cloud-origin cost model.
//!
//! When a [`crate::scenario::Scenario`] carries a [`CloudSpec`], the
//! engine replaces every PFS read cost with `CloudModel::read_cost`:
//! an object-store request priced by a per-request latency floor, a
//! parallelism-dependent throughput curve, and the same seeded
//! disturbance clauses ([`nopfs_policy::CloudFaults`]) the threaded
//! runtime injects via `nopfs_storage::objectstore` — spikes,
//! bounded throttle bursts, brownout windows. On the client side the
//! model replays the resilience stack in closed form, entirely in model
//! time: capped full-jitter retry backoff, per-attempt deadlines, a
//! hedged second request after a fixed delay, and the *same*
//! [`CircuitBreaker`] state machine the runtime uses (it is clocked by
//! an explicit `now`, so the discrete-event loop drives it directly).
//!
//! Disturbances change *when* a read completes, never *which* bytes the
//! policy consumes — the simulator's access streams are untouched, the
//! analogue of the runtime's bit-identical global stream guarantee.

use nopfs_obs::{names, ObsCtx, Tracer};
use nopfs_perfmodel::ThroughputCurve;
use nopfs_policy::CloudFaults;
use nopfs_storage::{BreakerConfig, CircuitBreaker, ResilienceStats, SourceHealth};
use nopfs_util::rng::mix64;

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Client-side resilience knobs of the simulated origin, all in model
/// seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudResilience {
    /// Attempts per read (≥ 1) before the model gives up capping and
    /// pays one full un-deadlined read.
    pub attempts: u32,
    /// First retry backoff ceiling.
    pub base_backoff: f64,
    /// Backoff ceiling cap.
    pub max_backoff: f64,
    /// Full-jitter fraction in `[0, 1]` (1 = canonical full jitter).
    pub jitter: f64,
    /// Per-attempt deadline; an attempt exceeding it is abandoned at
    /// the deadline and retried.
    pub deadline: Option<f64>,
    /// Consecutive deadline-capped retries per read before the client
    /// degrades to one patient, un-deadlined attempt. Bounds the waste
    /// under a sustained brownout where *no* attempt can meet the
    /// deadline (retrying forever would only delay the inevitable
    /// slow read).
    pub deadline_retries: u32,
    /// Hedging delay: when an attempt would outlive it, a second
    /// request fires and the attempt completes at the earlier of the
    /// two.
    pub hedge_delay: Option<f64>,
    /// Circuit breaker over consecutive failures.
    pub breaker: Option<BreakerConfig>,
    /// Seed of the backoff jitter.
    pub seed: u64,
}

impl CloudResilience {
    /// The unbounded naive client: retries forever-ish with backoff,
    /// no deadline, no hedge, no breaker — every disturbed request is
    /// waited out in full.
    pub fn naive(base_backoff: f64) -> Self {
        Self {
            attempts: 64,
            base_backoff,
            max_backoff: base_backoff * 1024.0,
            jitter: 1.0,
            deadline: None,
            deadline_retries: 0,
            hedge_delay: None,
            breaker: None,
            seed: 0x0AF5_0A11,
        }
    }

    /// The hardened client, scaled off the store's latency floor
    /// (mirroring the runtime's `default_cloud_origin` knobs):
    /// deadline at 16 floors (comfortably above the worst recoverable
    /// hedged read under a moderate brownout, so only genuine tail
    /// events trip it), hedge after 3, breaker opening after 4
    /// consecutive failures with an 8-floor cooldown.
    pub fn hardened(latency_floor: f64) -> Self {
        Self {
            attempts: 12,
            base_backoff: latency_floor / 4.0,
            max_backoff: latency_floor * 64.0,
            jitter: 1.0,
            deadline: Some(16.0 * latency_floor),
            deadline_retries: 2,
            hedge_delay: Some(3.0 * latency_floor),
            breaker: Some(BreakerConfig::new(4, 4.0 * latency_floor, 2)),
            seed: 0x0AF5_0A11,
        }
    }
}

/// A scenario's cloud origin: store economics, disturbance clauses,
/// and the client resilience stack.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudSpec {
    /// Per-request latency floor, model seconds.
    pub latency_floor: f64,
    /// Aggregate throughput vs. concurrent requests, model bytes/s.
    pub curve: ThroughputCurve,
    /// Seeded disturbances (shared policy-layer clauses).
    pub faults: CloudFaults,
    /// The client stack.
    pub resilience: CloudResilience,
}

impl CloudSpec {
    /// A new spec.
    ///
    /// # Panics
    /// Panics on a negative latency floor or invalid fault clauses.
    pub fn new(
        latency_floor: f64,
        curve: ThroughputCurve,
        faults: CloudFaults,
        resilience: CloudResilience,
    ) -> Self {
        assert!(
            latency_floor.is_finite() && latency_floor >= 0.0,
            "latency floor must be non-negative"
        );
        faults.validate().expect("valid cloud fault clauses");
        Self {
            latency_floor,
            curve,
            faults,
            resilience,
        }
    }
}

/// Mutable model state for one simulation run.
pub(crate) struct CloudModel {
    spec: CloudSpec,
    breaker: Option<CircuitBreaker>,
    tracer: Tracer,
    /// Per-read draw counter (the deterministic "randomness" stream).
    draws: u64,
    stats: ResilienceStats,
}

impl CloudModel {
    pub(crate) fn new(spec: CloudSpec) -> Self {
        Self::with_obs(spec, &ObsCtx::new())
    }

    /// Like [`Self::new`], but the breaker registers its transition
    /// counters in `obs` and both the breaker and the hedge logic emit
    /// model-clock trace events through its tracer.
    pub(crate) fn with_obs(spec: CloudSpec, obs: &ObsCtx) -> Self {
        let breaker = spec.resilience.breaker.map(|cfg| {
            CircuitBreaker::new_in_registry(cfg, &obs.registry).with_tracer(obs.tracer.clone())
        });
        Self {
            spec,
            breaker,
            tracer: obs.tracer.clone(),
            draws: 0,
            stats: ResilienceStats::default(),
        }
    }

    /// Whether the origin accepts traffic at model time `now` — false
    /// while the breaker is open and cooling, the signal the engine
    /// feeds into the degraded source selection.
    pub(crate) fn available(&self, now: f64) -> bool {
        self.breaker
            .as_ref()
            .is_none_or(|b| b.health(now) != SourceHealth::Unavailable)
    }

    fn draw(&mut self, salt: u64) -> f64 {
        let h = mix64(self.spec.faults.seed ^ salt, self.draws);
        self.draws += 1;
        unit(h)
    }

    fn backoff(&mut self, retry: u32) -> f64 {
        let r = &self.spec.resilience;
        let ceiling = (r.base_backoff * 2f64.powi(retry.min(1024) as i32)).min(r.max_backoff);
        let u = unit(mix64(r.seed, self.draws));
        self.draws += 1;
        ceiling * ((1.0 - r.jitter) + r.jitter * u)
    }

    /// One disturbed service draw at model time `t`: the latency a
    /// single request issued now would take, ignoring throttling.
    fn service_time(&mut self, t: f64, size: u64, gamma: usize) -> f64 {
        let (bfactor, _) = self.spec.faults.brownout_at(t);
        let mut latency = self.spec.latency_floor * bfactor;
        if self.draw(0x5917_CE00) < self.spec.faults.spike_rate {
            latency *= self.spec.faults.spike_factor;
        }
        let g = gamma.max(1) as f64;
        let per_client = (self.spec.curve.at(g) / g).max(1.0);
        latency + size as f64 * bfactor / per_client
    }

    /// Cost in model seconds of completing one origin read of `size`
    /// bytes starting at model time `now` with `gamma` concurrent
    /// clients. Always terminates with the bytes delivered: after the
    /// attempt budget the final read is paid in full, un-deadlined (the
    /// throttle-burst bound guarantees a clean draw by then).
    pub(crate) fn read_cost(&mut self, now: f64, size: u64, gamma: usize) -> f64 {
        self.stats.reads += 1;
        let res = self.spec.resilience.clone();
        let mut t = now;
        let mut consecutive_throttles = 0u32;
        let mut deadline_retries = 0u32;
        for attempt in 0..res.attempts {
            // Breaker gate: the engine steers eligible fetches away
            // from an unavailable origin; a read that still arrives
            // here has nowhere else to go and waits for the next probe.
            if let Some(b) = &self.breaker {
                if !b.allow(t) {
                    if let Some(reopen) = b.reopen_at() {
                        t = t.max(reopen);
                    }
                    // At the reopen time the breaker admits a probe.
                    if !b.allow(t) {
                        // Half-open probe slots exhausted (cannot occur
                        // in the sequential engine, but stay safe).
                        t += res.base_backoff.max(self.spec.latency_floor);
                        continue;
                    }
                }
            }
            // Throttle draw: bounded burst per request, so a clean
            // service draw is guaranteed by attempt `throttle_burst`.
            let (_, extra) = self.spec.faults.brownout_at(t);
            let p_throttle = (self.spec.faults.throttle_rate + extra).min(0.999);
            if consecutive_throttles < self.spec.faults.throttle_burst
                && self.draw(0x7407_71E5) < p_throttle
            {
                consecutive_throttles += 1;
                self.stats.throttled += 1;
                self.stats.retries += 1;
                if let Some(b) = &self.breaker {
                    b.on_failure(t);
                }
                t += self.spec.faults.retry_after.max(self.backoff(attempt));
                continue;
            }
            let mut latency = self.service_time(t, size, gamma);
            // Hedge: a duplicate request after the fixed delay; the
            // attempt completes at the earlier of the two.
            if let Some(hd) = res.hedge_delay {
                if latency > hd {
                    self.stats.hedges_fired += 1;
                    self.tracer
                        .instant_at(names::EV_HEDGE_FIRED, "cloud", t + hd, vec![]);
                    let hedged = hd + self.service_time(t + hd, size, gamma);
                    if hedged < latency {
                        self.stats.hedges_won += 1;
                        latency = hedged;
                    }
                }
            }
            // Deadline: abandon the attempt at the deadline and retry —
            // but only `deadline_retries` times per read. Under a
            // sustained brownout no attempt can meet the deadline;
            // after the cap the client degrades to one patient read
            // (paying the slow read once beats paying the deadline
            // `attempts` times *and then* the slow read).
            if let Some(dl) = res.deadline {
                if latency > dl && deadline_retries < res.deadline_retries {
                    deadline_retries += 1;
                    self.stats.deadline_misses += 1;
                    self.stats.retries += 1;
                    if let Some(b) = &self.breaker {
                        b.on_failure(t + dl);
                    }
                    t += dl + self.backoff(attempt);
                    continue;
                }
            }
            if let Some(b) = &self.breaker {
                b.on_success(t + latency);
            }
            return t + latency - now;
        }
        // Attempt budget exhausted on throttles/deadlines: one final
        // un-deadlined read completes the request.
        self.stats.exhausted += 1;
        let latency = self.service_time(t, size, gamma);
        if let Some(b) = &self.breaker {
            b.on_success(t + latency);
        }
        t + latency - now
    }

    /// Accumulated resilience counters, breaker transitions folded in.
    pub(crate) fn stats(&self) -> ResilienceStats {
        let mut s = self.stats;
        if let Some(b) = &self.breaker {
            let (to_open, to_half_open, to_closed, rejections) = b.transitions();
            s.breaker_to_open = to_open;
            s.breaker_to_half_open = to_half_open;
            s.breaker_to_closed = to_closed;
            s.breaker_open_rejections = rejections;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_policy::CloudFaults;

    fn flat_spec(faults: CloudFaults, resilience: CloudResilience) -> CloudSpec {
        CloudSpec::new(
            0.01,
            ThroughputCurve::flat(100_000_000.0),
            faults,
            resilience,
        )
    }

    #[test]
    fn quiet_store_costs_latency_plus_transfer() {
        let mut m = CloudModel::new(flat_spec(
            CloudFaults::none(1),
            CloudResilience::naive(0.001),
        ));
        // 1 MB at 100 MB/s (γ=1) + 10 ms floor = 20 ms.
        let c = m.read_cost(0.0, 1_000_000, 1);
        assert!((c - 0.02).abs() < 1e-9, "cost {c}");
        // Contention shares the curve: γ=4 on a flat curve quarters the
        // per-client rate.
        let c4 = m.read_cost(0.0, 1_000_000, 4);
        assert!((c4 - 0.05).abs() < 1e-9, "cost {c4}");
        assert_eq!(m.stats().reads, 2);
    }

    #[test]
    fn brownout_inflates_inside_the_window_only() {
        let faults = CloudFaults::none(2).brownout(10.0, 5.0, 4.0, 0.0);
        let mut m = CloudModel::new(flat_spec(faults, CloudResilience::naive(0.001)));
        let quiet = m.read_cost(0.0, 1_000_000, 1);
        let browned = m.read_cost(12.0, 1_000_000, 1);
        let after = m.read_cost(20.0, 1_000_000, 1);
        assert!((browned - 4.0 * quiet).abs() < 1e-9, "{browned} vs {quiet}");
        assert!((after - quiet).abs() < 1e-9);
    }

    #[test]
    fn throttle_bursts_are_bounded_and_breaker_opens_under_storm() {
        // A brownout throttle storm deeper than the breaker threshold
        // (burst 6 > threshold 4): reads inside the window trip the
        // breaker; the calm after the window re-closes it.
        let faults = CloudFaults {
            throttle_burst: 6,
            retry_after: 0.005,
            ..CloudFaults::none(3)
        }
        .brownout(0.0, 2.0, 1.0, 0.95);
        let mut m = CloudModel::new(flat_spec(faults, CloudResilience::hardened(0.01)));
        let mut t = 0.0;
        for _ in 0..50 {
            let c = m.read_cost(t, 1_000, 1);
            assert!(c.is_finite() && c > 0.0);
            t += c;
        }
        assert!(t > 2.0, "the sweep must outlive the storm window");
        let s = m.stats();
        assert_eq!(s.reads, 50);
        assert!(s.throttled > 0);
        assert!(s.exhausted == 0, "bounded bursts never exhaust 12 attempts");
        assert!(s.breaker_to_open > 0, "a 95% throttle storm must trip");
        assert!(s.breaker_to_closed > 0, "the calm after must re-close");
    }

    #[test]
    fn hedging_caps_tail_spikes() {
        let faults = CloudFaults {
            spike_rate: 0.3,
            spike_factor: 50.0,
            ..CloudFaults::none(4)
        };
        let mut naive = CloudModel::new(flat_spec(faults.clone(), CloudResilience::naive(0.001)));
        let mut hedged = CloudModel::new(flat_spec(faults, CloudResilience::hardened(0.01)));
        let (mut tn, mut th) = (0.0, 0.0);
        for _ in 0..200 {
            tn += naive.read_cost(tn, 10_000, 1);
            th += hedged.read_cost(th, 10_000, 1);
        }
        assert!(
            th < 0.5 * tn,
            "hedged {th} should far undercut naive {tn} under 50x spikes"
        );
        assert!(hedged.stats().hedges_fired > 0);
        assert!(hedged.stats().hedges_won > 0);
        assert_eq!(naive.stats().hedges_fired, 0);
    }

    #[test]
    fn open_breaker_reports_unavailable_until_cooldown() {
        let faults = CloudFaults {
            throttle_rate: 0.999_999,
            throttle_burst: 100,
            retry_after: 0.001,
            ..CloudFaults::none(5)
        };
        // Enough attempts to cross the 4-failure threshold, few enough
        // that the read gives up while the breaker is still open.
        let mut res = CloudResilience::hardened(0.01);
        res.attempts = 6;
        let mut m = CloudModel::new(flat_spec(faults, res));
        assert!(m.available(0.0));
        let c = m.read_cost(0.0, 1_000, 1);
        assert!(c.is_finite());
        assert!(m.stats().breaker_to_open > 0);
        // Just after the failures: open and cooling.
        let opened = m.breaker.as_ref().unwrap().reopen_at();
        if let Some(reopen) = opened {
            assert!(!m.available(reopen - 0.01));
            assert!(m.available(reopen + 0.01));
        }
    }

    #[test]
    fn identical_seeds_give_identical_cost_sequences() {
        let faults = CloudFaults {
            spike_rate: 0.2,
            spike_factor: 10.0,
            throttle_rate: 0.2,
            throttle_burst: 2,
            retry_after: 0.002,
            ..CloudFaults::none(6)
        };
        let run = |spec: CloudSpec| {
            let mut m = CloudModel::new(spec);
            let mut t = 0.0;
            let mut costs = Vec::new();
            for _ in 0..100 {
                let c = m.read_cost(t, 5_000, 2);
                costs.push(c);
                t += c;
            }
            costs
        };
        let a = run(flat_spec(faults.clone(), CloudResilience::hardened(0.01)));
        let b = run(flat_spec(faults, CloudResilience::hardened(0.01)));
        assert_eq!(a, b);
    }
}
