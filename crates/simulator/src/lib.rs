//! The NoPFS I/O performance simulator (paper Sec. 6).
//!
//! The simulator predicts the end-to-end execution time of a training
//! run under different data-loading policies, on an arbitrary dataset
//! and storage hierarchy described by the `nopfs-perfmodel` crate. As in
//! the paper, it does "not aim for a precise simulation of training, but
//! rather to capture the relative performance of different I/O
//! strategies": compute is modelled by the throughput `c`, I/O is
//! overlapped to the greatest extent each policy allows, and PFS
//! contention follows the measured `t(γ)` curve with `γ` tracked
//! iteration by iteration.
//!
//! Ten policies are implemented (Sec. 6's list):
//! [`PolicyId::Perfect`] (no-stall lower bound), [`PolicyId::Naive`],
//! [`PolicyId::StagingBuffer`] (PyTorch double-buffering / `tf.data`),
//! [`PolicyId::DeepIoOrdered`] and [`PolicyId::DeepIoOpportunistic`],
//! [`PolicyId::ParallelStaging`] (data sharding),
//! [`PolicyId::LbannDynamic`] and [`PolicyId::LbannPreloading`],
//! [`PolicyId::LocalityAware`] (Yang & Cong), and [`PolicyId::NoPfs`].
//!
//! Beyond the policy comparison (Fig. 8), the simulator powers the
//! environment/design-space evaluation of Fig. 9 via [`environment`],
//! and the multi-tenant interference study (Fig. 2's shared-PFS
//! contention across co-scheduled jobs) via [`cluster`]. Scenarios can
//! route the origin through an analytic object-store model with seeded
//! disturbances and a full client resilience stack via [`cloud`].

pub mod churn;
pub mod cloud;
pub mod cluster;
pub mod engine;
pub mod environment;
pub mod policies;
pub mod result;
pub mod scenario;

pub use churn::{churn_sweep, run_elastic, run_elastic_with_obs, ChurnRow, ElasticSimResult};
pub use cloud::{CloudResilience, CloudSpec};
pub use cluster::{run_cluster, SimTenant};
pub use engine::{run, run_with_obs};
pub use nopfs_policy::{Capabilities, PolicyId};
pub use result::{Breakdown, SimError, SimResult};
pub use scenario::{Scenario, StorageRegime};
