//! Simulation outputs: execution time, stall time, and the per-location
//! time breakdown behind Fig. 8's stacked bars.

use nopfs_perfmodel::Location;
use nopfs_policy::PolicyId;
use nopfs_storage::ResilienceStats;

/// How execution time divides among data sources.
///
/// Each consumed access occupies the interval between the previous and
/// current consumption; the stalled part of that interval is attributed
/// to the location the sample was fetched from, and the non-stalled part
/// to the staging buffer (the trainer was busy computing while the
/// buffer served it). This reproduces the semantics of Fig. 8's stacked
/// bars: an all-`staging` bar means I/O never held training back.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Time covered by staging-buffer consumption (no stall).
    pub staging: f64,
    /// Stall time attributable to local storage-class fetches.
    pub local: f64,
    /// Stall time attributable to remote workers' caches.
    pub remote: f64,
    /// Stall time attributable to the PFS (includes prestaging phases).
    pub pfs: f64,
}

impl Breakdown {
    /// Adds `stall` seconds to the bucket for `loc` and the remaining
    /// `busy` seconds to the staging bucket.
    pub fn attribute(&mut self, loc: Location, stall: f64, busy: f64) {
        debug_assert!(stall >= 0.0 && busy >= 0.0);
        self.staging += busy;
        match loc {
            Location::Staging => self.staging += stall,
            Location::Local(_) => self.local += stall,
            Location::Remote(_) => self.remote += stall,
            Location::Pfs => self.pfs += stall,
        }
    }

    /// Total attributed time.
    pub fn total(&self) -> f64 {
        self.staging + self.local + self.remote + self.pfs
    }

    /// `(staging, local, remote, pfs)` as fractions of the total
    /// (all zeros for an empty breakdown).
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.staging / t,
            self.local / t,
            self.remote / t,
            self.pfs / t,
        )
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &Breakdown) {
        self.staging += other.staging;
        self.local += other.local;
        self.remote += other.remote;
        self.pfs += other.pfs;
    }
}

/// The outcome of simulating one policy on one scenario.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Which policy ran.
    pub policy: PolicyId,
    /// End-to-end execution time (slowest worker, including prestaging).
    pub execution_time: f64,
    /// Per-worker completion times (including prestaging).
    pub per_worker_time: Vec<f64>,
    /// Duration of the non-overlapped prestaging phase (0 for policies
    /// that start training immediately).
    pub prestage_time: f64,
    /// Per-worker trainer stall time (excludes prestaging).
    pub per_worker_stall: Vec<f64>,
    /// Cluster-wide attribution of time to data sources.
    pub breakdown: Breakdown,
    /// Per-location fetch counts (staging, local, remote, pfs) across
    /// all workers — the Fig. 12 "where did prefetches come from" stats.
    pub fetch_counts: [u64; 4],
    /// Fraction of the dataset each worker can ever access (1.0 for
    /// fully-randomized policies; < 1 for sharding-style policies that
    /// restrict workers to subsets, the paper's "does not access entire
    /// dataset").
    pub coverage: f64,
    /// Explanatory note for coverage/randomization caveats.
    pub note: Option<String>,
    /// Resilience counters of the cloud origin model (retries, hedges,
    /// breaker transitions); `None` unless the scenario routed the
    /// origin through [`crate::cloud`].
    pub resilience: Option<ResilienceStats>,
}

impl SimResult {
    /// Mean per-worker stall time.
    pub fn mean_stall(&self) -> f64 {
        if self.per_worker_stall.is_empty() {
            return 0.0;
        }
        self.per_worker_stall.iter().sum::<f64>() / self.per_worker_stall.len() as f64
    }

    /// Total stall across workers.
    pub fn total_stall(&self) -> f64 {
        self.per_worker_stall.iter().sum()
    }
}

/// Why a simulation could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The policy cannot support the scenario (e.g. the LBANN data store
    /// requires the dataset to fit in aggregate worker memory).
    Unsupported(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Unsupported(why) => write!(f, "policy unsupported: {why}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_routes_stall_by_location() {
        let mut b = Breakdown::default();
        b.attribute(Location::Pfs, 2.0, 1.0);
        b.attribute(Location::Local(0), 0.5, 1.0);
        b.attribute(Location::Remote(1), 0.25, 0.0);
        b.attribute(Location::Staging, 0.25, 0.5);
        assert!((b.pfs - 2.0).abs() < 1e-12);
        assert!((b.local - 0.5).abs() < 1e-12);
        assert!((b.remote - 0.25).abs() < 1e-12);
        assert!((b.staging - (1.0 + 1.0 + 0.5 + 0.25)).abs() < 1e-12);
        assert!((b.total() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut b = Breakdown::default();
        b.attribute(Location::Pfs, 3.0, 1.0);
        let (s, l, r, p) = b.fractions();
        assert!((s + l + r + p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        assert_eq!(Breakdown::default().fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = Breakdown {
            staging: 1.0,
            local: 2.0,
            remote: 3.0,
            pfs: 4.0,
        };
        a.merge(&Breakdown {
            staging: 0.5,
            local: 0.5,
            remote: 0.5,
            pfs: 0.5,
        });
        assert_eq!(a.total(), 12.0);
    }
}
