//! Policy identifiers — now thin re-exports of the workspace policy
//! registry (`nopfs_policy`).
//!
//! The enum and the Table 1 capability matrix used to live here; they
//! moved to [`nopfs_policy::PolicyId`] so the simulator, the threaded
//! runtime, and the multi-tenant cluster all dispatch on one id. This
//! module remains as a compatibility shim for existing simulator
//! callers.

pub use nopfs_policy::{Capabilities, PolicyId};

/// Legacy name of [`PolicyId`]: the simulator predates the workspace
/// policy registry. Prefer `nopfs_policy::PolicyId` in new code.
pub type Policy = PolicyId;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_resolves_to_the_workspace_registry() {
        // The old simulator names keep compiling and agree with the
        // registry's data.
        let p: Policy = Policy::NoPfs;
        assert_eq!(p, nopfs_policy::PolicyId::NoPfs);
        assert_eq!(Policy::ALL.len(), 10);
        let c: Capabilities = Policy::Perfect.capabilities();
        assert!(c.hardware_independence);
    }
}
