//! Elastic simulation: runs a scenario under a [`FaultPlan`] —
//! membership churn between epochs, mid-epoch crash-and-restarts,
//! stragglers, all modelled rather than executed.
//!
//! The delivered streams come out of exactly the same policy objects
//! the steady-state engine uses ([`crate::policies`]), rebuilt per
//! membership with *global* epoch numbers — so epoch `e` of an elastic
//! run draws the same global permutation as epoch `e` of the
//! undisturbed run, merely dealt round-robin to however many ranks
//! exist. That makes [`run_elastic`]'s `global_stream` directly
//! comparable to both the fault-free simulation and the threaded
//! runtime's `ElasticJob` (the cross-harness agreement tests do both).
//!
//! Timing under churn is modelled in the simulator's usual spirit —
//! relative, not absolute: each epoch runs the lockstep loop at its
//! membership, stragglers divide a rank's compute throughput, and each
//! crash charges a recovery penalty (an uncontended PFS re-read of the
//! restarted rank's in-flight batch — the staged-but-unconsumed samples
//! the runtime throws away and replays).

use crate::engine::Acc;
use crate::policies::{self, PolicyImpl};
use crate::result::{SimError, SimResult};
use crate::scenario::Scenario;
use nopfs_clairvoyance::SampleId;
use nopfs_perfmodel::Location;
use nopfs_policy::{FaultPlan, PolicyId};
use std::collections::BTreeMap;

/// The outcome of one elastic (fault-disturbed) simulation.
#[derive(Debug, Clone)]
pub struct ElasticSimResult {
    /// Which policy ran.
    pub policy: PolicyId,
    /// Modelled end-to-end time: per-epoch wall times plus prestaging
    /// (charged once per policy build) plus recovery penalties.
    pub execution_time: f64,
    /// Modelled wall time of each epoch (slowest participating rank).
    pub per_epoch_time: Vec<f64>,
    /// Worker count of each epoch.
    pub memberships: Vec<usize>,
    /// Policy rebuilds beyond the initial one (one per membership the
    /// run had not seen before).
    pub replans: usize,
    /// Crash-and-restart events processed.
    pub recoveries: usize,
    /// Total modelled recovery penalty, seconds.
    pub recovery_time: f64,
    /// Per epoch: that epoch's membership and each rank's delivered
    /// sequence — the simulator's half of the agreement tests.
    pub epoch_streams: Vec<(usize, Vec<Vec<SampleId>>)>,
}

impl ElasticSimResult {
    /// The global delivered stream: each epoch's per-rank sequences
    /// re-interleaved round-robin (position `pos` belongs to rank
    /// `pos % n`). For identity-transform policies this must equal the
    /// undisturbed run's stream bit for bit.
    pub fn global_stream(&self) -> Vec<SampleId> {
        let mut out = Vec::new();
        for (n, streams) in &self.epoch_streams {
            let total: usize = streams.iter().map(Vec::len).sum();
            for pos in 0..total {
                out.push(streams[pos % n][pos / n]);
            }
        }
        out
    }
}

/// A policy instance pinned to one membership, plus how many epoch
/// transforms it has been fed (so re-entering a membership replays the
/// skipped epochs' transforms and stateful cores stay in sync with a
/// fresh-from-epoch-0 rebuild).
struct MemberState {
    policy: Box<dyn PolicyImpl>,
    next_epoch: u64,
}

/// Simulates `policy` on `scenario` under `plan`.
///
/// # Errors
/// [`SimError::Unsupported`] when the plan fails validation (e.g.
/// `drop_last` churn that changes the epoch length) or the policy
/// refuses some membership the plan produces.
pub fn run_elastic(
    scenario: &Scenario,
    policy: PolicyId,
    plan: &FaultPlan,
) -> Result<ElasticSimResult, SimError> {
    run_elastic_with_obs(scenario, policy, plan, &nopfs_obs::ObsCtx::new())
}

/// [`run_elastic`] with an observability context: epoch boundaries,
/// replans, and crash recoveries become model-clock trace instants.
///
/// # Errors
/// Same contract as [`run_elastic`].
pub fn run_elastic_with_obs(
    scenario: &Scenario,
    policy: PolicyId,
    plan: &FaultPlan,
    obs: &nopfs_obs::ObsCtx,
) -> Result<ElasticSimResult, SimError> {
    use nopfs_obs::names;
    let spec = scenario.shuffle_spec();
    plan.validate(&spec, scenario.epochs)
        .map_err(|u| SimError::Unsupported(u.0))?;
    let memberships = plan.memberships(scenario.system.workers, scenario.epochs);

    let mut states: BTreeMap<usize, MemberState> = BTreeMap::new();
    let mut replans = 0usize;
    let mut recoveries = 0usize;
    let mut recovery_time = 0.0f64;
    let mut execution_time = 0.0f64;
    let mut per_epoch_time = Vec::with_capacity(memberships.len());
    let mut epoch_streams = Vec::with_capacity(memberships.len());

    for (e, &n) in memberships.iter().enumerate() {
        let e = e as u64;
        let scenario_n = at_membership(scenario, n);
        let spec_n = scenario_n.shuffle_spec();
        if !states.contains_key(&n) {
            if !states.is_empty() {
                replans += 1;
                obs.tracer.instant_at(
                    names::EV_REPLAN,
                    "sim",
                    execution_time,
                    vec![("workers", (n as u64).into())],
                );
            }
            let p = policies::build(policy, &scenario_n)?;
            // Resharding pays its (possibly empty) prestage phase anew:
            // the newcomer-inclusive shard map has to be filled.
            execution_time += p.prestage_seconds();
            states.insert(
                n,
                MemberState {
                    policy: p,
                    next_epoch: 0,
                },
            );
        }
        let state = states.get_mut(&n).expect("inserted above");

        // Replay the transforms of epochs this instance skipped while
        // another membership was active, so its call sequence matches a
        // fresh core replayed from epoch 0 (global epoch numbers keep
        // the permutations right).
        while state.next_epoch < e {
            let k = state.next_epoch;
            let shuffle = spec_n.epoch_shuffle(k);
            let seqs: Vec<Vec<u64>> = (0..n).map(|w| shuffle.worker_sequence(w)).collect();
            state.policy.on_epoch_start(k);
            let _ = state.policy.transform_epoch(k, seqs, &shuffle);
            state.next_epoch = k + 1;
        }

        // This epoch's delivered sequences, through the same transform
        // path the steady-state engine uses.
        let shuffle = spec_n.epoch_shuffle(e);
        let seqs: Vec<Vec<u64>> = (0..n).map(|w| shuffle.worker_sequence(w)).collect();
        state.policy.on_epoch_start(e);
        let seqs = state.policy.transform_epoch(e, seqs, &shuffle);
        state.next_epoch = e + 1;

        // Lockstep timing of the epoch at this membership; stragglers
        // divide their rank's compute throughput.
        obs.tracer.instant_at(
            names::EV_EPOCH,
            "sim",
            execution_time,
            vec![("epoch", e.into())],
        );
        let epoch_time = simulate_epoch(&scenario_n, state.policy.as_mut(), plan, e, &seqs);
        per_epoch_time.push(epoch_time);
        execution_time += epoch_time;

        // Each crash re-synchronizes the job and the restarted rank
        // re-reads its in-flight batch from the PFS, uncontended (the
        // runtime's lost staged samples).
        let crashes = plan.crashes_in(e);
        if !crashes.is_empty() {
            let batch_bytes =
                (scenario.mean_sample_bytes() * scenario.batch_size as f64).ceil() as u64;
            let penalty = scenario.system.read_time(Location::Pfs, batch_bytes, 1);
            for &(step, rank) in &crashes {
                obs.tracer.instant_at(
                    names::EV_CRASH,
                    "sim",
                    execution_time,
                    vec![
                        ("epoch", e.into()),
                        ("step", step.into()),
                        ("rank", (rank as u64).into()),
                    ],
                );
            }
            recoveries += crashes.len();
            recovery_time += penalty * crashes.len() as f64;
        }

        epoch_streams.push((n, seqs));
    }

    execution_time += recovery_time;
    Ok(ElasticSimResult {
        policy,
        execution_time,
        per_epoch_time,
        memberships,
        replans,
        recoveries,
        recovery_time,
        epoch_streams,
    })
}

/// One epoch of the engine's lockstep loop at a fixed membership.
/// Returns the epoch's wall time (slowest rank).
fn simulate_epoch(
    scenario: &Scenario,
    p: &mut dyn PolicyImpl,
    plan: &FaultPlan,
    epoch: u64,
    seqs: &[Vec<SampleId>],
) -> f64 {
    let sys = &scenario.system;
    let n = sys.workers;
    let b = scenario.batch_size;
    let threads_per_worker = if p.overlapped() {
        sys.staging.threads as usize
    } else {
        1
    };
    let mut accs: Vec<Acc> = (0..n)
        .map(|w| {
            let compute = sys.compute / plan.straggle_factor(epoch, w);
            Acc::new(compute, sys.staging.threads, p.overlapped())
        })
        .collect();
    let mut gamma = (n * threads_per_worker).max(1);
    let iterations = seqs.iter().map(|s| s.len().div_ceil(b)).max().unwrap_or(0);
    for h in 0..iterations {
        let mut pfs_workers = 0usize;
        for (w, seq) in seqs.iter().enumerate() {
            let lo = h * b;
            if lo >= seq.len() {
                continue;
            }
            let hi = ((h + 1) * b).min(seq.len());
            let mut used_pfs = false;
            for &k in &seq[lo..hi] {
                let now = accs[w].last();
                let size = scenario.sizes[k as usize];
                let loc = p.source(w, k, size, now, gamma);
                let read = sys.read_time(loc, size, gamma);
                accs[w].push(read, size);
                used_pfs |= matches!(loc, Location::Pfs);
                p.on_consumed(w, k, now);
            }
            if used_pfs {
                pfs_workers += 1;
            }
        }
        gamma = (pfs_workers * threads_per_worker).max(1);
    }
    accs.iter().map(Acc::finish).fold(0.0, f64::max)
}

/// The same scenario with the worker count replaced.
fn at_membership(scenario: &Scenario, n: usize) -> Scenario {
    let mut s = scenario.clone();
    s.system.workers = n;
    s
}

/// One row of a churn sweep: a `(plan, policy)` pair's overhead over
/// the fault-free run and whether its delivered global stream stayed
/// bit-identical (the replay-exactness column of EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Label of the fault plan.
    pub plan: String,
    /// Which policy ran.
    pub policy: PolicyId,
    /// Modelled elastic execution time.
    pub execution_time: f64,
    /// `execution_time / fault_free_time` (≥ 1 in practice).
    pub overhead: f64,
    /// Crash-and-restarts processed.
    pub recoveries: usize,
    /// Policy rebuilds for new memberships.
    pub replans: usize,
    /// Whether the disturbed global stream equals the fault-free one.
    pub replay_exact: bool,
}

/// Sweeps `plans` × `policies` on one scenario, comparing each
/// disturbed run to its fault-free baseline. Combinations a policy
/// cannot support (e.g. the LBANN store after enough leaves) are
/// skipped, matching the figure benches' convention.
pub fn churn_sweep(
    scenario: &Scenario,
    policies: &[PolicyId],
    plans: &[(&str, FaultPlan)],
) -> Vec<ChurnRow> {
    let mut rows = Vec::new();
    for &policy in policies {
        let Ok(base) = run_elastic(scenario, policy, &FaultPlan::fault_free()) else {
            continue;
        };
        let base_stream = base.global_stream();
        for (label, plan) in plans {
            let Ok(r) = run_elastic(scenario, policy, plan) else {
                continue;
            };
            rows.push(ChurnRow {
                plan: (*label).to_string(),
                policy,
                execution_time: r.execution_time,
                overhead: r.execution_time / base.execution_time.max(f64::MIN_POSITIVE),
                recoveries: r.recoveries,
                replans: r.replans,
                replay_exact: r.global_stream() == base_stream,
            });
        }
    }
    rows
}

/// Sanity bridge: a fault-free elastic run must agree with the
/// steady-state engine on delivered streams (it *is* the same loop,
/// minus the cross-epoch pipeline carry-over the elastic path resets at
/// every epoch boundary). Exposed for tests and benches.
pub fn fault_free_reference(scenario: &Scenario, policy: PolicyId) -> Result<SimResult, SimError> {
    crate::engine::run(scenario, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::fig8_small_cluster;
    use nopfs_policy::ReadErrors;

    fn scenario() -> Scenario {
        let mut sys = fig8_small_cluster();
        sys.classes[0].capacity = 50_000; // 50 samples of RAM
        sys.classes[1].capacity = 100_000; // 100 of SSD
        Scenario::new("churn", sys, vec![1000u64; 120], 3, 4, 0xC1)
    }

    #[test]
    fn fault_free_elastic_matches_the_engine_streams() {
        let s = scenario();
        for policy in [PolicyId::NoPfs, PolicyId::Naive, PolicyId::StagingBuffer] {
            let r = run_elastic(&s, policy, &FaultPlan::fault_free()).unwrap();
            assert_eq!(r.memberships, vec![4, 4, 4]);
            assert_eq!(r.replans, 0);
            // Stream totals cover every epoch exactly once.
            let spe = s.shuffle_spec().samples_per_epoch();
            for (n, streams) in &r.epoch_streams {
                assert_eq!(*n, 4);
                let total: usize = streams.iter().map(Vec::len).sum();
                assert_eq!(total as u64, spe, "{policy}");
            }
        }
    }

    #[test]
    fn churn_preserves_identity_policy_streams() {
        let s = scenario();
        let plan = FaultPlan::fault_free().leave(1).join(2).crash(0, 3, 2);
        for policy in [PolicyId::NoPfs, PolicyId::Naive, PolicyId::LbannDynamic] {
            let base = run_elastic(&s, policy, &FaultPlan::fault_free()).unwrap();
            let churned = run_elastic(&s, policy, &plan).unwrap();
            assert_eq!(churned.memberships, vec![4, 3, 4]);
            assert_eq!(churned.replans, 1, "3-worker build, 4 reused");
            assert_eq!(churned.recoveries, 1);
            assert!(churned.recovery_time > 0.0);
            assert_eq!(
                churned.global_stream(),
                base.global_stream(),
                "{policy}: global stream changed under churn"
            );
        }
    }

    #[test]
    fn elastic_streams_match_the_policy_layer_canon() {
        let s = scenario();
        let plan = FaultPlan::fault_free().leave(1).join(2).straggle(1, 0, 2.0);
        for policy in [PolicyId::NoPfs, PolicyId::StagingBuffer, PolicyId::Naive] {
            let sim = run_elastic(&s, policy, &plan).unwrap();
            let canon = nopfs_policy::elastic_epoch_streams(
                policy,
                &s.system,
                &s.sizes,
                &s.shuffle_spec(),
                s.epochs,
                &plan,
            )
            .unwrap();
            assert_eq!(sim.epoch_streams, canon, "{policy}");
        }
    }

    #[test]
    fn stragglers_and_crashes_cost_time_but_not_content() {
        let s = scenario();
        let plan = FaultPlan::fault_free()
            .straggle(0, 1, 4.0)
            .crash(1, 2, 0)
            .with_read_errors(ReadErrors {
                rate: 0.05,
                max_burst: 2,
                seed: 9,
            });
        let base = run_elastic(&s, PolicyId::NoPfs, &FaultPlan::fault_free()).unwrap();
        let hit = run_elastic(&s, PolicyId::NoPfs, &plan).unwrap();
        assert!(
            hit.execution_time > base.execution_time,
            "straggler+crash must cost time: {} vs {}",
            hit.execution_time,
            base.execution_time
        );
        assert_eq!(hit.global_stream(), base.global_stream());
    }

    #[test]
    fn sweep_reports_overhead_and_exactness() {
        let s = scenario();
        let plans = [
            ("crash", FaultPlan::fault_free().crash(0, 2, 1)),
            ("churn", FaultPlan::fault_free().leave(1).join(2)),
        ];
        let rows = churn_sweep(&s, &[PolicyId::NoPfs, PolicyId::Naive], &plans);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.replay_exact, "{}/{}", row.policy, row.plan);
            assert!(row.overhead >= 1.0 - 1e-9, "{}", row.overhead);
        }
        assert!(rows.iter().any(|r| r.recoveries == 1));
        assert!(rows.iter().any(|r| r.replans == 1));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let s = scenario();
        let plan = FaultPlan::fault_free().crash(0, 0, 9);
        match run_elastic(&s, PolicyId::NoPfs, &plan) {
            Err(SimError::Unsupported(m)) => assert!(m.contains("outside membership"), "{m}"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }
}
