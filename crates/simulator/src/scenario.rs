//! Simulation scenarios: a system, a dataset (as a size vector), and the
//! training-run parameters.
//!
//! The paper organizes its study around four storage regimes (Sec. 6),
//! determined by how the dataset size `S` compares to the fastest class
//! `d_1`, a worker's total local storage `D`, and the cluster's aggregate
//! `N·D`; [`Scenario::regime`] classifies a scenario accordingly.

use crate::cloud::CloudSpec;
use nopfs_clairvoyance::sampler::ShuffleSpec;
use nopfs_perfmodel::SystemSpec;

/// Which of the paper's four caching regimes a scenario falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageRegime {
    /// `S < d_1`: dataset fits in every worker's fastest class.
    FitsInFastestClass,
    /// `d_1 < S ≤ D`: fits in one worker's aggregate local storage.
    FitsInWorker,
    /// `D < S ≤ N·D`: fits only in the cluster's aggregate storage.
    FitsInCluster,
    /// `N·D < S`: exceeds even aggregate cluster storage.
    ExceedsCluster,
}

impl std::fmt::Display for StorageRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageRegime::FitsInFastestClass => write!(f, "S < d1"),
            StorageRegime::FitsInWorker => write!(f, "d1 < S < D"),
            StorageRegime::FitsInCluster => write!(f, "D < S < N*D"),
            StorageRegime::ExceedsCluster => write!(f, "N*D < S"),
        }
    }
}

/// A complete simulation input.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label for reports ("ImageNet-1k", …).
    pub name: String,
    /// The modelled system (includes worker count `N`).
    pub system: SystemSpec,
    /// Per-sample sizes in bytes (`s_k`; length is `F`).
    pub sizes: Vec<u64>,
    /// Training epochs `E`.
    pub epochs: u64,
    /// Per-worker batch size `b`.
    pub batch_size: usize,
    /// Seed generating the SGD access stream.
    pub seed: u64,
    /// Drop the trailing partial global batch each epoch.
    pub drop_last: bool,
    /// When set, the origin is an object store priced by the analytic
    /// cloud model instead of the PFS curve (see [`crate::cloud`]).
    pub cloud: Option<CloudSpec>,
}

impl Scenario {
    /// Validates and constructs a scenario.
    ///
    /// # Panics
    /// Panics on empty datasets, zero epochs, or a zero batch size; the
    /// underlying [`ShuffleSpec`] panics if `drop_last` would drop the
    /// entire dataset.
    pub fn new(
        name: impl Into<String>,
        system: SystemSpec,
        sizes: Vec<u64>,
        epochs: u64,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        assert!(!sizes.is_empty(), "dataset must contain samples");
        assert!(epochs > 0, "at least one epoch");
        assert!(batch_size > 0, "batch size must be positive");
        system.validate();
        let s = Self {
            name: name.into(),
            system,
            sizes,
            epochs,
            batch_size,
            seed,
            drop_last: false,
            cloud: None,
        };
        // Force the shuffle-spec invariants now rather than mid-run.
        let _ = s.shuffle_spec();
        s
    }

    /// Routes the origin through the analytic cloud model.
    #[must_use]
    pub fn with_cloud(mut self, cloud: CloudSpec) -> Self {
        self.cloud = Some(cloud);
        self
    }

    /// The shuffle spec generating every worker's access stream.
    pub fn shuffle_spec(&self) -> ShuffleSpec {
        ShuffleSpec::new(
            self.seed,
            self.sizes.len() as u64,
            self.system.workers,
            self.batch_size,
            self.drop_last,
        )
    }

    /// Number of samples `F`.
    pub fn num_samples(&self) -> u64 {
        self.sizes.len() as u64
    }

    /// Total dataset size `S`, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Mean sample size, bytes.
    pub fn mean_sample_bytes(&self) -> f64 {
        self.total_bytes() as f64 / self.sizes.len() as f64
    }

    /// Which storage regime the scenario falls into (Sec. 6's cases 1–4).
    pub fn regime(&self) -> StorageRegime {
        let s = self.total_bytes();
        let d1 = self.system.classes.first().map_or(0, |c| c.capacity);
        let d = self.system.total_local_capacity();
        let nd = d.saturating_mul(self.system.workers as u64);
        if s <= d1 {
            StorageRegime::FitsInFastestClass
        } else if s <= d {
            StorageRegime::FitsInWorker
        } else if s <= nd {
            StorageRegime::FitsInCluster
        } else {
            StorageRegime::ExceedsCluster
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::fig8_small_cluster;
    use nopfs_util::units::GB;

    fn scenario_with_total(total_gb: f64) -> Scenario {
        let n = 1000usize;
        let per = (total_gb * GB / n as f64) as u64;
        Scenario::new("test", fig8_small_cluster(), vec![per; n], 2, 8, 7)
    }

    #[test]
    fn regime_classification_matches_paper_cases() {
        // fig8 cluster: d1 = 120 GB, D = 1020 GB, N*D = 4080 GB.
        assert_eq!(
            scenario_with_total(40.0 / 1000.0).regime(),
            StorageRegime::FitsInFastestClass // MNIST-like
        );
        assert_eq!(
            scenario_with_total(135.0).regime(),
            StorageRegime::FitsInWorker // ImageNet-1k-like
        );
        assert_eq!(
            scenario_with_total(1_500.0).regime(),
            StorageRegime::FitsInCluster // ImageNet-22k-like
        );
        // CosmoFlow is 262,144 x 17 MB = 4.456 TB (the paper's "4 TB"),
        // which exceeds N*D = 4.08 TB.
        assert_eq!(
            scenario_with_total(4_456.0).regime(),
            StorageRegime::ExceedsCluster
        );
    }

    #[test]
    fn totals_and_means() {
        let s = Scenario::new("t", fig8_small_cluster(), vec![10, 20, 30], 1, 1, 0);
        assert_eq!(s.total_bytes(), 60);
        assert_eq!(s.num_samples(), 3);
        assert!((s.mean_sample_bytes() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn regime_display() {
        assert_eq!(StorageRegime::FitsInWorker.to_string(), "d1 < S < D");
        assert_eq!(StorageRegime::ExceedsCluster.to_string(), "N*D < S");
    }

    #[test]
    #[should_panic(expected = "must contain samples")]
    fn rejects_empty_dataset() {
        Scenario::new("x", fig8_small_cluster(), vec![], 1, 1, 0);
    }
}
