//! Property-based tests of the performance model: physical sanity of
//! the equations for any inputs.

use nopfs_perfmodel::equations::consume_timeline;
use nopfs_perfmodel::presets::fig8_small_cluster;
use nopfs_perfmodel::{Location, ThroughputCurve};
use proptest::prelude::*;

proptest! {
    /// Interpolation stays within the envelope of neighbouring
    /// measurements inside the measured range.
    #[test]
    fn interpolation_within_envelope(
        ys in prop::collection::vec(1.0f64..1e9, 2..8),
        q in 0.0f64..1.0,
    ) {
        let points: Vec<(f64, f64)> = ys
            .iter()
            .enumerate()
            .map(|(i, &y)| ((i + 1) as f64, y))
            .collect();
        let curve = ThroughputCurve::from_points(&points);
        let x = 1.0 + q * (points.len() as f64 - 1.0);
        let v = curve.at(x);
        let idx = ((x - 1.0).floor() as usize).min(points.len() - 2);
        let (lo, hi) = (
            points[idx].1.min(points[idx + 1].1),
            points[idx].1.max(points[idx + 1].1),
        );
        prop_assert!(v >= lo - 1e-6 && v <= hi + 1e-6, "{v} outside [{lo}, {hi}]");
    }

    /// Curves never report non-positive throughput, even extrapolated.
    #[test]
    fn curves_stay_positive(
        ys in prop::collection::vec(1.0f64..1e9, 1..6),
        x in 0.001f64..10_000.0,
    ) {
        let points: Vec<(f64, f64)> = ys
            .iter()
            .enumerate()
            .map(|(i, &y)| ((i + 1) as f64, y))
            .collect();
        let curve = ThroughputCurve::from_points(&points);
        prop_assert!(curve.at(x) > 0.0);
    }

    /// Fetch times are positive and ordered sensibly for the preset
    /// system: local RAM <= remote RAM (network can only slow it) and a
    /// PFS read under more contention is never faster.
    #[test]
    fn fetch_time_orderings(size in 1u64..100_000_000, g1 in 1usize..8, extra in 0usize..32) {
        let sys = fig8_small_cluster();
        let local = sys.fetch_time(Location::Local(0), size, 1);
        let remote = sys.fetch_time(Location::Remote(0), size, 1);
        prop_assert!(local > 0.0 && remote >= local);
        let g2 = g1 + extra;
        let near = sys.fetch_pfs(size, g1);
        let far = sys.fetch_pfs(size, g2);
        // The Lassen curve's per-client share is non-increasing in γ
        // beyond its superlinear start, up to a small wobble where the
        // regression extrapolation takes over past the measured range.
        if g1 >= 4 {
            prop_assert!(far >= near * 0.98, "γ={g1}->{g2}: {near} -> {far}");
        }
    }

    /// The consumption recurrence is monotone (times never go backward)
    /// and total time is at least both the pure-compute and the
    /// pure-I/O bound.
    #[test]
    fn recurrence_bounds(
        reads in prop::collection::vec(0.0f64..2.0, 1..60),
        sizes in prop::collection::vec(1u64..10_000, 1..60),
        compute in 1.0f64..1e7,
        p0 in 1u32..8,
    ) {
        let n = reads.len().min(sizes.len());
        let (reads, sizes) = (&reads[..n], &sizes[..n]);
        let tl = consume_timeline(reads, sizes, compute, p0);
        let mut prev = 0.0;
        for a in &tl.accesses {
            prop_assert!(a.consumed >= prev - 1e-12);
            prop_assert!(a.stall >= 0.0);
            prev = a.consumed;
        }
        let compute_bound: f64 = sizes.iter().map(|&s| s as f64 / compute).sum();
        let io_bound: f64 = reads.iter().sum::<f64>() / f64::from(p0);
        prop_assert!(tl.total_time >= compute_bound - 1e-9);
        prop_assert!(tl.total_time >= io_bound - 1e-9);
        prop_assert!(tl.total_stall <= tl.total_time + 1e-9);
    }
}
