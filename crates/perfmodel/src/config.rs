//! The "system-wide configuration file" of Sec. 5.2.2.
//!
//! NoPFS reads its performance-model parameters from a small INI-style
//! file; unmeasured curve points are inferred by the linear regression
//! built into [`ThroughputCurve`]. The format:
//!
//! ```ini
//! # comments with '#' or ';'
//! [system]
//! name = my-cluster
//! workers = 4
//! compute_mbps = 64
//! preprocess_mbps = 200
//! interconnect_mbps = 24000
//!
//! [pfs]
//! read_mbps = 1:330, 2:730, 4:1540, 8:2870   # count:MB/s pairs, or one flat rate
//!
//! [staging]
//! capacity_gb = 5
//! threads = 8
//! read_mbps = 8:111000
//!
//! [class.ram]          # classes appear fastest-first
//! capacity_gb = 120
//! threads = 4
//! read_mbps = 4:85000
//! # write_mbps defaults to read_mbps
//! ```
//!
//! No external serialization crate is used: the approved dependency list
//! has no format crate for `serde`, and this format is simple enough
//! that a hand-rolled parser with precise line-numbered errors is the
//! more maintainable choice.

use crate::curve::ThroughputCurve;
use crate::system::{StagingSpec, StorageClass, SystemSpec};
use nopfs_util::units::{GB, MB};

/// A parse or validation error, with the 1-based line it occurred on
/// (0 for whole-document errors such as a missing section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number; 0 when no single line is at fault.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "config error: {}", self.message)
        } else {
            write!(f, "config error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError {
        line,
        message: message.into(),
    })
}

#[derive(Debug)]
struct Section {
    name: String,
    line: usize,
    entries: Vec<(String, String, usize)>,
}

impl Section {
    fn get(&self, key: &str) -> Option<(&str, usize)> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, l)| (v.as_str(), *l))
    }

    fn require(&self, key: &str) -> Result<(&str, usize), ConfigError> {
        self.get(key).ok_or(ConfigError {
            line: self.line,
            message: format!("section [{}] is missing required key '{key}'", self.name),
        })
    }
}

fn tokenize(text: &str) -> Result<Vec<Section>, ConfigError> {
    let mut sections: Vec<Section> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.find(['#', ';']) {
            Some(idx) => &raw[..idx],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let Some(name) = name.strip_suffix(']') else {
                return err(line_no, "unterminated section header");
            };
            let name = name.trim();
            if name.is_empty() {
                return err(line_no, "empty section name");
            }
            if sections.iter().any(|s| s.name == name) {
                return err(line_no, format!("duplicate section [{name}]"));
            }
            sections.push(Section {
                name: name.to_string(),
                line: line_no,
                entries: Vec::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return err(line_no, format!("expected 'key = value', got '{line}'"));
        };
        let key = key.trim().to_string();
        let value = value.trim().to_string();
        if key.is_empty() {
            return err(line_no, "empty key");
        }
        let Some(section) = sections.last_mut() else {
            return err(line_no, "key/value pair before any [section]");
        };
        if section.entries.iter().any(|(k, _, _)| *k == key) {
            return err(
                line_no,
                format!("duplicate key '{key}' in section [{}]", section.name),
            );
        }
        section.entries.push((key, value, line_no));
    }
    Ok(sections)
}

fn parse_f64(value: &str, line: usize) -> Result<f64, ConfigError> {
    match value.parse::<f64>() {
        Ok(x) if x.is_finite() => Ok(x),
        _ => err(line, format!("'{value}' is not a finite number")),
    }
}

fn parse_u32(value: &str, line: usize) -> Result<u32, ConfigError> {
    value.parse::<u32>().map_err(|_| ConfigError {
        line,
        message: format!("'{value}' is not a non-negative integer"),
    })
}

fn parse_usize(value: &str, line: usize) -> Result<usize, ConfigError> {
    value.parse::<usize>().map_err(|_| ConfigError {
        line,
        message: format!("'{value}' is not a non-negative integer"),
    })
}

/// Parses a curve value: either `count:MB/s` pairs separated by commas,
/// or a single flat MB/s rate.
fn parse_curve_mbps(value: &str, line: usize) -> Result<ThroughputCurve, ConfigError> {
    let mut points = Vec::new();
    for part in value.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return err(line, "empty curve point");
        }
        match part.split_once(':') {
            Some((x, y)) => {
                let x = parse_f64(x.trim(), line)?;
                let y = parse_f64(y.trim(), line)?;
                points.push((x, y * MB));
            }
            None => {
                let y = parse_f64(part, line)?;
                points.push((1.0, y * MB));
            }
        }
    }
    if points.is_empty() {
        return err(line, "curve needs at least one point");
    }
    for &(x, y) in &points {
        if x <= 0.0 || y <= 0.0 {
            return err(line, "curve points must be positive");
        }
    }
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    for w in points.windows(2) {
        if w[0].0 >= w[1].0 {
            return err(line, format!("duplicate curve point for count {}", w[0].0));
        }
    }
    Ok(ThroughputCurve::from_points(&points))
}

/// Parses capacity from `capacity_gb` or `capacity_mb` (exactly one must
/// be present).
fn parse_capacity(section: &Section) -> Result<u64, ConfigError> {
    match (section.get("capacity_gb"), section.get("capacity_mb")) {
        (Some(_), Some((_, l))) => err(
            l,
            format!(
                "section [{}] has both capacity_gb and capacity_mb",
                section.name
            ),
        ),
        (Some((v, l)), None) => {
            let gb = parse_f64(v, l)?;
            if gb < 0.0 {
                return err(l, "capacity must be non-negative");
            }
            Ok((gb * GB) as u64)
        }
        (None, Some((v, l))) => {
            let mb = parse_f64(v, l)?;
            if mb < 0.0 {
                return err(l, "capacity must be non-negative");
            }
            Ok((mb * MB) as u64)
        }
        (None, None) => err(
            section.line,
            format!(
                "section [{}] needs capacity_gb or capacity_mb",
                section.name
            ),
        ),
    }
}

fn parse_class(section: &Section) -> Result<StorageClass, ConfigError> {
    let name = section
        .name
        .strip_prefix("class.")
        .expect("caller filtered class sections")
        .to_string();
    if name.is_empty() {
        return err(section.line, "class sections are named [class.<name>]");
    }
    let capacity = parse_capacity(section)?;
    let (threads_v, threads_l) = section.require("threads")?;
    let threads = parse_u32(threads_v, threads_l)?;
    if threads == 0 {
        return err(threads_l, "class prefetch threads must be >= 1");
    }
    let (read_v, read_l) = section.require("read_mbps")?;
    let read = parse_curve_mbps(read_v, read_l)?;
    let write = match section.get("write_mbps") {
        Some((v, l)) => parse_curve_mbps(v, l)?,
        None => read.clone(),
    };
    Ok(StorageClass {
        name,
        capacity,
        prefetch_threads: threads,
        read,
        write,
    })
}

/// Parses a full [`SystemSpec`] from configuration text.
pub fn parse_system_spec(text: &str) -> Result<SystemSpec, ConfigError> {
    let sections = tokenize(text)?;
    let find = |name: &str| sections.iter().find(|s| s.name == name);

    let system = find("system").ok_or_else(|| ConfigError {
        line: 0,
        message: "missing required section [system]".into(),
    })?;
    let name = system
        .get("name")
        .map(|(v, _)| v.to_string())
        .unwrap_or_else(|| "unnamed".to_string());
    let (workers_v, workers_l) = system.require("workers")?;
    let workers = parse_usize(workers_v, workers_l)?;
    if workers == 0 {
        return err(workers_l, "workers must be >= 1");
    }
    let (c_v, c_l) = system.require("compute_mbps")?;
    let compute = parse_f64(c_v, c_l)? * MB;
    let (b_v, b_l) = system.require("preprocess_mbps")?;
    let preprocess = parse_f64(b_v, b_l)? * MB;
    let (i_v, i_l) = system.require("interconnect_mbps")?;
    let interconnect = parse_f64(i_v, i_l)? * MB;
    if compute <= 0.0 || preprocess <= 0.0 || interconnect <= 0.0 {
        return err(system.line, "system rates must be positive");
    }

    let pfs = find("pfs").ok_or_else(|| ConfigError {
        line: 0,
        message: "missing required section [pfs]".into(),
    })?;
    let (pfs_v, pfs_l) = pfs.require("read_mbps")?;
    let pfs_read = parse_curve_mbps(pfs_v, pfs_l)?;

    let staging = find("staging").ok_or_else(|| ConfigError {
        line: 0,
        message: "missing required section [staging]".into(),
    })?;
    let capacity = parse_capacity(staging)?;
    let (t_v, t_l) = staging.require("threads")?;
    let threads = parse_u32(t_v, t_l)?;
    if threads == 0 {
        return err(t_l, "staging threads must be >= 1 (p_0 >= 1)");
    }
    let (r_v, r_l) = staging.require("read_mbps")?;
    let read = parse_curve_mbps(r_v, r_l)?;
    let write = match staging.get("write_mbps") {
        Some((v, l)) => parse_curve_mbps(v, l)?,
        None => read.clone(),
    };
    let staging = StagingSpec {
        capacity,
        threads,
        read,
        write,
    };

    let mut classes = Vec::new();
    for section in &sections {
        if section.name.starts_with("class.") {
            classes.push(parse_class(section)?);
        } else if !["system", "pfs", "staging"].contains(&section.name.as_str()) {
            return err(section.line, format!("unknown section [{}]", section.name));
        }
    }

    let spec = SystemSpec {
        name,
        workers,
        compute,
        preprocess,
        interconnect,
        pfs_read,
        staging,
        classes,
    };
    spec.validate();
    Ok(spec)
}

fn curve_to_string(curve: &ThroughputCurve) -> String {
    curve
        .points()
        .iter()
        .map(|(x, y)| format!("{}:{}", x, y / MB))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Serializes a spec back to configuration text (round-trips through
/// [`parse_system_spec`] up to float formatting).
pub fn to_config_string(spec: &SystemSpec) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "[system]").unwrap();
    writeln!(out, "name = {}", spec.name).unwrap();
    writeln!(out, "workers = {}", spec.workers).unwrap();
    writeln!(out, "compute_mbps = {}", spec.compute / MB).unwrap();
    writeln!(out, "preprocess_mbps = {}", spec.preprocess / MB).unwrap();
    writeln!(out, "interconnect_mbps = {}", spec.interconnect / MB).unwrap();
    writeln!(out).unwrap();
    writeln!(out, "[pfs]").unwrap();
    writeln!(out, "read_mbps = {}", curve_to_string(&spec.pfs_read)).unwrap();
    writeln!(out).unwrap();
    writeln!(out, "[staging]").unwrap();
    writeln!(out, "capacity_mb = {}", spec.staging.capacity as f64 / MB).unwrap();
    writeln!(out, "threads = {}", spec.staging.threads).unwrap();
    writeln!(out, "read_mbps = {}", curve_to_string(&spec.staging.read)).unwrap();
    writeln!(out, "write_mbps = {}", curve_to_string(&spec.staging.write)).unwrap();
    for class in &spec.classes {
        writeln!(out).unwrap();
        writeln!(out, "[class.{}]", class.name).unwrap();
        writeln!(out, "capacity_mb = {}", class.capacity as f64 / MB).unwrap();
        writeln!(out, "threads = {}", class.prefetch_threads).unwrap();
        writeln!(out, "read_mbps = {}", curve_to_string(&class.read)).unwrap();
        writeln!(out, "write_mbps = {}", curve_to_string(&class.write)).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    const GOOD: &str = r#"
# the paper's Fig. 8 cluster
[system]
name = fig8
workers = 4
compute_mbps = 64
preprocess_mbps = 200
interconnect_mbps = 24000

[pfs]
read_mbps = 1:330, 2:730, 4:1540, 8:2870

[staging]
capacity_gb = 5
threads = 8
read_mbps = 8:111000

[class.ram]
capacity_gb = 120
threads = 4
read_mbps = 4:85000

[class.ssd]
capacity_gb = 900
threads = 2
read_mbps = 2:4000   ; trailing comment
"#;

    #[test]
    fn parses_full_config() {
        let spec = parse_system_spec(GOOD).unwrap();
        assert_eq!(spec.name, "fig8");
        assert_eq!(spec.workers, 4);
        assert_eq!(spec.classes.len(), 2);
        assert_eq!(spec.classes[0].name, "ram");
        assert_eq!(spec.classes[1].name, "ssd");
        assert_eq!(spec.staging.threads, 8);
        // Curve round-trips: t(4) = 1540 MB/s.
        assert!((spec.pfs_read.at(4.0) - 1_540.0 * MB).abs() < 1.0);
        // write defaults to read.
        assert_eq!(spec.classes[0].write, spec.classes[0].read);
    }

    #[test]
    fn parsed_config_matches_preset() {
        let parsed = parse_system_spec(GOOD).unwrap();
        let preset = presets::fig8_small_cluster();
        assert_eq!(parsed.workers, preset.workers);
        assert_eq!(parsed.compute, preset.compute);
        assert_eq!(parsed.staging.capacity, preset.staging.capacity);
        assert_eq!(parsed.classes[1].capacity, preset.classes[1].capacity);
    }

    #[test]
    fn round_trip_through_serializer() {
        let spec = presets::lassen_like();
        let text = to_config_string(&spec);
        let back = parse_system_spec(&text).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.workers, spec.workers);
        assert_eq!(back.classes.len(), spec.classes.len());
        assert!((back.compute - spec.compute).abs() < 1.0);
        assert!((back.pfs_read.at(4.0) - spec.pfs_read.at(4.0)).abs() < 1.0);
        for (a, b) in back.classes.iter().zip(&spec.classes) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.capacity, b.capacity);
            assert_eq!(a.prefetch_threads, b.prefetch_threads);
        }
    }

    #[test]
    fn flat_curve_shorthand() {
        let text = GOOD.replace("1:330, 2:730, 4:1540, 8:2870", "500");
        let spec = parse_system_spec(&text).unwrap();
        assert!((spec.pfs_read.at(1.0) - 500.0 * MB).abs() < 1.0);
        assert!((spec.pfs_read.at(32.0) - 500.0 * MB).abs() < 1.0);
    }

    fn expect_err(text: &str, needle: &str) {
        match parse_system_spec(text) {
            Err(e) => assert!(
                e.to_string().contains(needle),
                "error '{e}' does not mention '{needle}'"
            ),
            Ok(_) => panic!("expected error mentioning '{needle}'"),
        }
    }

    #[test]
    fn missing_section_is_reported() {
        expect_err(
            "[system]\nworkers=1\ncompute_mbps=1\npreprocess_mbps=1\ninterconnect_mbps=1\n",
            "[pfs]",
        );
    }

    #[test]
    fn missing_key_is_reported() {
        expect_err(&GOOD.replace("workers = 4", "w = 4"), "'workers'");
    }

    #[test]
    fn bad_number_is_reported_with_line() {
        let text = GOOD.replace("compute_mbps = 64", "compute_mbps = fast");
        let e = parse_system_spec(&text).unwrap_err();
        assert!(e.line > 0);
        assert!(e.message.contains("not a finite number"));
    }

    #[test]
    fn duplicate_key_rejected() {
        let text = GOOD.replace("workers = 4", "workers = 4\nworkers = 8");
        expect_err(&text, "duplicate key");
    }

    #[test]
    fn duplicate_section_rejected() {
        let text = format!("{GOOD}\n[pfs]\nread_mbps = 100\n");
        expect_err(&text, "duplicate section");
    }

    #[test]
    fn unknown_section_rejected() {
        let text = format!("{GOOD}\n[gpu]\ncount = 4\n");
        expect_err(&text, "unknown section");
    }

    #[test]
    fn orphan_key_rejected() {
        expect_err("workers = 4\n", "before any [section]");
    }

    #[test]
    fn zero_staging_threads_rejected() {
        let text = GOOD.replace("threads = 8", "threads = 0");
        expect_err(&text, "p_0 >= 1");
    }

    #[test]
    fn both_capacity_units_rejected() {
        let text = GOOD.replace(
            "[class.ram]\ncapacity_gb = 120",
            "[class.ram]\ncapacity_gb = 120\ncapacity_mb = 1",
        );
        expect_err(&text, "both capacity_gb and capacity_mb");
    }

    #[test]
    fn bad_curve_point_rejected() {
        let text = GOOD.replace("2:4000", "2:-5");
        expect_err(&text, "positive");
    }

    #[test]
    fn unterminated_section_rejected() {
        expect_err("[system\nworkers = 1\n", "unterminated");
    }
}
