//! The model's consumption recurrence (paper Sec. 4, Fig. 4).
//!
//! The key metric is `t_{i,f}`, the time elapsed when worker `i` consumes
//! the `f`-th entry of its access stream `R`:
//!
//! ```text
//! t_{i,f}    = max( avail_i(f),  t_{i,f-1} + s_{R_{f-1}} / c )
//! avail_i(f) = ( Σ_{k=1..f} read_i(R_k) ) / p_0
//! ```
//!
//! `avail_i(f)` models `p_0` load-balanced prefetch threads pipelining
//! reads into the staging buffer; the second term is the trainer still
//! computing on the previous sample. Whenever `avail` exceeds the
//! compute-ready time the trainer *stalls* — the quantity Fig. 12
//! reports and every I/O optimization in the paper tries to drive to
//! zero.

/// Timing of one consumed access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessTiming {
    /// `avail_i(f)`: when the sample is ready in the staging buffer.
    pub avail: f64,
    /// When the trainer is ready for the sample (done computing on the
    /// previous one).
    pub compute_ready: f64,
    /// `t_{i,f}`: when the sample is actually consumed.
    pub consumed: f64,
    /// Stall time charged to this access: `max(0, avail − compute_ready)`.
    pub stall: f64,
}

/// Streaming evaluator of the `t_{i,f}` recurrence.
///
/// Push accesses one at a time (read time per the model's `read_i`, plus
/// the sample size); the accumulator never stores the timeline, so
/// simulating multi-epoch ImageNet-scale streams stays O(1) in memory.
#[derive(Debug, Clone)]
pub struct ConsumeAccumulator {
    compute: f64,
    p0: f64,
    cum_read: f64,
    t_prev: f64,
    prev_size: u64,
    total_stall: f64,
    count: u64,
}

impl ConsumeAccumulator {
    /// Creates an evaluator for compute throughput `compute` (bytes/s)
    /// and `p0 ≥ 1` staging prefetch threads.
    ///
    /// # Panics
    /// Panics if `compute` is not positive or `p0 == 0`.
    pub fn new(compute: f64, p0: u32) -> Self {
        assert!(
            compute.is_finite() && compute > 0.0,
            "compute rate must be positive"
        );
        assert!(p0 >= 1, "the model requires p_0 >= 1");
        Self {
            compute,
            p0: f64::from(p0),
            cum_read: 0.0,
            t_prev: 0.0,
            prev_size: 0,
            total_stall: 0.0,
            count: 0,
        }
    }

    /// Records the next access of the stream: `read_time` is the model's
    /// `read_i(R_f) = fetch + write`, `size` the sample's bytes. Returns
    /// the access's timing.
    pub fn push(&mut self, read_time: f64, size: u64) -> AccessTiming {
        debug_assert!(read_time >= 0.0, "negative read time");
        self.cum_read += read_time;
        let avail = self.cum_read / self.p0;
        let compute_ready = self.t_prev + self.prev_size as f64 / self.compute;
        let consumed = avail.max(compute_ready);
        let stall = (avail - compute_ready).max(0.0);
        self.total_stall += stall;
        self.t_prev = consumed;
        self.prev_size = size;
        self.count += 1;
        AccessTiming {
            avail,
            compute_ready,
            consumed,
            stall,
        }
    }

    /// Number of accesses recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `t_{i,f}` of the most recent access (0 before any access).
    pub fn last_consumed(&self) -> f64 {
        self.t_prev
    }

    /// Total trainer stall time so far.
    pub fn total_stall(&self) -> f64 {
        self.total_stall
    }

    /// End-to-end time including the compute on the final sample —
    /// the epoch/run execution time the figures report.
    pub fn finish(&self) -> f64 {
        self.t_prev + self.prev_size as f64 / self.compute
    }
}

/// A fully materialized timeline (for tests and small analyses);
/// wraps [`ConsumeAccumulator`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConsumeTimeline {
    /// Per-access timings, in stream order.
    pub accesses: Vec<AccessTiming>,
    /// Total stall time.
    pub total_stall: f64,
    /// End-to-end execution time (includes final compute).
    pub total_time: f64,
}

/// Evaluates the recurrence over whole streams of `read_times` and
/// `sizes` (must be equal length).
///
/// # Panics
/// Panics on length mismatch or invalid `compute`/`p0`.
pub fn consume_timeline(
    read_times: &[f64],
    sizes: &[u64],
    compute: f64,
    p0: u32,
) -> ConsumeTimeline {
    assert_eq!(
        read_times.len(),
        sizes.len(),
        "one read time per access required"
    );
    let mut acc = ConsumeAccumulator::new(compute, p0);
    let accesses: Vec<AccessTiming> = read_times
        .iter()
        .zip(sizes)
        .map(|(&rt, &s)| acc.push(rt, s))
        .collect();
    ConsumeTimeline {
        accesses,
        total_stall: acc.total_stall(),
        total_time: acc.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_bound_stream_is_all_stall() {
        // Instant compute (huge c): every access waits on avail.
        let tl = consume_timeline(&[1.0, 1.0, 1.0], &[1, 1, 1], 1e18, 1);
        // avail: 1, 2, 3 — consumed at those times.
        let consumed: Vec<f64> = tl.accesses.iter().map(|a| a.consumed).collect();
        assert_eq!(consumed, vec![1.0, 2.0, 3.0]);
        assert!((tl.total_stall - 3.0).abs() < 1e-9);
        assert!((tl.total_time - 3.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_stream_stalls_once() {
        // Reads are instant after the first; compute dominates.
        // c = 1 byte/s, sizes = 10 bytes => 10 s compute per sample.
        let tl = consume_timeline(&[1.0, 0.0, 0.0], &[10, 10, 10], 1.0, 1);
        // First access: avail = 1, compute_ready = 0 -> stall 1, t=1.
        // Second: avail = 1, ready = 1+10=11 -> t=11, no stall.
        // Third: avail = 1, ready = 21 -> t=21.
        let consumed: Vec<f64> = tl.accesses.iter().map(|a| a.consumed).collect();
        assert_eq!(consumed, vec![1.0, 11.0, 21.0]);
        assert!((tl.total_stall - 1.0).abs() < 1e-9);
        assert!((tl.total_time - 31.0).abs() < 1e-9);
    }

    #[test]
    fn prefetch_threads_divide_avail() {
        // p0 = 4: cumulative read time is spread over 4 threads.
        let tl = consume_timeline(&[4.0, 4.0], &[1, 1], 1e18, 4);
        let consumed: Vec<f64> = tl.accesses.iter().map(|a| a.consumed).collect();
        assert_eq!(consumed, vec![1.0, 2.0]);
    }

    #[test]
    fn recurrence_matches_hand_computation() {
        // Mixed case, hand-evaluated:
        // c = 10 B/s, p0 = 2, reads = [2, 2, 6], sizes = [10, 30, 10].
        // f1: avail = 2/2 = 1,  ready = 0           -> t=1, stall 1
        // f2: avail = 4/2 = 2,  ready = 1 + 1 = 2   -> t=2, stall 0
        // f3: avail = 10/2 = 5, ready = 2 + 3 = 5   -> t=5, stall 0
        // total = 5 + 10/10 = 6
        let tl = consume_timeline(&[2.0, 2.0, 6.0], &[10, 30, 10], 10.0, 2);
        let consumed: Vec<f64> = tl.accesses.iter().map(|a| a.consumed).collect();
        assert_eq!(consumed, vec![1.0, 2.0, 5.0]);
        assert!((tl.total_stall - 1.0).abs() < 1e-9);
        assert!((tl.total_time - 6.0).abs() < 1e-9);
    }

    #[test]
    fn consumed_is_monotone_nondecreasing() {
        let reads = [0.5, 3.0, 0.1, 0.1, 2.0, 0.0];
        let sizes = [5u64, 1, 8, 2, 2, 2];
        let tl = consume_timeline(&reads, &sizes, 4.0, 2);
        for w in tl.accesses.windows(2) {
            assert!(w[1].consumed >= w[0].consumed);
        }
    }

    #[test]
    fn accumulator_streaming_matches_batch() {
        let reads = [1.0, 0.2, 0.7, 0.0, 1.5];
        let sizes = [3u64, 9, 1, 4, 2];
        let tl = consume_timeline(&reads, &sizes, 2.0, 3);
        let mut acc = ConsumeAccumulator::new(2.0, 3);
        for (&r, &s) in reads.iter().zip(&sizes) {
            acc.push(r, s);
        }
        assert_eq!(acc.count(), 5);
        assert!((acc.total_stall() - tl.total_stall).abs() < 1e-12);
        assert!((acc.finish() - tl.total_time).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_is_zero_time() {
        let tl = consume_timeline(&[], &[], 1.0, 1);
        assert_eq!(tl.total_time, 0.0);
        assert_eq!(tl.total_stall, 0.0);
        assert!(tl.accesses.is_empty());
    }

    #[test]
    #[should_panic(expected = "p_0 >= 1")]
    fn rejects_zero_threads() {
        ConsumeAccumulator::new(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "one read time per access")]
    fn rejects_length_mismatch() {
        consume_timeline(&[1.0], &[], 1.0, 1);
    }

    #[test]
    fn faster_io_never_slows_the_run() {
        // Monotonicity: scaling all read times down cannot increase
        // total time (sanity property used by the simulator's
        // design-space sweeps).
        let sizes = vec![7u64; 50];
        let reads: Vec<f64> = (0..50).map(|i| 0.1 + 0.01 * (i % 7) as f64).collect();
        let slow = consume_timeline(&reads, &sizes, 3.0, 2).total_time;
        let faster: Vec<f64> = reads.iter().map(|r| r * 0.5).collect();
        let fast = consume_timeline(&faster, &sizes, 3.0, 2).total_time;
        assert!(fast <= slow + 1e-9);
    }
}
