//! System presets used in the paper.
//!
//! - [`fig8_small_cluster`] — the exact configuration of the Sec. 6.1
//!   simulation study ("based on benchmarks of the Lassen
//!   supercomputer"): N=4 workers, c=64 MB/s, β=200 MB/s, b_c=24 GB/s,
//!   5 GB staging / 120 GB RAM / 900 GB SSD with 8/4/2 prefetch
//!   threads and r₀(8)=111 GB/s, r₁(4)=85 GB/s, r₂(2)=4 GB/s, PFS
//!   t(1)=330, t(2)=730, t(4)=1540, t(8)=2870 MB/s.
//! - [`piz_daint_like`] / [`lassen_like`] — the evaluation hierarchies of
//!   Sec. 7 (Fig. 1): Piz Daint ranks get a 5 GiB staging buffer with 4
//!   threads plus 40 GiB RAM with 2 threads (no local SSD); Lassen ranks
//!   get 5 GiB staging with 8 threads, 25 GiB RAM with 4 threads, and
//!   300 GiB SSD with 2 threads. Interconnect and PFS rates follow
//!   Fig. 1's published link speeds; where the paper gives no measured
//!   PFS curve for these systems we reuse the Lassen-benchmark shape
//!   scaled to the system's peak, documented in EXPERIMENTS.md.

use crate::curve::ThroughputCurve;
use crate::system::{StagingSpec, StorageClass, SystemSpec};
use nopfs_util::units::{GB, MB};

/// Write curves are rarely measured separately for RAM-like devices; the
/// paper's simulation config only lists read rates, so presets default
/// writes to the read curve (correct for RAM, conservative for SSD).
fn class(name: &str, capacity: f64, threads: u32, read: ThroughputCurve) -> StorageClass {
    StorageClass {
        name: name.to_string(),
        capacity: capacity as u64,
        prefetch_threads: threads,
        write: read.clone(),
        read,
    }
}

/// The Lassen-derived PFS curve from Sec. 6.1: near-linear scaling at
/// ~360 MB/s per additional client over the measured range.
pub fn lassen_pfs_curve() -> ThroughputCurve {
    ThroughputCurve::from_points(&[
        (1.0, 330.0 * MB),
        (2.0, 730.0 * MB),
        (4.0, 1_540.0 * MB),
        (8.0, 2_870.0 * MB),
    ])
}

/// A PFS curve that saturates: scales like the Lassen curve up to
/// `saturation_clients`, then stays flat at `peak` — the behaviour that
/// creates the contention wall for Naive/double-buffering policies at
/// scale (PFS bandwidth "often constant or decreasing with many
/// readers", Sec. 5.1).
pub fn saturating_pfs_curve(peak: f64, saturation_clients: f64) -> ThroughputCurve {
    let per_client = peak / saturation_clients;
    ThroughputCurve::from_points(&[
        (1.0, per_client),
        (saturation_clients / 2.0, peak / 2.0),
        (saturation_clients, peak),
        (saturation_clients * 4.0, peak * 1.02),
        (saturation_clients * 16.0, peak * 1.03),
    ])
}

/// A PFS curve that *thrashes*: it follows the measured Lassen points
/// (near-linear, ~360 MB/s per client) up to 8 clients, then aggregate
/// throughput *decreases* toward `collapse_total` at `collapse_clients`
/// — the paper's `t(γ)/γ` "often constant or decreasing with many
/// readers" (Sec. 5.1). Policies with a few synchronous readers see the
/// fast region; policies whose prefetch threads pile onto the PFS see
/// the collapse.
///
/// # Panics
/// Panics unless `collapse_clients > 8` and `collapse_total` is
/// positive.
pub fn thrashing_pfs_curve(collapse_clients: f64, collapse_total: f64) -> ThroughputCurve {
    assert!(
        collapse_clients > 8.0,
        "collapse must lie beyond the measured range"
    );
    assert!(collapse_total > 0.0);
    ThroughputCurve::from_points(&[
        (1.0, 330.0 * MB),
        (2.0, 730.0 * MB),
        (4.0, 1_540.0 * MB),
        (8.0, 2_870.0 * MB),
        (collapse_clients, collapse_total),
    ])
}

/// The Sec. 6.1 small-cluster simulation configuration (drives Fig. 8).
pub fn fig8_small_cluster() -> SystemSpec {
    let spec = SystemSpec {
        name: "fig8-small-cluster".to_string(),
        workers: 4,
        compute: 64.0 * MB,
        preprocess: 200.0 * MB,
        interconnect: 24_000.0 * MB,
        pfs_read: lassen_pfs_curve(),
        staging: StagingSpec {
            capacity: (5.0 * GB) as u64,
            threads: 8,
            read: ThroughputCurve::from_points(&[(8.0, 111_000.0 * MB)]),
            write: ThroughputCurve::from_points(&[(8.0, 111_000.0 * MB)]),
        },
        classes: vec![
            class(
                "ram",
                120.0 * GB,
                4,
                ThroughputCurve::from_points(&[(4.0, 85_000.0 * MB)]),
            ),
            class(
                "ssd",
                900.0 * GB,
                2,
                ThroughputCurve::from_points(&[(2.0, 4_000.0 * MB)]),
            ),
        ],
    };
    spec.validate();
    spec
}

/// A Piz-Daint-like worker (Sec. 7 / Fig. 1): Cray XC50, one P100 rank
/// per node, 64 GB node RAM (40 GiB usable for NoPFS), Lustre PFS,
/// Aries dragonfly at ~10 GB/s. No node-local SSD — the configuration
/// that makes hardware independence matter.
pub fn piz_daint_like() -> SystemSpec {
    let spec = SystemSpec {
        name: "piz-daint".to_string(),
        workers: 8,
        compute: 64.0 * MB,
        preprocess: 200.0 * MB,
        interconnect: 10_000.0 * MB,
        // Lustre under contention: saturates near 6 GB/s for this
        // allocation size (scaled shape; see EXPERIMENTS.md).
        pfs_read: saturating_pfs_curve(6_000.0 * MB, 16.0),
        staging: StagingSpec {
            capacity: (5.0 * GB) as u64,
            threads: 4,
            read: ThroughputCurve::from_points(&[(4.0, 60_000.0 * MB)]),
            write: ThroughputCurve::from_points(&[(4.0, 60_000.0 * MB)]),
        },
        classes: vec![class(
            "ram",
            40.0 * GB,
            2,
            ThroughputCurve::from_points(&[(2.0, 50_000.0 * MB)]),
        )],
    };
    spec.validate();
    spec
}

/// A Lassen-like rank (Sec. 7 / Fig. 1): four V100 ranks per node,
/// 25 GiB RAM + 300 GiB of the node's 1.6 TB NVMe per rank, GPFS,
/// EDR InfiniBand fat tree (~6 GB/s per rank).
pub fn lassen_like() -> SystemSpec {
    let spec = SystemSpec {
        name: "lassen".to_string(),
        workers: 8,
        compute: 64.0 * MB,
        preprocess: 200.0 * MB,
        interconnect: 6_000.0 * MB,
        pfs_read: lassen_pfs_curve(),
        staging: StagingSpec {
            capacity: (5.0 * GB) as u64,
            threads: 8,
            read: ThroughputCurve::from_points(&[(8.0, 111_000.0 * MB)]),
            write: ThroughputCurve::from_points(&[(8.0, 111_000.0 * MB)]),
        },
        classes: vec![
            class(
                "ram",
                25.0 * GB,
                4,
                ThroughputCurve::from_points(&[(4.0, 85_000.0 * MB)]),
            ),
            class(
                "ssd",
                300.0 * GB,
                2,
                ThroughputCurve::from_points(&[(2.0, 4_000.0 * MB)]),
            ),
        ],
    };
    spec.validate();
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        fig8_small_cluster().validate();
        piz_daint_like().validate();
        lassen_like().validate();
    }

    #[test]
    fn piz_daint_has_no_ssd() {
        assert_eq!(piz_daint_like().classes.len(), 1);
        assert_eq!(piz_daint_like().classes[0].name, "ram");
    }

    #[test]
    fn lassen_has_ram_and_ssd() {
        let l = lassen_like();
        assert_eq!(l.classes.len(), 2);
        assert!(l.classes[0].capacity < l.classes[1].capacity);
        assert!(l.classes[0].read_per_thread() > l.classes[1].read_per_thread());
    }

    #[test]
    fn saturating_curve_flattens() {
        let c = saturating_pfs_curve(6_000.0 * MB, 16.0);
        let at16 = c.at(16.0);
        let at64 = c.at(64.0);
        assert!((at16 - 6_000.0 * MB).abs() < 1.0);
        // Beyond saturation the aggregate barely grows...
        assert!(at64 < 6_500.0 * MB);
        // ...so per-client throughput collapses (the contention wall).
        assert!(c.per_thread(64.0) < c.per_thread(4.0) / 2.0);
    }
}
