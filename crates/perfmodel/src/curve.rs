//! Throughput curves: aggregate bandwidth as a function of the number of
//! threads or clients.
//!
//! The paper models all storage throughput as functions — `t(γ)` for the
//! PFS under `γ` readers, `r_j(p)`/`w_j(p)` for storage class `j` with
//! `p` threads — because "for many storage devices, a single thread
//! cannot saturate its bandwidth" and PFS bandwidth "is heavily dependent
//! on the number of clients". Operators measure a few points with FIO or
//! IOR; values in between are interpolated and values beyond are
//! extrapolated with the least-squares line through the measurements,
//! mirroring the paper's "parameterized values … inferred using linear
//! regression when the exact value is not available".

use nopfs_util::stats::linear_fit;

/// Smallest throughput the curve will ever report, bytes/second. The
/// extrapolated regression line could otherwise cross zero and produce
/// nonsensical negative fetch times.
const MIN_RATE: f64 = 1.0;

/// An aggregate-throughput curve built from measured `(count, bytes/s)`
/// points.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputCurve {
    /// Measured points, ascending in `x`; at least one.
    points: Vec<(f64, f64)>,
    /// Least-squares `(intercept, slope)` through all points, present
    /// when there are ≥ 2 points with distinct `x`.
    fit: Option<(f64, f64)>,
}

impl ThroughputCurve {
    /// Builds a curve from measured points (`x` = thread/client count,
    /// `y` = aggregate bytes/second).
    ///
    /// # Panics
    /// Panics if `points` is empty, contains non-finite values,
    /// non-positive throughput, duplicate `x`, or non-positive `x`.
    pub fn from_points(points: &[(f64, f64)]) -> Self {
        assert!(!points.is_empty(), "a curve needs at least one point");
        let mut pts = points.to_vec();
        for &(x, y) in &pts {
            assert!(x.is_finite() && x > 0.0, "counts must be positive, got {x}");
            assert!(
                y.is_finite() && y > 0.0,
                "throughput must be positive, got {y}"
            );
        }
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite checked"));
        for w in pts.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "duplicate measurement for count {}",
                w[0].0
            );
        }
        let fit = if pts.len() >= 2 {
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            Some(linear_fit(&xs, &ys))
        } else {
            None
        };
        Self { points: pts, fit }
    }

    /// A constant curve: the device delivers `rate` bytes/second at any
    /// thread count.
    pub fn flat(rate: f64) -> Self {
        Self::from_points(&[(1.0, rate)])
    }

    /// Aggregate throughput (bytes/second) at `count` threads/clients.
    ///
    /// Exact at measured points, piecewise-linear between them, and on
    /// the regression line outside the measured range (floored at a tiny
    /// positive rate so times stay finite). A single-point curve is flat.
    pub fn at(&self, count: f64) -> f64 {
        assert!(count.is_finite() && count > 0.0, "count must be positive");
        let pts = &self.points;
        if pts.len() == 1 {
            return pts[0].1;
        }
        if count <= pts[0].0 || count >= pts[pts.len() - 1].0 {
            // Outside the measured range: regression line.
            let (a, b) = self.fit.expect("≥2 points implies a fit");
            // Clamp interior boundary values to the exact measurements.
            if count == pts[0].0 {
                return pts[0].1;
            }
            if count == pts[pts.len() - 1].0 {
                return pts[pts.len() - 1].1;
            }
            return (a + b * count).max(MIN_RATE);
        }
        // Piecewise-linear interpolation.
        let idx = pts.partition_point(|p| p.0 < count);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        if count == x0 {
            return y0;
        }
        let frac = (count - x0) / (x1 - x0);
        (y0 + frac * (y1 - y0)).max(MIN_RATE)
    }

    /// Per-thread throughput at `count` threads: `curve(count)/count` —
    /// the quantity the model's fetch equations divide by.
    pub fn per_thread(&self, count: f64) -> f64 {
        self.at(count) / count
    }

    /// A copy of the curve with every throughput multiplied by
    /// `factor` — how a slower (or faster) device of the same shape is
    /// derived from a measured one when building deeper hierarchies.
    ///
    /// # Panics
    /// Panics unless `factor` is positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive, got {factor}"
        );
        let pts: Vec<(f64, f64)> = self.points.iter().map(|&(x, y)| (x, y * factor)).collect();
        Self::from_points(&pts)
    }

    /// The measured points, ascending in `x`.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Maximum measured aggregate throughput.
    pub fn peak_measured(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(f64::MIN, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_multiplies_throughput_everywhere() {
        let c = ThroughputCurve::from_points(&[(1.0, 100.0), (4.0, 300.0)]);
        let s = c.scaled(0.25);
        for count in [1.0, 2.0, 4.0, 8.0] {
            assert!((s.at(count) - c.at(count) * 0.25).abs() < 1e-9);
        }
        assert_eq!(s.points().len(), 2);
    }

    /// The paper's Lassen-derived PFS curve from Sec. 6.1.
    fn lassen_pfs() -> ThroughputCurve {
        ThroughputCurve::from_points(&[
            (1.0, 330.0e6),
            (2.0, 730.0e6),
            (4.0, 1_540.0e6),
            (8.0, 2_870.0e6),
        ])
    }

    #[test]
    fn exact_at_measured_points() {
        let c = lassen_pfs();
        assert_eq!(c.at(1.0), 330.0e6);
        assert_eq!(c.at(2.0), 730.0e6);
        assert_eq!(c.at(4.0), 1_540.0e6);
        assert_eq!(c.at(8.0), 2_870.0e6);
    }

    #[test]
    fn interpolates_between_points() {
        let c = lassen_pfs();
        let mid = c.at(3.0);
        assert!((mid - (730.0e6 + 1_540.0e6) / 2.0).abs() < 1.0);
        assert!(c.at(6.0) > 1_540.0e6 && c.at(6.0) < 2_870.0e6);
    }

    #[test]
    fn extrapolates_with_regression() {
        let c = lassen_pfs();
        // The Lassen points are close to linear (~363 MB/s per client);
        // 16 clients should extrapolate to roughly 5.8 GB/s.
        let x16 = c.at(16.0);
        assert!(
            x16 > 5.0e9 && x16 < 6.5e9,
            "extrapolation out of plausible range: {x16}"
        );
    }

    #[test]
    fn extrapolation_never_negative() {
        // Strongly decreasing curve: regression line crosses zero.
        let c = ThroughputCurve::from_points(&[(1.0, 100.0), (2.0, 10.0)]);
        assert!(c.at(10.0) >= 1.0);
    }

    #[test]
    fn flat_curve_is_constant() {
        let c = ThroughputCurve::flat(5.0e9);
        assert_eq!(c.at(1.0), 5.0e9);
        assert_eq!(c.at(64.0), 5.0e9);
        assert_eq!(c.per_thread(4.0), 1.25e9);
    }

    #[test]
    fn per_thread_divides_aggregate() {
        let c = lassen_pfs();
        assert!((c.per_thread(8.0) - 2_870.0e6 / 8.0).abs() < 1.0);
    }

    #[test]
    fn points_are_sorted_on_construction() {
        let c = ThroughputCurve::from_points(&[(4.0, 40.0), (1.0, 10.0), (2.0, 20.0)]);
        let xs: Vec<f64> = c.points().iter().map(|p| p.0).collect();
        assert_eq!(xs, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn peak_measured_is_max() {
        assert_eq!(lassen_pfs().peak_measured(), 2_870.0e6);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty() {
        ThroughputCurve::from_points(&[]);
    }

    #[test]
    #[should_panic(expected = "duplicate measurement")]
    fn rejects_duplicate_x() {
        ThroughputCurve::from_points(&[(1.0, 10.0), (1.0, 20.0)]);
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn rejects_zero_rate() {
        ThroughputCurve::from_points(&[(1.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "count must be positive")]
    fn rejects_zero_count_query() {
        ThroughputCurve::flat(1.0).at(0.0);
    }
}
