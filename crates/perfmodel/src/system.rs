//! Table 2 as types: storage classes, the staging buffer, and whole
//! system specifications, with the per-source fetch-time queries that
//! drive both NoPFS's runtime decisions and the simulator.

use crate::curve::ThroughputCurve;
use nopfs_util::units::MB;

/// Where a sample is fetched from — the three cases of the model's
/// `fetch` equation plus the staging buffer itself (used by statistics;
/// a staging hit costs no fetch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// Already in the staging buffer.
    Staging,
    /// The worker's own storage class `j` (0 = fastest cache class).
    Local(u8),
    /// Another worker's storage class `j`, over the interconnect.
    Remote(u8),
    /// The parallel filesystem.
    Pfs,
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Location::Staging => write!(f, "staging"),
            Location::Local(j) => write!(f, "local[{j}]"),
            Location::Remote(j) => write!(f, "remote[{j}]"),
            Location::Pfs => write!(f, "PFS"),
        }
    }
}

/// One storage class `j` of a worker's hierarchy (Table 2: `d_j`,
/// `r_j(p)`, `w_j(p)`, `p_j`). Class 0 is the fastest *cache* class
/// (e.g. RAM); the staging buffer is described separately by
/// [`StagingSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct StorageClass {
    /// Human-readable name ("ram", "ssd", …).
    pub name: String,
    /// Capacity `d_j`, bytes.
    pub capacity: u64,
    /// Prefetcher threads `p_j` dedicated to this class.
    pub prefetch_threads: u32,
    /// Aggregate random-read throughput `r_j(p)`.
    pub read: ThroughputCurve,
    /// Aggregate random-write throughput `w_j(p)`.
    pub write: ThroughputCurve,
}

impl StorageClass {
    /// Per-thread read rate `r_j(p_j)/p_j` at the configured thread count.
    pub fn read_per_thread(&self) -> f64 {
        self.read
            .per_thread(f64::from(self.prefetch_threads.max(1)))
    }

    /// Per-thread write rate `w_j(p_j)/p_j` at the configured thread count.
    pub fn write_per_thread(&self) -> f64 {
        self.write
            .per_thread(f64::from(self.prefetch_threads.max(1)))
    }
}

/// The staging buffer (storage class 0 in the paper's numbering): the
/// small in-memory buffer shared with the training framework, always
/// served by at least one prefetch thread (`p_0 ≥ 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct StagingSpec {
    /// Capacity, bytes.
    pub capacity: u64,
    /// Prefetch threads `p_0` filling the buffer.
    pub threads: u32,
    /// Aggregate read throughput `r_0(p)` (trainer consumption side).
    pub read: ThroughputCurve,
    /// Aggregate write throughput `w_0(p)` (prefetcher fill side).
    pub write: ThroughputCurve,
}

impl StagingSpec {
    /// Per-thread write rate `w_0(p_0)/p_0` — the denominator of the
    /// model's `write_i` equation.
    pub fn write_per_thread(&self) -> f64 {
        self.write.per_thread(f64::from(self.threads.max(1)))
    }
}

/// A whole training system: one entry per Table 2 row.
///
/// One `SystemSpec` describes one *worker's* view (the paper assumes
/// homogeneous workers; heterogeneous clusters can use one spec each).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Descriptive name ("fig8-small-cluster", "lassen", …).
    pub name: String,
    /// Number of workers `N`.
    pub workers: usize,
    /// Compute throughput `c`, bytes/second of training-data consumption.
    pub compute: f64,
    /// Preprocessing rate `β`, bytes/second.
    pub preprocess: f64,
    /// Inter-worker network bandwidth `b_c`, bytes/second.
    pub interconnect: f64,
    /// PFS aggregate random-read throughput `t(γ)`.
    pub pfs_read: ThroughputCurve,
    /// The staging buffer.
    pub staging: StagingSpec,
    /// Local cache classes, fastest first.
    pub classes: Vec<StorageClass>,
}

impl SystemSpec {
    /// Validates internal consistency; called by the presets and the
    /// config parser.
    ///
    /// # Panics
    /// Panics on zero workers, non-positive rates, or `p_0 = 0`
    /// (the paper requires at least one staging prefetch thread).
    pub fn validate(&self) {
        assert!(self.workers > 0, "system needs at least one worker");
        assert!(
            self.compute > 0.0 && self.compute.is_finite(),
            "compute rate must be positive"
        );
        assert!(
            self.preprocess > 0.0 && self.preprocess.is_finite(),
            "preprocess rate must be positive"
        );
        assert!(
            self.interconnect > 0.0 && self.interconnect.is_finite(),
            "interconnect bandwidth must be positive"
        );
        assert!(self.staging.threads >= 1, "p_0 >= 1 (paper Sec. 4)");
    }

    /// Total local cache capacity `D = Σ d_j`, bytes (excludes staging).
    pub fn total_local_capacity(&self) -> u64 {
        self.classes.iter().map(|c| c.capacity).sum()
    }

    /// Capacities of the local classes, fastest first (for placement).
    pub fn class_capacities(&self) -> Vec<u64> {
        self.classes.iter().map(|c| c.capacity).collect()
    }

    /// Model `fetch` case 3: reading `size` bytes from local class `j`:
    /// `s / (r_j(p_j)/p_j)`.
    pub fn fetch_local(&self, class: u8, size: u64) -> f64 {
        size as f64 / self.classes[class as usize].read_per_thread()
    }

    /// Model `fetch` case 2: reading `size` bytes from a remote worker's
    /// class `j`: `s / min(b_c, r_j(p_j)/p_j)`.
    pub fn fetch_remote(&self, class: u8, size: u64) -> f64 {
        let per_thread = self.classes[class as usize].read_per_thread();
        size as f64 / self.interconnect.min(per_thread)
    }

    /// Model `fetch` case 1: reading `size` bytes from the PFS while
    /// `gamma` workers (including this one) read concurrently:
    /// `s / (t(γ)/γ)`.
    pub fn fetch_pfs(&self, size: u64, gamma: usize) -> f64 {
        let g = gamma.max(1) as f64;
        size as f64 / (self.pfs_read.at(g) / g)
    }

    /// Model `write_i`: preprocessing and storing `size` bytes into the
    /// staging buffer: `max(s/β, s/(w_0(p_0)/p_0))` (the two stages are
    /// pipelined, so the slower one dominates).
    pub fn write_time(&self, size: u64) -> f64 {
        let s = size as f64;
        (s / self.preprocess).max(s / self.staging.write_per_thread())
    }

    /// Fetch time for `size` bytes from `location` (`γ` only matters for
    /// PFS). `Staging` costs zero fetch.
    pub fn fetch_time(&self, location: Location, size: u64, gamma: usize) -> f64 {
        match location {
            Location::Staging => 0.0,
            Location::Local(j) => self.fetch_local(j, size),
            Location::Remote(j) => self.fetch_remote(j, size),
            Location::Pfs => self.fetch_pfs(size, gamma),
        }
    }

    /// Model `read_i = fetch_i + write_i` for a sample of `size` bytes
    /// from `location`.
    pub fn read_time(&self, location: Location, size: u64, gamma: usize) -> f64 {
        self.fetch_time(location, size, gamma) + self.write_time(size)
    }

    /// The fastest source among the candidates, by modelled fetch time —
    /// the runtime's `argmin fetch` (Fig. 5). Ties favour earlier
    /// candidates, so list locations fastest-first by convention.
    pub fn fastest_source(
        &self,
        candidates: &[Location],
        size: u64,
        gamma: usize,
    ) -> Option<Location> {
        candidates
            .iter()
            .copied()
            .map(|loc| (loc, self.fetch_time(loc, size, gamma)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("fetch times are finite"))
            .map(|(loc, _)| loc)
    }

    /// Convenience: compute throughput expressed in samples/second for a
    /// given mean sample size.
    pub fn compute_samples_per_sec(&self, mean_sample_bytes: f64) -> f64 {
        self.compute / mean_sample_bytes
    }
}

/// Builder helpers for tests and presets.
impl SystemSpec {
    /// Returns a copy with different compute and preprocess rates (both
    /// in MB/s, the paper's unit) — the per-experiment knobs.
    pub fn with_compute_mbps(mut self, compute_mbps: f64, preprocess_mbps: f64) -> Self {
        self.compute = compute_mbps * MB;
        self.preprocess = preprocess_mbps * MB;
        self.validate();
        self
    }

    /// Returns a copy with a different worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self.validate();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use nopfs_util::units::{GB, MB};

    fn sys() -> SystemSpec {
        presets::fig8_small_cluster()
    }

    #[test]
    fn fig8_preset_matches_paper_numbers() {
        let s = sys();
        assert_eq!(s.workers, 4);
        assert!((s.compute - 64.0 * MB).abs() < 1.0);
        assert!((s.preprocess - 200.0 * MB).abs() < 1.0);
        assert!((s.interconnect - 24_000.0 * MB).abs() < 1.0);
        assert_eq!(s.staging.capacity, 5_000_000_000);
        assert_eq!(s.staging.threads, 8);
        assert_eq!(s.classes.len(), 2);
        assert_eq!(s.classes[0].capacity as f64, 120.0 * GB);
        assert_eq!(s.classes[1].capacity as f64, 900.0 * GB);
        assert_eq!(s.classes[0].prefetch_threads, 4);
        assert_eq!(s.classes[1].prefetch_threads, 2);
        s.validate();
    }

    #[test]
    fn local_fetch_uses_per_thread_rate() {
        let s = sys();
        // RAM: r_1(4) = 85 GB/s aggregate => 21.25 GB/s per thread.
        let t = s.fetch_local(0, 1_000_000_000);
        assert!((t - 1.0 / 21.25).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn remote_fetch_capped_by_network() {
        let s = sys();
        // Remote RAM per-thread (21.25 GB/s) < b_c (24 GB/s): disk bound.
        let t_ram = s.fetch_remote(0, 1_000_000_000);
        assert!((t_ram - 1.0 / 21.25).abs() < 1e-6);
        // Remote SSD per-thread 2 GB/s: still disk bound; sanity only.
        let t_ssd = s.fetch_remote(1, 1_000_000_000);
        assert!((t_ssd - 0.5).abs() < 1e-6);
    }

    #[test]
    fn pfs_fetch_reflects_contention() {
        let s = sys();
        let size = 100 * 1_000_000u64; // 100 MB
                                       // 1 reader: 330 MB/s. 8 readers: 2870/8 = 358.75 MB/s per reader.
        let t1 = s.fetch_pfs(size, 1);
        let t8 = s.fetch_pfs(size, 8);
        assert!((t1 - 100.0 / 330.0).abs() < 1e-6);
        assert!((t8 - 100.0 / 358.75).abs() < 1e-6);
    }

    #[test]
    fn write_time_is_preprocess_bound() {
        let s = sys();
        // β = 200 MB/s, staging write per-thread is GB/s-scale: β wins.
        let t = s.write_time(200 * 1_000_000);
        assert!((t - 1.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn read_time_is_fetch_plus_write() {
        let s = sys();
        let size = 10 * 1_000_000u64;
        let r = s.read_time(Location::Pfs, size, 4);
        let expect = s.fetch_pfs(size, 4) + s.write_time(size);
        assert!((r - expect).abs() < 1e-12);
    }

    #[test]
    fn staging_hit_costs_no_fetch() {
        let s = sys();
        assert_eq!(s.fetch_time(Location::Staging, 1_000_000, 1), 0.0);
    }

    #[test]
    fn fastest_source_prefers_local_ram() {
        let s = sys();
        let got = s.fastest_source(
            &[Location::Local(0), Location::Remote(0), Location::Pfs],
            10_000_000,
            4,
        );
        assert_eq!(got, Some(Location::Local(0)));
    }

    #[test]
    fn fastest_source_prefers_remote_ram_over_local_ssd() {
        // The paper's counterintuitive observation: with a fast network,
        // remote RAM beats the local SSD.
        let s = sys();
        let got = s.fastest_source(&[Location::Local(1), Location::Remote(0)], 10_000_000, 4);
        assert_eq!(got, Some(Location::Remote(0)));
    }

    #[test]
    fn fastest_source_empty_is_none() {
        assert_eq!(sys().fastest_source(&[], 1, 1), None);
    }

    #[test]
    fn total_capacity_sums_classes() {
        let s = sys();
        assert_eq!(s.total_local_capacity() as f64, 1_020.0 * GB);
        assert_eq!(s.class_capacities().len(), 2);
    }

    #[test]
    fn builders_rescale() {
        let s = sys().with_compute_mbps(320.0, 1000.0).with_workers(8);
        assert!((s.compute - 320.0 * MB).abs() < 1.0);
        assert_eq!(s.workers, 8);
    }

    #[test]
    fn location_display() {
        assert_eq!(Location::Pfs.to_string(), "PFS");
        assert_eq!(Location::Local(0).to_string(), "local[0]");
        assert_eq!(Location::Remote(1).to_string(), "remote[1]");
        assert_eq!(Location::Staging.to_string(), "staging");
    }
}
