//! The NoPFS performance model (paper Sec. 4, Table 2).
//!
//! The model characterizes a training cluster by a handful of measurable
//! quantities — per-worker compute throughput `c`, preprocessing rate
//! `β`, interconnect bandwidth `b_c`, the PFS's reader-dependent
//! aggregate throughput `t(γ)`, and per-storage-class capacity `d_j` and
//! aggregate read/write throughput `r_j(p)`/`w_j(p)` — and from them
//! derives the time for every way a sample can reach the staging buffer.
//! NoPFS uses these times at runtime to pick fetch sources; the
//! simulator (the `nopfs-simulator` crate) uses them to predict
//! end-to-end behaviour of whole I/O policies.
//!
//! Modules:
//! - [`curve`] — throughput as a function of thread/client count, with
//!   linear interpolation between measured points and least-squares
//!   extrapolation beyond them (the paper's "inferred using linear
//!   regression").
//! - [`system`] — Table 2 as types: storage classes, staging buffer,
//!   whole-system specs, fetch-source time queries.
//! - [`equations`] — the model equations: `write_i`, the three `fetch`
//!   cases, `read_i`, `avail_i`, and the `t_{i,f}` consumption
//!   recurrence with stall accounting.
//! - [`presets`] — system configurations used in the paper: the Fig. 8
//!   small-cluster simulation setup (Lassen-derived benchmarks), and
//!   Piz-Daint- and Lassen-like hierarchies from Fig. 1.
//! - [`config`] — the "system-wide configuration file" of Sec. 5.2.2: a
//!   small INI-style format describing a [`system::SystemSpec`].

pub mod config;
pub mod curve;
pub mod equations;
pub mod presets;
pub mod system;

pub use curve::ThroughputCurve;
pub use equations::{consume_timeline, ConsumeTimeline};
pub use system::{Location, StagingSpec, StorageClass, SystemSpec};
