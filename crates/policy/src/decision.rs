//! Harness-independent decision rules.
//!
//! [`select_source`] is *the* NoPFS source-selection code path: both
//! the threaded runtime (`nopfs_core::worker`'s staging fetches) and
//! the discrete-event simulator's NoPFS policy call this one function,
//! so the paper's Fig. 5 "argmin fetch" can never diverge between
//! harnesses. Each harness only differs in how it discovers the
//! *candidates* (live metadata + progress heuristic vs. modelled ready
//! times); what is done with them is shared.

use nopfs_perfmodel::{Location, SystemSpec};

/// NoPFS source selection over an **ordered tier list** (paper Fig. 5,
/// generalized): given every tier believed to hold the sample — local
/// classes, remote holders' classes, the PFS origin — pick the cheapest
/// by modelled fetch time at the observed PFS contention `gamma`.
///
/// Candidates must be ordered fastest-first (the hierarchy's tier
/// order); ties favour the earlier candidate, so a tie between a local
/// tier and the origin resolves toward the faster tier. The origin
/// ([`Location::Pfs`]) always holds everything, so callers append it as
/// the final candidate.
///
/// # Panics
/// Panics on an empty candidate list (no origin = nothing to fall back
/// to — a broken tier stack, not a policy decision).
pub fn select_source_tiered(
    sys: &SystemSpec,
    candidates: &[Location],
    size: u64,
    gamma: usize,
) -> Location {
    sys.fastest_source(candidates, size, gamma)
        .expect("tier candidate list must include the origin")
}

/// Per-candidate fetch-cost estimates (model seconds), in candidate
/// order — the numbers [`select_source_tiered`] takes the argmin of,
/// exposed for reporting and the simulator's cost model.
pub fn tier_costs(
    sys: &SystemSpec,
    candidates: &[Location],
    size: u64,
    gamma: usize,
) -> Vec<(Location, f64)> {
    candidates
        .iter()
        .map(|&loc| (loc, sys.fetch_time(loc, size, gamma)))
        .collect()
}

/// The two-candidate convenience wrapper over
/// [`select_source_tiered`]: the fastest *local* tier holding the
/// sample (if cached) and the fastest remote holder's tier (if any
/// peer is believed to hold it), with the PFS origin appended.
pub fn select_source(
    sys: &SystemSpec,
    local: Option<u8>,
    remote: Option<u8>,
    size: u64,
    gamma: usize,
) -> Location {
    let mut candidates: Vec<Location> = Vec::with_capacity(3);
    if let Some(c) = local {
        candidates.push(Location::Local(c));
    }
    if let Some(c) = remote {
        candidates.push(Location::Remote(c));
    }
    candidates.push(Location::Pfs);
    select_source_tiered(sys, &candidates, size, gamma)
}

/// Graceful degradation under an unhealthy origin: like
/// [`select_source`], but when `origin_available` is false (an open
/// circuit breaker is failing origin reads fast) the origin is dropped
/// from the candidate list and the fetch steers to peers or local
/// tiers instead of stalling the step loop. With no alternative
/// candidate the origin is still returned — the caller must then wait
/// out the breaker (there is nowhere else the bytes can come from).
pub fn select_source_degraded(
    sys: &SystemSpec,
    local: Option<u8>,
    remote: Option<u8>,
    size: u64,
    gamma: usize,
    origin_available: bool,
) -> Location {
    let mut candidates: Vec<Location> = Vec::with_capacity(3);
    if let Some(c) = local {
        candidates.push(Location::Local(c));
    }
    if let Some(c) = remote {
        candidates.push(Location::Remote(c));
    }
    if origin_available || candidates.is_empty() {
        candidates.push(Location::Pfs);
    }
    select_source_tiered(sys, &candidates, size, gamma)
}

/// Per-worker PFS share (bytes/s) during bulk staging phases: all `N`
/// workers stream concurrently, so each gets `t(N)/N`. Used to price
/// prestaging phases identically in every harness.
pub fn staging_share(sys: &SystemSpec) -> f64 {
    let n = sys.workers as f64;
    sys.pfs_read.at(n) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::fig8_small_cluster;

    #[test]
    fn prefers_local_ram_when_cached() {
        let sys = fig8_small_cluster();
        let got = select_source(&sys, Some(0), Some(0), 10_000_000, 4);
        assert_eq!(got, Location::Local(0));
    }

    #[test]
    fn prefers_remote_ram_over_local_ssd() {
        // The paper's counterintuitive observation: with a fast network,
        // a peer's RAM beats the local SSD.
        let sys = fig8_small_cluster();
        let got = select_source(&sys, Some(1), Some(0), 10_000_000, 4);
        assert_eq!(got, Location::Remote(0));
    }

    #[test]
    fn falls_back_to_pfs_without_candidates() {
        let sys = fig8_small_cluster();
        assert_eq!(select_source(&sys, None, None, 1_000, 1), Location::Pfs);
    }

    #[test]
    fn is_argmin_of_modelled_fetch_times() {
        // The selection must equal a brute-force argmin over the same
        // candidate set — the contract both harnesses rely on.
        let sys = fig8_small_cluster();
        for local in [None, Some(0u8), Some(1u8)] {
            for remote in [None, Some(0u8), Some(1u8)] {
                for size in [1_000u64, 1_000_000, 100_000_000] {
                    for gamma in [1usize, 4, 32] {
                        let got = select_source(&sys, local, remote, size, gamma);
                        let mut best = (Location::Pfs, sys.fetch_pfs(size, gamma));
                        if let Some(c) = remote {
                            let t = sys.fetch_remote(c, size);
                            if t <= best.1 {
                                best = (Location::Remote(c), t);
                            }
                        }
                        if let Some(c) = local {
                            let t = sys.fetch_local(c, size);
                            if t <= best.1 {
                                best = (Location::Local(c), t);
                            }
                        }
                        assert_eq!(
                            got, best.0,
                            "local={local:?} remote={remote:?} {size}B γ={gamma}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tiered_selection_equals_wrapped_selection() {
        // The generalized entry point and the {local, remote, PFS}
        // wrapper must agree wherever both apply.
        let sys = fig8_small_cluster();
        for local in [None, Some(0u8), Some(1u8)] {
            for remote in [None, Some(0u8), Some(1u8)] {
                for size in [1_000u64, 10_000_000] {
                    for gamma in [1usize, 8] {
                        let mut cands = Vec::new();
                        if let Some(c) = local {
                            cands.push(Location::Local(c));
                        }
                        if let Some(c) = remote {
                            cands.push(Location::Remote(c));
                        }
                        cands.push(Location::Pfs);
                        assert_eq!(
                            select_source_tiered(&sys, &cands, size, gamma),
                            select_source(&sys, local, remote, size, gamma),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tier_costs_match_the_argmin() {
        let sys = fig8_small_cluster();
        let cands = [
            Location::Local(0),
            Location::Local(1),
            Location::Remote(0),
            Location::Pfs,
        ];
        let costs = tier_costs(&sys, &cands, 5_000_000, 4);
        assert_eq!(costs.len(), 4);
        let best = costs
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, select_source_tiered(&sys, &cands, 5_000_000, 4));
        // Costs are the model's fetch times, in candidate order.
        for (loc, t) in costs {
            assert!((t - sys.fetch_time(loc, 5_000_000, 4)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "origin")]
    fn empty_candidate_list_is_rejected() {
        select_source_tiered(&fig8_small_cluster(), &[], 1, 1);
    }

    #[test]
    fn degraded_selection_steers_around_an_unavailable_origin() {
        let sys = fig8_small_cluster();
        // Healthy origin: identical to the plain selection.
        for local in [None, Some(0u8)] {
            for remote in [None, Some(0u8)] {
                assert_eq!(
                    select_source_degraded(&sys, local, remote, 1_000, 4, true),
                    select_source(&sys, local, remote, 1_000, 4),
                );
            }
        }
        // Unavailable origin with alternatives: the origin never wins,
        // even for a huge sample at heavy contention where it would.
        let got = select_source_degraded(&sys, Some(1), None, 100_000_000, 64, false);
        assert_eq!(got, Location::Local(1));
        let got = select_source_degraded(&sys, None, Some(1), 100_000_000, 64, false);
        assert_eq!(got, Location::Remote(1));
        // Unavailable origin, no alternatives: nowhere else to go.
        assert_eq!(
            select_source_degraded(&sys, None, None, 1_000, 4, false),
            Location::Pfs
        );
    }

    #[test]
    fn staging_share_splits_aggregate_by_workers() {
        let sys = fig8_small_cluster();
        let share = staging_share(&sys);
        assert!((share - sys.pfs_read.at(4.0) / 4.0).abs() < 1e-9);
    }
}
