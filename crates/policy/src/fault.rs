//! Fault plans: declarative schedules of crashes, membership churn,
//! stragglers, and transient read errors, shared by every harness.
//!
//! A [`FaultPlan`] is the single vocabulary the threaded runtime, the
//! discrete-event simulator, and the multi-tenant cluster all inject
//! from, so the cross-harness agreement tests can subject both
//! executions to *the same* disturbance and compare streams. The plan
//! is purely declarative — each harness realizes the events with its
//! own mechanisms (real thread teardown and warm-cache handoff in the
//! runtime, modelled recovery penalties in the simulator, per-tenant
//! PFS fault injection in the cluster).
//!
//! The replay-exactness this module's consumers prove rests on one
//! property of the sampler: the epoch seed mixes only `(seed, epoch)` —
//! never the worker count — so the global consumption order of an epoch
//! is one fixed permutation for *any* membership, merely dealt
//! round-robin to however many ranks exist. Crashes and stragglers
//! never change delivered content at all; joins and leaves only change
//! how the same global order is split. [`FaultPlan::validate`] enforces
//! the one precondition (`drop_last` must not let the global batch
//! change the epoch length), and [`elastic_epoch_streams`] /
//! [`elastic_global_stream`] are the canonical expected results every
//! harness is compared against.

use crate::core::{build_core, transformed_streams, PolicyCore};
use crate::id::PolicyId;
use crate::Unsupported;
// Re-exported so harnesses that consume fault plans can build the spec
// `FaultPlan::validate` wants without a clairvoyance dependency.
pub use nopfs_clairvoyance::sampler::ShuffleSpec;
use nopfs_clairvoyance::SampleId;
use nopfs_perfmodel::SystemSpec;

/// Transient read-error injection beneath the tier stack: parameters
/// for a `nopfs_storage::FaultySource` wrapped around the PFS origin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadErrors {
    /// Probability a fresh read starts a failure burst.
    pub rate: f64,
    /// Maximum consecutive failures per burst; keep below the retry
    /// budget so reads remain transient by construction.
    pub max_burst: u32,
    /// Seed of the failure pattern.
    pub seed: u64,
}

/// One scheduled brownout of the cloud origin: a window of degraded
/// service, in model-seconds from the start of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Brownout {
    /// Window start, model seconds.
    pub start: f64,
    /// Window length, model seconds.
    pub duration: f64,
    /// Latency multiplier (and throughput divisor) inside the window
    /// (≥ 1).
    pub latency_factor: f64,
    /// Additional probability that a request inside the window is
    /// throttled.
    pub throttle_rate: f64,
}

/// Cloud-origin disturbances: the object-store failure vocabulary
/// (tail-latency spikes, throttling, brownout windows), declared once
/// and realized by each harness — the threaded runtime builds a
/// disturbed `nopfs_storage::ObjectStoreBackend` beneath a resilient
/// origin chain, the simulator prices the same windows analytically.
///
/// Like [`ReadErrors`], the disturbances are *bounded by construction*:
/// throttle bursts never exceed `throttle_burst` consecutive failures
/// per sample, so a retry budget above the bound (plus breaker settings
/// that out-wait the longest brownout) keeps every read eventually
/// successful and the global sample stream bit-identical to the
/// fault-free run.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudFaults {
    /// Probability a request draws a tail-latency spike.
    pub spike_rate: f64,
    /// Latency multiplier of a spiked request (≥ 1).
    pub spike_factor: f64,
    /// Baseline probability a fresh request opens a throttle burst.
    pub throttle_rate: f64,
    /// Maximum consecutive throttle responses per sample (≥ 1); keep
    /// below the retry budget.
    pub throttle_burst: u32,
    /// Server `retry_after` hint on throttles, model seconds.
    pub retry_after: f64,
    /// Scheduled brownout windows.
    pub brownouts: Vec<Brownout>,
    /// Seed of the spike/throttle pattern.
    pub seed: u64,
}

impl CloudFaults {
    /// A quiet cloud origin: no spikes, throttles, or brownouts.
    pub fn none(seed: u64) -> Self {
        Self {
            spike_rate: 0.0,
            spike_factor: 1.0,
            throttle_rate: 0.0,
            throttle_burst: 1,
            retry_after: 0.0,
            brownouts: Vec::new(),
            seed,
        }
    }

    /// Adds a brownout window (builder style).
    #[must_use]
    pub fn brownout(
        mut self,
        start: f64,
        duration: f64,
        latency_factor: f64,
        throttle_rate: f64,
    ) -> Self {
        self.brownouts.push(Brownout {
            start,
            duration,
            latency_factor,
            throttle_rate,
        });
        self
    }

    /// Latency factor and extra throttle probability at model time
    /// `now` (the strongest active brownout wins).
    pub fn brownout_at(&self, now: f64) -> (f64, f64) {
        let mut factor = 1.0f64;
        let mut throttle = 0.0f64;
        for w in &self.brownouts {
            if now >= w.start && now < w.start + w.duration {
                factor = factor.max(w.latency_factor);
                throttle = throttle.max(w.throttle_rate);
            }
        }
        (factor, throttle)
    }

    /// Checks rates, factors, and windows.
    ///
    /// # Errors
    /// [`Unsupported`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), Unsupported> {
        let rate = |name: &str, r: f64| {
            if (0.0..1.0).contains(&r) {
                Ok(())
            } else {
                Err(Unsupported(format!("cloud {name} {r} outside [0, 1)")))
            }
        };
        rate("spike_rate", self.spike_rate)?;
        rate("throttle_rate", self.throttle_rate)?;
        if self.spike_factor < 1.0 {
            return Err(Unsupported(format!(
                "cloud spike_factor {} below 1",
                self.spike_factor
            )));
        }
        if self.throttle_burst < 1 {
            return Err(Unsupported("cloud throttle_burst must be ≥ 1".into()));
        }
        if self.retry_after < 0.0 {
            return Err(Unsupported(format!(
                "cloud retry_after {} negative",
                self.retry_after
            )));
        }
        for (i, w) in self.brownouts.iter().enumerate() {
            if w.start < 0.0 || w.duration < 0.0 {
                return Err(Unsupported(format!(
                    "brownout {i} has a negative start or duration"
                )));
            }
            if w.latency_factor < 1.0 {
                return Err(Unsupported(format!("brownout {i} latency_factor below 1")));
            }
            rate(&format!("brownout {i} throttle_rate"), w.throttle_rate)?;
        }
        Ok(())
    }
}

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// `rank` crashes after consuming `step` global batches of `epoch`
    /// and restarts with a cold cache. The job re-synchronizes at a
    /// recovery barrier: staged-but-unconsumed samples are lost and
    /// replayed, survivors keep their warm caches.
    Crash {
        /// Epoch of the crash.
        epoch: u64,
        /// Global batches consumed before the crash.
        step: u64,
        /// The crashing rank.
        rank: usize,
    },
    /// One worker joins before `epoch` begins (membership grows by
    /// one; ranks stay dense, the newcomer takes the highest).
    Join {
        /// First epoch the newcomer participates in.
        epoch: u64,
    },
    /// The highest rank leaves before `epoch` begins (membership
    /// shrinks by one).
    Leave {
        /// First epoch without the departed rank.
        epoch: u64,
    },
    /// `rank`'s compute slows by `factor` (≥ 1) from `epoch` onward —
    /// a straggler. Changes timing only, never delivered content.
    Straggle {
        /// First slowed epoch.
        epoch: u64,
        /// The straggling rank.
        rank: usize,
        /// Compute-time multiplier (≥ 1).
        factor: f64,
    },
}

/// A declarative fault schedule for one job.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Scheduled events, in no particular order.
    pub events: Vec<FaultEvent>,
    /// Transient read errors injected beneath the tier stack for the
    /// whole run, if any.
    pub read_errors: Option<ReadErrors>,
    /// Cloud-origin disturbances (spikes, throttles, brownouts), if the
    /// run's origin is an object store.
    pub cloud: Option<CloudFaults>,
}

impl FaultPlan {
    /// The empty plan: an undisturbed run.
    pub fn fault_free() -> Self {
        Self::default()
    }

    /// Adds a crash-and-restart (builder style).
    #[must_use]
    pub fn crash(mut self, epoch: u64, step: u64, rank: usize) -> Self {
        self.events.push(FaultEvent::Crash { epoch, step, rank });
        self
    }

    /// Adds a join before `epoch` (builder style).
    #[must_use]
    pub fn join(mut self, epoch: u64) -> Self {
        self.events.push(FaultEvent::Join { epoch });
        self
    }

    /// Adds a leave before `epoch` (builder style).
    #[must_use]
    pub fn leave(mut self, epoch: u64) -> Self {
        self.events.push(FaultEvent::Leave { epoch });
        self
    }

    /// Adds a straggler (builder style).
    #[must_use]
    pub fn straggle(mut self, epoch: u64, rank: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "a straggler is slower, not faster");
        self.events.push(FaultEvent::Straggle {
            epoch,
            rank,
            factor,
        });
        self
    }

    /// Sets transient read-error injection (builder style).
    #[must_use]
    pub fn with_read_errors(mut self, errors: ReadErrors) -> Self {
        self.read_errors = Some(errors);
        self
    }

    /// Sets cloud-origin disturbances (builder style).
    #[must_use]
    pub fn with_cloud(mut self, cloud: CloudFaults) -> Self {
        self.cloud = Some(cloud);
        self
    }

    /// Whether the plan contains at least one crash-and-restart.
    pub fn has_crash(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::Crash { .. }))
    }

    /// Per-epoch worker counts for a run of `epochs` epochs starting at
    /// `initial` workers: joins and leaves apply before their epoch and
    /// persist. Membership never drops below one.
    pub fn memberships(&self, initial: usize, epochs: u64) -> Vec<usize> {
        let mut n = initial;
        (0..epochs)
            .map(|e| {
                for ev in &self.events {
                    match *ev {
                        FaultEvent::Join { epoch } if epoch == e => n += 1,
                        FaultEvent::Leave { epoch } if epoch == e && n > 1 => n -= 1,
                        _ => {}
                    }
                }
                n
            })
            .collect()
    }

    /// Crashes scheduled in `epoch`, as `(step, rank)` sorted by step.
    pub fn crashes_in(&self, epoch: u64) -> Vec<(u64, usize)> {
        let mut out: Vec<(u64, usize)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Crash {
                    epoch: ce,
                    step,
                    rank,
                } if ce == epoch => Some((step, rank)),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// The compute-slowdown factor of `rank` during `epoch` (1.0 when
    /// not straggling; concurrent straggles multiply).
    pub fn straggle_factor(&self, epoch: u64, rank: usize) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Straggle {
                    epoch: se,
                    rank: sr,
                    factor,
                } if se <= epoch && sr == rank => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Checks the plan against a run shape: every membership the plan
    /// produces must keep the epoch length unchanged (the replay-exact
    /// precondition — with `drop_last` the truncation depends on the
    /// global batch `N·b`), crash ranks must exist in their epoch's
    /// membership, and crash steps must fall inside the epoch.
    ///
    /// # Errors
    /// [`Unsupported`] with the violated condition.
    pub fn validate(&self, spec: &ShuffleSpec, epochs: u64) -> Result<(), Unsupported> {
        if let Some(cloud) = &self.cloud {
            cloud.validate()?;
        }
        let memberships = self.memberships(spec.num_workers, epochs);
        let spe = spec.samples_per_epoch();
        for (e, &n) in memberships.iter().enumerate() {
            let spec_e = ShuffleSpec::new(
                spec.seed,
                spec.num_samples,
                n,
                spec.batch_size,
                spec.drop_last,
            );
            if spec_e.samples_per_epoch() != spe {
                return Err(Unsupported(format!(
                    "membership {n} at epoch {e} changes the epoch length \
                     ({} vs {spe} samples) under drop_last; elastic runs \
                     need an unchanged global order",
                    spec_e.samples_per_epoch()
                )));
            }
            let steps = spe.div_ceil((n * spec.batch_size) as u64);
            for (step, rank) in self.crashes_in(e as u64) {
                if rank >= n {
                    return Err(Unsupported(format!(
                        "crash rank {rank} outside membership {n} at epoch {e}"
                    )));
                }
                if step >= steps {
                    return Err(Unsupported(format!(
                        "crash step {step} beyond the {steps} steps of epoch {e}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The spec for the same job re-split across `new_workers` ranks.
pub fn respec(spec: &ShuffleSpec, new_workers: usize) -> ShuffleSpec {
    ShuffleSpec::new(
        spec.seed,
        spec.num_samples,
        new_workers,
        spec.batch_size,
        spec.drop_last,
    )
}

/// Rebuilds a policy's decision core for a changed membership: the
/// replan entry point every one of the ten [`PolicyId`]s flows through
/// (`NoPfs`/`Perfect` return `None` as always — their replan lives in
/// the clairvoyance artifacts, `SetupArtifacts::replan`). The system
/// spec's worker count is adjusted to match so per-worker capacity math
/// sees the surviving membership.
///
/// # Errors
/// [`Unsupported`] when the policy cannot run the new membership (e.g.
/// the LBANN store no longer fits in the survivors' aggregate memory —
/// a job can lose feasibility by losing workers).
pub fn replan_core(
    policy: PolicyId,
    sys: &SystemSpec,
    sizes: &[u64],
    spec: &ShuffleSpec,
    new_workers: usize,
) -> Result<Option<Box<dyn PolicyCore>>, Unsupported> {
    let mut sys = sys.clone();
    sys.workers = new_workers;
    build_core(policy, &sys, sizes, &respec(spec, new_workers))
}

/// The canonical per-epoch delivered streams of an elastic run: for
/// each epoch, that epoch's membership and each rank's delivered
/// sequence (the policy's transformed sequence for that membership).
/// Every harness's elastic execution is compared against this.
///
/// # Errors
/// [`Unsupported`] if the plan fails [`FaultPlan::validate`] or the
/// policy refuses some membership.
#[allow(clippy::type_complexity)]
pub fn elastic_epoch_streams(
    policy: PolicyId,
    sys: &SystemSpec,
    sizes: &[u64],
    spec: &ShuffleSpec,
    epochs: u64,
    plan: &FaultPlan,
) -> Result<Vec<(usize, Vec<Vec<SampleId>>)>, Unsupported> {
    plan.validate(spec, epochs)?;
    let memberships = plan.memberships(spec.num_workers, epochs);
    let mut out = Vec::with_capacity(epochs as usize);
    for (e, &n) in memberships.iter().enumerate() {
        let spec_e = respec(spec, n);
        let core = replan_core(policy, sys, sizes, spec, n)?;
        // One-epoch window of the policy's transformed streams at this
        // membership: epoch `e` of the run is epoch `e` of the spec —
        // global epoch numbers, so the permutation matches the
        // undisturbed run's.
        let full = transformed_streams(core.as_deref(), &spec_e, e as u64 + 1);
        let epoch_streams: Vec<Vec<SampleId>> = (0..n)
            .map(|w| {
                let len = spec_e.worker_epoch_len(w) as usize;
                full[w][full[w].len() - len..].to_vec()
            })
            .collect();
        out.push((n, epoch_streams));
    }
    Ok(out)
}

/// The canonical *global* delivered stream of an elastic run: each
/// epoch's per-rank sequences re-interleaved round-robin (position
/// `pos` belongs to rank `pos % n`). For identity-transform policies
/// this is membership-invariant — the headline replay-exactness
/// guarantee.
///
/// # Errors
/// As [`elastic_epoch_streams`].
pub fn elastic_global_stream(
    policy: PolicyId,
    sys: &SystemSpec,
    sizes: &[u64],
    spec: &ShuffleSpec,
    epochs: u64,
    plan: &FaultPlan,
) -> Result<Vec<SampleId>, Unsupported> {
    let per_epoch = elastic_epoch_streams(policy, sys, sizes, spec, epochs, plan)?;
    let mut global = Vec::with_capacity((spec.samples_per_epoch() * epochs) as usize);
    for (n, streams) in &per_epoch {
        for pos in 0..spec.samples_per_epoch() as usize {
            global.push(streams[pos % n][pos / n]);
        }
    }
    Ok(global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::fig8_small_cluster;

    fn spec(n: usize) -> ShuffleSpec {
        ShuffleSpec::new(0xFA11, 60, n, 4, false)
    }

    fn sys(n: usize) -> SystemSpec {
        let mut s = fig8_small_cluster();
        s.workers = n;
        s
    }

    #[test]
    fn memberships_apply_churn_before_their_epoch() {
        let plan = FaultPlan::fault_free().leave(1).join(3).join(3);
        assert_eq!(plan.memberships(4, 5), vec![4, 3, 3, 5, 5]);
        // Membership never drops below one.
        let drain = FaultPlan::fault_free().leave(1).leave(2).leave(3);
        assert_eq!(drain.memberships(2, 4), vec![2, 1, 1, 1]);
    }

    #[test]
    fn crashes_and_stragglers_are_queryable() {
        let plan = FaultPlan::fault_free()
            .crash(1, 3, 0)
            .crash(1, 1, 2)
            .straggle(2, 1, 3.0)
            .straggle(3, 1, 2.0);
        assert_eq!(plan.crashes_in(1), vec![(1, 2), (3, 0)]);
        assert!(plan.crashes_in(0).is_empty());
        assert!(plan.has_crash());
        assert_eq!(plan.straggle_factor(1, 1), 1.0);
        assert_eq!(plan.straggle_factor(2, 1), 3.0);
        assert_eq!(plan.straggle_factor(3, 1), 6.0); // compounds
        assert_eq!(plan.straggle_factor(3, 0), 1.0);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let sp = spec(4);
        // Fine: churn without drop_last.
        FaultPlan::fault_free()
            .leave(1)
            .join(2)
            .validate(&sp, 3)
            .unwrap();
        // Crash rank outside membership after a leave.
        let err = FaultPlan::fault_free()
            .leave(1)
            .crash(1, 0, 3)
            .validate(&sp, 2)
            .unwrap_err();
        assert!(err.0.contains("outside membership"), "{err}");
        // Crash step beyond the epoch.
        let err = FaultPlan::fault_free()
            .crash(0, 99, 0)
            .validate(&sp, 1)
            .unwrap_err();
        assert!(err.0.contains("beyond"), "{err}");
        // drop_last + churn that changes the epoch length.
        let dl = ShuffleSpec::new(9, 103, 4, 8, true);
        let err = FaultPlan::fault_free()
            .join(1)
            .validate(&dl, 2)
            .unwrap_err();
        assert!(err.0.contains("epoch length"), "{err}");
    }

    #[test]
    fn cloud_faults_validate_rates_windows_and_bursts() {
        let sp = spec(4);
        // A full, sane cloud clause passes.
        FaultPlan::fault_free()
            .with_cloud(CloudFaults {
                spike_rate: 0.05,
                spike_factor: 8.0,
                throttle_rate: 0.1,
                throttle_burst: 2,
                retry_after: 0.002,
                ..CloudFaults::none(7)
            })
            .validate(&sp, 2)
            .unwrap();
        // Brownout accessors: the strongest active window wins.
        let c = CloudFaults::none(0)
            .brownout(1.0, 2.0, 4.0, 0.2)
            .brownout(2.0, 2.0, 8.0, 0.1);
        assert_eq!(c.brownout_at(0.5), (1.0, 0.0));
        assert_eq!(c.brownout_at(1.5), (4.0, 0.2));
        assert_eq!(c.brownout_at(2.5), (8.0, 0.2));
        assert_eq!(c.brownout_at(4.5), (1.0, 0.0));
        // Invalid clauses are rejected through FaultPlan::validate.
        let bad_rate = FaultPlan::fault_free().with_cloud(CloudFaults {
            spike_rate: 1.5,
            ..CloudFaults::none(0)
        });
        assert!(bad_rate.validate(&sp, 1).unwrap_err().0.contains("spike"));
        let bad_window =
            FaultPlan::fault_free().with_cloud(CloudFaults::none(0).brownout(-1.0, 1.0, 2.0, 0.0));
        assert!(bad_window
            .validate(&sp, 1)
            .unwrap_err()
            .0
            .contains("brownout"));
        let bad_factor =
            FaultPlan::fault_free().with_cloud(CloudFaults::none(0).brownout(0.0, 1.0, 0.5, 0.0));
        assert!(bad_factor
            .validate(&sp, 1)
            .unwrap_err()
            .0
            .contains("latency_factor"));
    }

    #[test]
    fn identity_policies_keep_the_global_stream_under_churn() {
        let sp = spec(4);
        let plan = FaultPlan::fault_free().leave(1).join(2).crash(0, 2, 1);
        for policy in [
            PolicyId::NoPfs,
            PolicyId::Naive,
            PolicyId::StagingBuffer,
            PolicyId::LbannDynamic,
        ] {
            let disturbed =
                elastic_global_stream(policy, &sys(4), &[1000; 60], &sp, 3, &plan).unwrap();
            let undisturbed = elastic_global_stream(
                policy,
                &sys(4),
                &[1000; 60],
                &sp,
                3,
                &FaultPlan::fault_free(),
            )
            .unwrap();
            assert_eq!(disturbed, undisturbed, "{policy}: global stream changed");
        }
    }

    #[test]
    fn epoch_streams_match_memberships() {
        let sp = spec(4);
        let plan = FaultPlan::fault_free().leave(1);
        let per_epoch =
            elastic_epoch_streams(PolicyId::Naive, &sys(4), &[1000; 60], &sp, 2, &plan).unwrap();
        assert_eq!(per_epoch[0].0, 4);
        assert_eq!(per_epoch[1].0, 3);
        assert_eq!(per_epoch[0].1.len(), 4);
        assert_eq!(per_epoch[1].1.len(), 3);
        // Epoch totals: every rank's share sums to samples/epoch.
        for (_, streams) in &per_epoch {
            let total: usize = streams.iter().map(Vec::len).sum();
            assert_eq!(total as u64, sp.samples_per_epoch());
        }
    }

    #[test]
    fn replan_can_lose_feasibility() {
        // LBANN preloading fits at 4 workers but not at 1: a job can
        // lose feasibility by losing workers, and the replan says so.
        let sp = spec(4);
        let mut s = sys(4);
        s.classes[0].capacity = 20 * 1_000; // 20 samples/worker, F=60
        assert!(replan_core(PolicyId::LbannPreloading, &s, &[1000; 60], &sp, 4).is_ok());
        let err = match replan_core(PolicyId::LbannPreloading, &s, &[1000; 60], &sp, 1) {
            Err(e) => e,
            Ok(_) => panic!("one worker cannot hold the data store"),
        };
        assert!(err.0.contains("data store"), "{err}");
    }
}
