//! The shared decision core: per-policy decision logic executed by
//! **both** the threaded runtime and the discrete-event simulator.
//!
//! Each baseline policy answers the same questions in either harness —
//! *where does this sample come from?* (ownership / sharding maps),
//! *which samples may this worker ever see?* (epoch transforms,
//! coverage), *what is prestaged?* — so those answers are computed
//! once, here, from the seed and the system description. The simulator
//! wraps a [`PolicyCore`] in its event-loop adapter; the runtime
//! drives real prefetch threads, caches, and a serving loop off the
//! identical object. Any future policy added here is automatically
//! visible to every harness.
//!
//! `NoPfs` and `Perfect` have no core: NoPFS's decisions are
//! *dynamic* (live cache metadata in the runtime, modelled ready times
//! in the simulator — both funneling into
//! [`crate::decision::select_source`]), and the lower bound is
//! definitionally harness-specific.

use crate::decision::staging_share;
use crate::id::PolicyId;
use crate::Unsupported;
use nopfs_clairvoyance::sampler::{EpochShuffle, ShuffleSpec};
use nopfs_clairvoyance::SampleId;
use nopfs_perfmodel::SystemSpec;
use nopfs_util::rng::{mix64, Xoshiro256pp};
use nopfs_util::units::format_bytes;

/// Sentinel: sample not assigned to any local storage class (mirrors
/// `nopfs_clairvoyance::placement::UNASSIGNED`).
const UNASSIGNED: u8 = u8::MAX;

/// Where one access is served from, as decided by the shared core.
///
/// Unlike `nopfs_perfmodel::Location`, a remote decision names the
/// *owner* so the runtime knows which peer to ask; the simulator only
/// prices the class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// This worker's own storage class.
    Local(u8),
    /// A peer's cache: who to ask and which class it sits in.
    Remote {
        /// Rank of the holding worker.
        owner: u16,
        /// The holder's storage class (for fetch-time pricing).
        class: u8,
    },
    /// The parallel filesystem.
    Pfs,
}

/// The decision logic of one baseline policy, shared by every harness.
///
/// All methods take `&self`: decisions are pure functions of the seed
/// and configuration (the clairvoyance property), so the runtime can
/// consult one core from many threads.
pub trait PolicyCore: Send + Sync {
    /// Whether reads overlap with compute through prefetch threads
    /// (false only for the synchronous Naive policy).
    fn overlapped(&self) -> bool {
        true
    }

    /// Samples worker `w` loads into its storage classes during the
    /// non-overlapped prestaging phase, as `(sample, class)` pairs in
    /// load order. Empty for policies that start training immediately.
    fn prestage_list(&self, _worker: usize) -> Vec<(SampleId, u8)> {
        Vec::new()
    }

    /// Bytes of the largest per-worker prestage load (0 = no prestage).
    fn max_prestage_bytes(&self) -> u64 {
        0
    }

    /// Modelled seconds of non-overlapped prestaging: the slowest
    /// worker's load at the bulk-staging PFS share.
    fn prestage_seconds(&self, sys: &SystemSpec) -> f64 {
        self.max_prestage_bytes() as f64 / staging_share(sys)
    }

    /// May reorder or replace the per-worker epoch sequences (the
    /// randomization compromise the paper criticizes sharding-style
    /// policies for). Must preserve each worker's sequence length.
    fn transform_epoch(
        &self,
        _epoch: u64,
        seqs: Vec<Vec<SampleId>>,
        _global: &EpochShuffle,
    ) -> Vec<Vec<SampleId>> {
        seqs
    }

    /// Picks the fetch source for one access of the (already
    /// transformed) epoch sequence.
    fn source(&self, worker: usize, sample: SampleId, epoch: u64) -> Source;

    /// The class a non-local fetch should be cached into afterwards
    /// (first-touch policies), or `None` to not cache.
    fn cache_class(&self, _worker: usize, _sample: SampleId, _epoch: u64) -> Option<u8> {
        None
    }

    /// Fraction of the dataset a worker can ever access.
    fn coverage(&self) -> f64 {
        1.0
    }

    /// Caveat note (the paper's "Does not access entire dataset").
    fn note(&self) -> Option<String> {
        None
    }
}

/// Builds the shared core for `policy`, or `None` for the two policies
/// whose decisions are harness-specific (`NoPfs`, `Perfect`).
///
/// # Errors
/// [`Unsupported`] when the policy cannot run the configuration (the
/// LBANN data store with a dataset exceeding aggregate worker memory).
pub fn build_core(
    policy: PolicyId,
    sys: &SystemSpec,
    sizes: &[u64],
    spec: &ShuffleSpec,
) -> Result<Option<Box<dyn PolicyCore>>, Unsupported> {
    Ok(match policy {
        PolicyId::Perfect | PolicyId::NoPfs => None,
        PolicyId::Naive => Some(Box::new(PfsOnlyCore { overlapped: false })),
        PolicyId::StagingBuffer => Some(Box::new(PfsOnlyCore { overlapped: true })),
        PolicyId::DeepIoOrdered => Some(Box::new(DeepIoCore::new(sys, sizes, true))),
        PolicyId::DeepIoOpportunistic => Some(Box::new(DeepIoCore::new(sys, sizes, false))),
        PolicyId::ParallelStaging => Some(Box::new(ShardingCore::new(sys, sizes, spec))),
        PolicyId::LbannDynamic => Some(Box::new(LbannCore::new(sys, sizes, spec, false)?)),
        PolicyId::LbannPreloading => Some(Box::new(LbannCore::new(sys, sizes, spec, true)?)),
        PolicyId::LocalityAware => Some(Box::new(LocalityCore::new(sys, sizes, spec))),
    })
}

/// Materializes each worker's full (transformed) access stream for a
/// run of `epochs` epochs: the concatenation of the per-epoch
/// sequences after the core's transform. With `core = None` this is
/// the standard untransformed stream.
///
/// Every harness that replays a policy's accesses derives them through
/// this one function, which is what makes the cross-harness agreement
/// tests exact.
pub fn transformed_streams(
    core: Option<&dyn PolicyCore>,
    spec: &ShuffleSpec,
    epochs: u64,
) -> Vec<Vec<SampleId>> {
    let n = spec.num_workers;
    let mut streams: Vec<Vec<SampleId>> = vec![Vec::new(); n];
    for e in 0..epochs {
        let shuffle = spec.epoch_shuffle(e);
        let mut seqs: Vec<Vec<SampleId>> = (0..n).map(|w| shuffle.worker_sequence(w)).collect();
        if let Some(core) = core {
            seqs = core.transform_epoch(e, seqs, &shuffle);
        }
        for (w, seq) in seqs.into_iter().enumerate() {
            streams[w].extend(seq);
        }
    }
    streams
}

/// Checks the LBANN data store's documented requirement: the dataset
/// must fit in aggregate worker memory (class 0 across all workers).
pub fn lbann_feasible(sys: &SystemSpec, total_bytes: u64) -> Result<(), Unsupported> {
    let ram = sys.classes.first().map_or(0, |c| c.capacity);
    let aggregate = ram.saturating_mul(sys.workers as u64);
    if total_bytes > aggregate {
        return Err(Unsupported(format!(
            "LBANN data store requires the dataset ({}) to fit in aggregate worker memory ({})",
            format_bytes(total_bytes as f64),
            format_bytes(aggregate as f64),
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Trivial PFS-bound policies
// ---------------------------------------------------------------------

/// Naive (synchronous) and StagingBuffer (PyTorch double-buffering /
/// `tf.data`): every fetch goes to the PFS; the only difference is
/// whether prefetch threads overlap it with compute.
struct PfsOnlyCore {
    overlapped: bool,
}

impl PolicyCore for PfsOnlyCore {
    fn overlapped(&self) -> bool {
        self.overlapped
    }

    fn source(&self, _w: usize, _k: SampleId, _epoch: u64) -> Source {
        Source::Pfs
    }
}

// ---------------------------------------------------------------------
// DeepIO
// ---------------------------------------------------------------------

/// DeepIO: a sharded in-memory (RAM-only) cache. Each worker holds the
/// round-robin shard `id ≡ rank (mod N)` up to its RAM capacity,
/// preloaded before training. Ordered mode preserves the requested
/// order, reading uncached samples from the PFS; opportunistic mode
/// substitutes cached samples for uncached ones, never touching the PFS
/// again but shrinking effective dataset coverage.
pub struct DeepIoCore {
    ordered: bool,
    /// Caching worker per sample, or -1.
    owner_of: Vec<i32>,
    /// Each worker's cached sample ids (shard + substitution pool).
    shards: Vec<Vec<SampleId>>,
    max_shard_bytes: u64,
    cached_samples: u64,
    num_samples: u64,
}

impl DeepIoCore {
    /// Computes the round-robin shard plan for `sys`'s RAM class.
    pub fn new(sys: &SystemSpec, sizes: &[u64], ordered: bool) -> Self {
        let n = sys.workers;
        let f = sizes.len();
        let ram_cap = sys.classes.first().map_or(0, |c| c.capacity);
        let mut owner_of = vec![-1i32; f];
        let mut shards: Vec<Vec<SampleId>> = vec![Vec::new(); n];
        let mut max_shard_bytes = 0u64;
        for (w, shard) in shards.iter_mut().enumerate() {
            let mut used = 0u64;
            let mut id = w;
            while id < f {
                let s = sizes[id];
                if used + s > ram_cap {
                    break;
                }
                used += s;
                owner_of[id] = w as i32;
                shard.push(id as SampleId);
                id += n;
            }
            max_shard_bytes = max_shard_bytes.max(used);
        }
        let cached_samples = owner_of.iter().filter(|&&o| o >= 0).count() as u64;
        Self {
            ordered,
            owner_of,
            shards,
            max_shard_bytes,
            cached_samples,
            num_samples: f as u64,
        }
    }

    /// The shard (cached sample ids) of worker `w`.
    pub fn shard(&self, w: usize) -> &[SampleId] {
        &self.shards[w]
    }

    /// Samples cached anywhere in the cluster.
    pub fn cached_samples(&self) -> u64 {
        self.cached_samples
    }
}

impl PolicyCore for DeepIoCore {
    fn prestage_list(&self, worker: usize) -> Vec<(SampleId, u8)> {
        self.shards[worker].iter().map(|&k| (k, 0)).collect()
    }

    fn max_prestage_bytes(&self) -> u64 {
        self.max_shard_bytes
    }

    fn transform_epoch(
        &self,
        epoch: u64,
        mut seqs: Vec<Vec<SampleId>>,
        _global: &EpochShuffle,
    ) -> Vec<Vec<SampleId>> {
        if self.ordered {
            return seqs;
        }
        // Opportunistic mode: swap uncached accesses for cached samples,
        // preferring the worker's own shard. The substitution cursor is
        // a pure function of (epoch, worker), so both harnesses derive
        // the identical replacement sequence.
        for (w, seq) in seqs.iter_mut().enumerate() {
            let mut cursor = epoch as usize;
            for slot in seq.iter_mut() {
                if self.owner_of[*slot as usize] >= 0 {
                    continue;
                }
                let shard = &self.shards[w];
                if !shard.is_empty() {
                    *slot = shard[cursor % shard.len()];
                    cursor = cursor.wrapping_add(1);
                } else if let Some(other) = self.shards.iter().find(|s| !s.is_empty()) {
                    *slot = other[cursor % other.len()];
                    cursor = cursor.wrapping_add(1);
                }
                // No cache anywhere: leave the access as-is (PFS).
            }
        }
        seqs
    }

    fn source(&self, w: usize, k: SampleId, _epoch: u64) -> Source {
        match self.owner_of[k as usize] {
            o if o == w as i32 => Source::Local(0),
            o if o >= 0 => Source::Remote {
                owner: o as u16,
                class: 0,
            },
            _ => Source::Pfs,
        }
    }

    fn coverage(&self) -> f64 {
        if self.ordered {
            1.0
        } else {
            self.cached_samples as f64 / self.num_samples as f64
        }
    }

    fn note(&self) -> Option<String> {
        if !self.ordered && self.cached_samples < self.num_samples {
            Some("Does not access entire dataset".to_string())
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// Parallel staging (data sharding)
// ---------------------------------------------------------------------

/// Data sharding with a prestaging phase. When the dataset fits in one
/// worker's storage (`S ≤ D`, the paper's "shards may share samples"),
/// every worker stages the whole dataset and randomization is preserved.
/// Otherwise each worker stages a disjoint round-robin shard capped at
/// its capacity and trains only on that shard — the access-order change
/// the paper flags.
pub struct ShardingCore {
    /// Every worker holds the full dataset.
    full_copy: bool,
    owner_of: Vec<i32>,
    /// Storage class per cached sample (fill order across classes).
    class_of: Vec<u8>,
    shards: Vec<Vec<SampleId>>,
    epoch_lens: Vec<u64>,
    max_shard_bytes: u64,
    total_bytes: u64,
    seed: u64,
}

impl ShardingCore {
    /// Computes the staging plan for `sys`'s class hierarchy.
    pub fn new(sys: &SystemSpec, sizes: &[u64], spec: &ShuffleSpec) -> Self {
        let n = sys.workers;
        let f = sizes.len();
        let caps = sys.class_capacities();
        let d: u64 = caps.iter().sum();
        let s_total: u64 = sizes.iter().sum();
        let epoch_lens: Vec<u64> = (0..n).map(|w| spec.worker_epoch_len(w)).collect();
        let full_copy = s_total <= d;

        let mut owner_of = vec![-1i32; f];
        let mut class_of = vec![UNASSIGNED; f];
        let mut shards: Vec<Vec<SampleId>> = vec![Vec::new(); n];
        let mut shard_bytes = vec![0u64; n];

        if full_copy {
            // Identical layout on every worker: fill classes in id order.
            let mut class = 0usize;
            let mut used = 0u64;
            for (id, slot) in class_of.iter_mut().enumerate() {
                let sz = sizes[id];
                while class < caps.len() && used + sz > caps[class] {
                    class += 1;
                    used = 0;
                }
                // `S <= D` guarantees everything fits across classes for
                // same-size-dominated datasets; any residual overflow
                // lands in the slowest class.
                let c = class.min(caps.len().saturating_sub(1));
                *slot = c as u8;
                used += sz;
            }
            for (w, sb) in shard_bytes.iter_mut().enumerate() {
                *sb = s_total;
                shards[w] = (0..f as SampleId).collect();
            }
        } else {
            for w in 0..n {
                let mut used_in_class = vec![0u64; caps.len()];
                let mut id = w;
                'fill: while id < f {
                    let sz = sizes[id];
                    for (j, cap) in caps.iter().enumerate() {
                        if used_in_class[j] + sz <= *cap {
                            used_in_class[j] += sz;
                            owner_of[id] = w as i32;
                            class_of[id] = j as u8;
                            shards[w].push(id as SampleId);
                            shard_bytes[w] += sz;
                            id += n;
                            continue 'fill;
                        }
                    }
                    break; // storage full
                }
            }
        }
        let max_shard_bytes = shard_bytes.iter().copied().max().unwrap_or(0);
        Self {
            full_copy,
            owner_of,
            class_of,
            shards,
            epoch_lens,
            max_shard_bytes,
            total_bytes: s_total,
            seed: spec.seed,
        }
    }

    /// Whether every worker stages the whole dataset.
    pub fn full_copy(&self) -> bool {
        self.full_copy
    }

    /// The staging class of sample `k`, or `None` when unstaged.
    pub fn class_of(&self, k: SampleId) -> Option<u8> {
        let c = self.class_of[k as usize];
        (c != UNASSIGNED).then_some(c)
    }

    /// The owning worker of sample `k` in sharded mode.
    pub fn owner_of(&self, k: SampleId) -> Option<usize> {
        let o = self.owner_of[k as usize];
        (o >= 0).then_some(o as usize)
    }
}

impl PolicyCore for ShardingCore {
    fn prestage_list(&self, worker: usize) -> Vec<(SampleId, u8)> {
        self.shards[worker]
            .iter()
            .map(|&k| (k, self.class_of[k as usize]))
            .collect()
    }

    fn max_prestage_bytes(&self) -> u64 {
        self.max_shard_bytes
    }

    fn transform_epoch(
        &self,
        epoch: u64,
        seqs: Vec<Vec<SampleId>>,
        _global: &EpochShuffle,
    ) -> Vec<Vec<SampleId>> {
        if self.full_copy {
            // Whole dataset everywhere: the standard fully-randomized
            // sequence is served entirely from local storage.
            return seqs;
        }
        // Shard-restricted: each worker draws its epoch from its own
        // shard (reshuffled per epoch; cycled if the shard is smaller
        // than the epoch length).
        (0..seqs.len())
            .map(|w| {
                let shard = &self.shards[w];
                let want = self.epoch_lens[w] as usize;
                if shard.is_empty() {
                    // No local storage at all: fall back to the standard
                    // sequence (every access will be a PFS read).
                    return seqs[w].clone();
                }
                let mut rng =
                    Xoshiro256pp::seed_from_u64(mix64(self.seed ^ 0x5A5A, epoch * 1024 + w as u64));
                let mut out = Vec::with_capacity(want);
                while out.len() < want {
                    let mut perm = shard.clone();
                    rng.shuffle(&mut perm);
                    let take = (want - out.len()).min(perm.len());
                    out.extend_from_slice(&perm[..take]);
                }
                out
            })
            .collect()
    }

    fn source(&self, w: usize, k: SampleId, _epoch: u64) -> Source {
        if self.full_copy {
            return Source::Local(self.class_of[k as usize]);
        }
        match self.owner_of[k as usize] {
            o if o == w as i32 => Source::Local(self.class_of[k as usize]),
            o if o >= 0 => Source::Remote {
                owner: o as u16,
                class: self.class_of[k as usize],
            },
            _ => Source::Pfs,
        }
    }

    fn coverage(&self) -> f64 {
        if self.full_copy {
            return 1.0;
        }
        // A worker only ever sees its own shard.
        self.max_shard_bytes as f64 / self.total_bytes as f64
    }

    fn note(&self) -> Option<String> {
        if self.full_copy {
            None
        } else {
            Some("Does not access entire dataset".to_string())
        }
    }
}

// ---------------------------------------------------------------------
// LBANN data store
// ---------------------------------------------------------------------

/// The LBANN data store: an in-memory, owner-served sample cache.
/// Dynamic mode populates it first-touch during epoch 0 (epoch 0 reads
/// the PFS); preloading mode pays an explicit prestaging phase instead.
/// Either way the store requires the dataset to fit in aggregate worker
/// memory — the dataset-scalability limitation of Table 1.
pub struct LbannCore {
    preloading: bool,
    /// Owner of each sample: its epoch-0 reader.
    owner_of: Vec<u16>,
    prestage_bytes: u64,
}

impl LbannCore {
    /// Computes the first-touch ownership plan.
    ///
    /// # Errors
    /// [`Unsupported`] when the dataset exceeds aggregate worker memory.
    pub fn new(
        sys: &SystemSpec,
        sizes: &[u64],
        spec: &ShuffleSpec,
        preloading: bool,
    ) -> Result<Self, Unsupported> {
        let n = sys.workers;
        let s_total: u64 = sizes.iter().sum();
        lbann_feasible(sys, s_total)?;
        // Epoch-0 first-touch ownership is clairvoyantly computable.
        let shuffle = spec.epoch_shuffle(0);
        let mut owner_of = vec![0u16; sizes.len()];
        let mut owned_bytes = vec![0u64; n];
        for (pos, &id) in shuffle.global_order().iter().enumerate() {
            let w = pos % n;
            owner_of[id as usize] = w as u16;
            owned_bytes[w] += sizes[id as usize];
        }
        // The slowest preloader defines the prestage phase: first-touch
        // shards are unequal for size-skewed datasets, so this is the
        // *largest* per-owner load, not the mean.
        let prestage_bytes = if preloading {
            owned_bytes.iter().copied().max().unwrap_or(0)
        } else {
            0
        };
        Ok(Self {
            preloading,
            owner_of,
            prestage_bytes,
        })
    }

    /// The first-touch owner of sample `k`.
    pub fn owner_of(&self, k: SampleId) -> usize {
        self.owner_of[k as usize] as usize
    }
}

impl PolicyCore for LbannCore {
    fn prestage_list(&self, worker: usize) -> Vec<(SampleId, u8)> {
        if !self.preloading {
            return Vec::new();
        }
        self.owner_of
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o as usize == worker)
            .map(|(k, _)| (k as SampleId, 0))
            .collect()
    }

    fn max_prestage_bytes(&self) -> u64 {
        self.prestage_bytes
    }

    fn source(&self, w: usize, k: SampleId, epoch: u64) -> Source {
        if !self.preloading && epoch == 0 {
            // Dynamic mode: epoch 0 populates the store from the PFS.
            return Source::Pfs;
        }
        let owner = self.owner_of[k as usize];
        if owner as usize == w {
            Source::Local(0)
        } else {
            Source::Remote { owner, class: 0 }
        }
    }

    fn cache_class(&self, w: usize, k: SampleId, epoch: u64) -> Option<u8> {
        // Dynamic first-touch: the epoch-0 reader keeps what it read.
        (!self.preloading && epoch == 0 && self.owner_of[k as usize] as usize == w).then_some(0)
    }
}

// ---------------------------------------------------------------------
// Locality-aware loading (Yang & Cong)
// ---------------------------------------------------------------------

/// Locality-aware loading: first-touch caching in epoch 0 (RAM, then
/// further classes), then per-iteration batch reassignment so cached
/// samples are consumed by the worker holding them. Preserves full
/// coverage (uncached samples still come from the PFS) but changes which
/// worker sees which sample — the "reorder batches" logic the paper
/// simulates.
pub struct LocalityCore {
    owner_of: Vec<i32>,
    class_of: Vec<u8>,
    workers: usize,
    batch: usize,
}

impl LocalityCore {
    /// Computes the clairvoyant first-touch placement plan.
    pub fn new(sys: &SystemSpec, sizes: &[u64], spec: &ShuffleSpec) -> Self {
        let n = sys.workers;
        let caps = sys.class_capacities();
        let shuffle = spec.epoch_shuffle(0);
        let f = sizes.len();
        let mut owner_of = vec![-1i32; f];
        let mut class_of = vec![UNASSIGNED; f];
        let mut used = vec![vec![0u64; caps.len()]; n];
        for (pos, &id) in shuffle.global_order().iter().enumerate() {
            let w = pos % n;
            let sz = sizes[id as usize];
            for (j, cap) in caps.iter().enumerate() {
                if used[w][j] + sz <= *cap {
                    used[w][j] += sz;
                    owner_of[id as usize] = w as i32;
                    class_of[id as usize] = j as u8;
                    break;
                }
            }
        }
        Self {
            owner_of,
            class_of,
            workers: n,
            batch: spec.batch_size,
        }
    }

    /// The caching owner of sample `k`, when it fit anywhere.
    pub fn owner_of(&self, k: SampleId) -> Option<usize> {
        let o = self.owner_of[k as usize];
        (o >= 0).then_some(o as usize)
    }
}

impl PolicyCore for LocalityCore {
    fn transform_epoch(
        &self,
        epoch: u64,
        seqs: Vec<Vec<SampleId>>,
        global: &EpochShuffle,
    ) -> Vec<Vec<SampleId>> {
        if epoch == 0 {
            return seqs;
        }
        // Reassign each global iteration window so cache owners consume
        // their own samples where quota allows.
        let n = self.workers;
        let order = global.global_order();
        let window = n * self.batch;
        let mut out: Vec<Vec<SampleId>> = vec![Vec::new(); n];
        for chunk in order.chunks(window) {
            let mut quota = vec![0usize; n];
            let base = chunk.len() / n;
            let extra = chunk.len() % n;
            for (w, q) in quota.iter_mut().enumerate() {
                *q = base + usize::from(w < extra);
            }
            let mut leftovers: Vec<SampleId> = Vec::new();
            for &id in chunk {
                match self.owner_of[id as usize] {
                    o if o >= 0 && quota[o as usize] > 0 => {
                        quota[o as usize] -= 1;
                        out[o as usize].push(id);
                    }
                    _ => leftovers.push(id),
                }
            }
            let mut w = 0usize;
            for id in leftovers {
                while quota[w] == 0 {
                    w = (w + 1) % n;
                }
                quota[w] -= 1;
                out[w].push(id);
            }
        }
        out
    }

    fn source(&self, w: usize, k: SampleId, epoch: u64) -> Source {
        if epoch == 0 {
            return Source::Pfs;
        }
        match self.owner_of[k as usize] {
            o if o == w as i32 => Source::Local(self.class_of[k as usize]),
            o if o >= 0 => Source::Remote {
                owner: o as u16,
                class: self.class_of[k as usize],
            },
            _ => Source::Pfs,
        }
    }

    fn cache_class(&self, w: usize, k: SampleId, epoch: u64) -> Option<u8> {
        // Epoch-0 first-touch fill into the clairvoyantly planned class.
        (epoch == 0 && self.owner_of[k as usize] == w as i32)
            .then(|| self.class_of[k as usize])
            .filter(|&c| c != UNASSIGNED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::fig8_small_cluster;

    fn tiny_system(sample_bytes: u64) -> SystemSpec {
        let mut sys = fig8_small_cluster();
        sys.classes[0].capacity = 50 * sample_bytes;
        sys.classes[1].capacity = 100 * sample_bytes;
        sys
    }

    fn tiny_spec(total_samples: u64) -> ShuffleSpec {
        ShuffleSpec::new(11, total_samples, 4, 4, false)
    }

    #[test]
    fn deep_io_shards_are_round_robin_and_capped() {
        let sys = tiny_system(1_000_000);
        let sizes = vec![1_000_000u64; 1000];
        let d = DeepIoCore::new(&sys, &sizes, true);
        // RAM holds 50 samples per worker.
        for w in 0..4 {
            assert_eq!(d.shard(w).len(), 50);
            assert!(d.shard(w).iter().all(|&id| id as usize % 4 == w));
        }
        assert_eq!(d.cached_samples(), 200);
        assert!(d.max_prestage_bytes() > 0);
        assert!(d.prestage_seconds(&sys) > 0.0);
    }

    #[test]
    fn deep_io_opportunistic_substitutes_uncached() {
        let sys = tiny_system(1_000_000);
        let sizes = vec![1_000_000u64; 1000];
        let d = DeepIoCore::new(&sys, &sizes, false);
        let spec = tiny_spec(1000);
        let shuffle = spec.epoch_shuffle(0);
        let seqs: Vec<Vec<SampleId>> = (0..4).map(|w| shuffle.worker_sequence(w)).collect();
        let out = d.transform_epoch(0, seqs, &shuffle);
        for (w, seq) in out.iter().enumerate() {
            assert_eq!(seq.len() as u64, spec.worker_epoch_len(w));
            for &k in seq {
                assert!(
                    !matches!(d.source(w, k, 0), Source::Pfs),
                    "uncached sample {k} survived"
                );
            }
        }
        assert!(d.coverage() < 1.0);
        assert!(d.note().is_some());
    }

    #[test]
    fn deep_io_substitution_is_deterministic() {
        let sys = tiny_system(1_000_000);
        let sizes = vec![1_000_000u64; 400];
        let d = DeepIoCore::new(&sys, &sizes, false);
        let spec = tiny_spec(400);
        let a = transformed_streams(Some(&d), &spec, 2);
        let b = transformed_streams(Some(&d), &spec, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_staging_full_copy_when_fits() {
        let sys = tiny_system(1_000_000);
        let sizes = vec![1_000_000u64; 100]; // S=100 MB < D=150 MB
        let p = ShardingCore::new(&sys, &sizes, &tiny_spec(100));
        assert!(p.full_copy());
        assert_eq!(p.coverage(), 1.0);
        // RAM then SSD fill order: first 50 in class 0, rest class 1.
        assert_eq!(p.class_of(0), Some(0));
        assert_eq!(p.class_of(99), Some(1));
        // Full copy prestages the whole dataset on every worker.
        assert_eq!(p.prestage_list(0).len(), 100);
    }

    #[test]
    fn parallel_staging_shards_when_too_big() {
        let sys = tiny_system(1_000_000);
        let sizes = vec![1_000_000u64; 1000]; // S=1000 > D=150
        let spec = tiny_spec(1000);
        let p = ShardingCore::new(&sys, &sizes, &spec);
        assert!(!p.full_copy());
        assert!(p.coverage() < 1.0);
        assert!(p.note().is_some());
        // Each worker's epoch sequence draws only from its shard.
        let shuffle = spec.epoch_shuffle(1);
        let seqs: Vec<Vec<SampleId>> = (0..4).map(|w| shuffle.worker_sequence(w)).collect();
        let lens: Vec<usize> = seqs.iter().map(Vec::len).collect();
        let out = p.transform_epoch(1, seqs, &shuffle);
        for (w, seq) in out.iter().enumerate() {
            assert_eq!(seq.len(), lens[w], "epoch length preserved");
            assert!(seq.iter().all(|&k| p.owner_of(k) == Some(w)));
        }
    }

    #[test]
    fn lbann_owner_partition_covers_dataset() {
        let sys = tiny_system(1_000_000);
        let sizes = vec![1_000_000u64; 150]; // fits in 4*50 MB RAM
        let l = LbannCore::new(&sys, &sizes, &tiny_spec(150), false).unwrap();
        assert!((0..150).all(|k| l.owner_of(k) < 4));
        // Dynamic mode has no prestage; epoch 0 is all-PFS first touch.
        assert!(l.prestage_list(0).is_empty());
        assert_eq!(l.source(0, 0, 0), Source::Pfs);
        assert_eq!(l.cache_class(l.owner_of(7), 7, 0), Some(0));
        assert_eq!(l.cache_class(l.owner_of(7) ^ 1, 7, 0), None);
    }

    #[test]
    fn lbann_preloading_prestages_owned_shard() {
        let sys = tiny_system(1_000_000);
        let sizes = vec![1_000_000u64; 150];
        let l = LbannCore::new(&sys, &sizes, &tiny_spec(150), true).unwrap();
        let total: usize = (0..4).map(|w| l.prestage_list(w).len()).sum();
        assert_eq!(total, 150, "every sample prestaged exactly once");
        assert!(l.prestage_seconds(&sys) > 0.0);
        // Epoch 0 is already owner-served.
        let k = 3;
        assert!(!matches!(l.source(l.owner_of(k), k, 0), Source::Pfs));
    }

    #[test]
    fn lbann_rejects_oversized_dataset() {
        let sys = tiny_system(1_000_000);
        let sizes = vec![1_000_000u64; 1000]; // 1000 MB > 200 MB RAM
        match LbannCore::new(&sys, &sizes, &tiny_spec(1000), true) {
            Err(Unsupported(m)) => assert!(m.contains("aggregate")),
            _ => panic!("expected unsupported"),
        }
    }

    #[test]
    fn locality_aware_reassigns_to_owners() {
        let sys = tiny_system(1_000_000);
        let sizes = vec![1_000_000u64; 400];
        let spec = tiny_spec(400);
        let la = LocalityCore::new(&sys, &sizes, &spec);
        let shuffle = spec.epoch_shuffle(1);
        let seqs: Vec<Vec<SampleId>> = (0..4).map(|w| shuffle.worker_sequence(w)).collect();
        let local_count = |seqs: &[Vec<SampleId>]| -> usize {
            seqs.iter()
                .enumerate()
                .map(|(w, s)| s.iter().filter(|&&k| la.owner_of(k) == Some(w)).count())
                .sum()
        };
        let before = local_count(&seqs);
        let out = la.transform_epoch(1, seqs, &shuffle);
        let after = local_count(&out);
        assert!(
            after > before,
            "reassignment should increase locality: {before} -> {after}"
        );
        // The transformed epoch is still a permutation of the original.
        let mut all: Vec<SampleId> = out.into_iter().flatten().collect();
        all.sort_unstable();
        let mut expect: Vec<SampleId> = shuffle.global_order().to_vec();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn locality_transform_preserves_worker_epoch_lens() {
        let sys = tiny_system(1_000_000);
        // Deliberately not divisible by the global batch.
        let sizes = vec![1_000_000u64; 203];
        let spec = tiny_spec(203);
        let la = LocalityCore::new(&sys, &sizes, &spec);
        let shuffle = spec.epoch_shuffle(2);
        let seqs: Vec<Vec<SampleId>> = (0..4).map(|w| shuffle.worker_sequence(w)).collect();
        let out = la.transform_epoch(2, seqs, &shuffle);
        for (w, seq) in out.iter().enumerate() {
            assert_eq!(seq.len() as u64, spec.worker_epoch_len(w), "worker {w}");
        }
    }

    #[test]
    fn build_core_covers_every_policy() {
        let sys = tiny_system(1_000);
        let sizes = vec![1_000u64; 64];
        let spec = ShuffleSpec::new(3, 64, 4, 4, false);
        for p in PolicyId::ALL {
            let core = build_core(p, &sys, &sizes, &spec).expect("feasible config");
            let expect_core = !matches!(p, PolicyId::NoPfs | PolicyId::Perfect);
            assert_eq!(core.is_some(), expect_core, "{p}");
            if let Some(core) = core {
                // Every core decides a source for every sample.
                let _ = core.source(0, 0, 0);
                assert!(core.coverage() > 0.0);
            }
        }
    }

    #[test]
    fn transformed_streams_match_identity_without_core() {
        let spec = ShuffleSpec::new(9, 40, 2, 4, false);
        let streams = transformed_streams(None, &spec, 2);
        for (w, stream) in streams.iter().enumerate() {
            let expect: Vec<SampleId> = (0..2)
                .flat_map(|e| spec.epoch_shuffle(e).worker_sequence(w))
                .collect();
            assert_eq!(stream, &expect);
        }
    }
}
