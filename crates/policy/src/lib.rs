//! The workspace policy layer: one registry of data-loading policies
//! and the decision core every harness executes.
//!
//! Three harnesses compare the paper's ten loader policies — the
//! threaded runtime (`nopfs_core` + `nopfs_baselines`), the
//! discrete-event simulator (`nopfs_simulator`, Sec. 6), and the
//! multi-tenant cluster (`nopfs_cluster`, Fig. 2). Before this crate
//! each of them re-derived every policy's decisions independently; now
//! the *what* of a policy lives here exactly once:
//!
//! - [`PolicyId`] — the one enum naming all ten policies (Table 1 /
//!   Fig. 8), with their [`Capabilities`] rows and figure labels.
//! - [`decision`] — harness-independent decision rules: NoPFS's
//!   fastest-source selection over an ordered tier list
//!   ([`decision::select_source_tiered`] with per-tier cost estimates
//!   from [`decision::tier_costs`] — the single code path behind both
//!   the runtime's staging fetches and the simulator's NoPFS policy)
//!   and the bulk-staging PFS share.
//! - [`core`] — the [`core::PolicyCore`] trait plus one implementation
//!   per baseline policy: sharding plans, first-touch ownership, epoch
//!   transforms, prestage lists, and dataset coverage. The simulator
//!   adapts a core into its event loop; the runtime drives real
//!   threads, caches, and sockets off the *same* object.
//!
//! Harness-specific *mechanisms* (ready-time estimates in the
//! simulator, the progress heuristic in the runtime) stay in their
//! harnesses; everything a policy decides — where a sample comes from,
//! which samples each worker may ever see, what is prestaged — comes
//! from here.

pub mod core;
pub mod decision;
pub mod fault;
pub mod id;

pub use crate::core::{build_core, transformed_streams, PolicyCore, Source};
pub use decision::{select_source, select_source_degraded, select_source_tiered, tier_costs};
pub use fault::{
    elastic_epoch_streams, elastic_global_stream, replan_core, Brownout, CloudFaults, FaultEvent,
    FaultPlan, ReadErrors,
};
pub use id::{Capabilities, PolicyId};

/// Why a policy cannot run a given configuration (e.g. the LBANN data
/// store with a dataset exceeding aggregate worker memory). Carried
/// unchanged through every harness's error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsupported(pub String);

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "policy unsupported: {}", self.0)
    }
}

impl std::error::Error for Unsupported {}
