//! The policy registry: every data-loading policy the paper compares,
//! with its Table 1 capability row.
//!
//! This enum supersedes the old `nopfs_simulator::Policy` and
//! `nopfs_cluster::TenantPolicy`: one id names a policy in every
//! harness — the discrete-event simulator, the threaded runtime, and
//! the multi-tenant cluster.

/// The data-loading policies every harness compares (paper Sec. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyId {
    /// No stalls ever occur: the theoretical lower bound ("Perfect").
    Perfect,
    /// Synchronous PFS reads, no prefetching or caching.
    Naive,
    /// Staging-buffer prefetching from the PFS in access order — models
    /// PyTorch's double-buffering `DataLoader` and `tf.data`.
    StagingBuffer,
    /// DeepIO's ordered mode: sharded in-memory cache, requested order
    /// preserved, uncached samples fetched from the PFS.
    DeepIoOrdered,
    /// DeepIO's opportunistic mode: uncached accesses are replaced by
    /// cached samples (changes the access order and dataset coverage).
    DeepIoOpportunistic,
    /// Data sharding with a prestaging phase; workers only access their
    /// local shard afterwards.
    ParallelStaging,
    /// LBANN data store, dynamic mode: first-touch in-memory caching
    /// during epoch 0, owner-served afterwards. Requires the dataset to
    /// fit in aggregate worker memory.
    LbannDynamic,
    /// LBANN data store, preloading mode: the in-memory cache is filled
    /// in a prestaging phase.
    LbannPreloading,
    /// Locality-aware loading (Yang & Cong): first-touch caching with
    /// per-iteration batch reassignment toward cache owners.
    LocalityAware,
    /// NoPFS: clairvoyant prefetching with frequency-ranked hierarchical
    /// placement and performance-model source selection.
    NoPfs,
}

impl PolicyId {
    /// All policies, in the paper's Fig. 8 presentation order
    /// (lower bound last).
    pub const ALL: [PolicyId; 10] = [
        PolicyId::Naive,
        PolicyId::StagingBuffer,
        PolicyId::DeepIoOrdered,
        PolicyId::DeepIoOpportunistic,
        PolicyId::ParallelStaging,
        PolicyId::LbannDynamic,
        PolicyId::LbannPreloading,
        PolicyId::LocalityAware,
        PolicyId::NoPfs,
        PolicyId::Perfect,
    ];

    /// The display name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyId::Perfect => "Lower Bound",
            PolicyId::Naive => "Naive",
            PolicyId::StagingBuffer => "Staging Buffer",
            PolicyId::DeepIoOrdered => "DeepIO (Ord.)",
            PolicyId::DeepIoOpportunistic => "DeepIO (Opp.)",
            PolicyId::ParallelStaging => "Parallel Staging",
            PolicyId::LbannDynamic => "LBANN (Dynamic)",
            PolicyId::LbannPreloading => "LBANN (Preloading)",
            PolicyId::LocalityAware => "Locality-Aware",
            PolicyId::NoPfs => "NoPFS",
        }
    }

    /// The Table 1 capability row for the framework family this policy
    /// models (`Perfect` is a bound, not a framework, and reports the
    /// ideal row).
    pub fn capabilities(&self) -> Capabilities {
        match self {
            PolicyId::Naive | PolicyId::StagingBuffer => Capabilities {
                system_scalability: false,
                dataset_scalability: true,
                full_randomization: !matches!(self, PolicyId::StagingBuffer),
                hardware_independence: false,
                ease_of_use: true,
            },
            PolicyId::DeepIoOrdered | PolicyId::DeepIoOpportunistic => Capabilities {
                system_scalability: true,
                dataset_scalability: false,
                full_randomization: false,
                hardware_independence: false,
                ease_of_use: true,
            },
            PolicyId::ParallelStaging => Capabilities {
                system_scalability: true,
                dataset_scalability: false,
                full_randomization: false,
                hardware_independence: false,
                ease_of_use: true,
            },
            PolicyId::LbannDynamic | PolicyId::LbannPreloading => Capabilities {
                system_scalability: true,
                dataset_scalability: false,
                full_randomization: true,
                hardware_independence: false,
                ease_of_use: false,
            },
            PolicyId::LocalityAware => Capabilities {
                system_scalability: true,
                dataset_scalability: true,
                full_randomization: true,
                hardware_independence: false,
                ease_of_use: false,
            },
            PolicyId::NoPfs | PolicyId::Perfect => Capabilities {
                system_scalability: true,
                dataset_scalability: true,
                full_randomization: true,
                hardware_independence: true,
                ease_of_use: true,
            },
        }
    }
}

impl std::fmt::Display for PolicyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Additional nodes are used productively.
    pub system_scalability: bool,
    /// Datasets larger than aggregate node storage are supported.
    pub dataset_scalability: bool,
    /// Without-replacement randomization over the entire dataset.
    pub full_randomization: bool,
    /// Exploits but does not require special hardware.
    pub hardware_independence: bool,
    /// Minimal integration effort.
    pub ease_of_use: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_nopfs_row_is_all_yes() {
        let c = PolicyId::NoPfs.capabilities();
        assert!(c.system_scalability);
        assert!(c.dataset_scalability);
        assert!(c.full_randomization);
        assert!(c.hardware_independence);
        assert!(c.ease_of_use);
    }

    #[test]
    fn table1_double_buffering_row() {
        // Paper Table 1: double-buffering is dataset-scalable and fully
        // randomized but not system-scalable or hardware-independent.
        let c = PolicyId::Naive.capabilities();
        assert!(!c.system_scalability);
        assert!(c.dataset_scalability);
        assert!(c.full_randomization);
        assert!(!c.hardware_independence);
    }

    #[test]
    fn table1_tfdata_lacks_full_randomization() {
        assert!(!PolicyId::StagingBuffer.capabilities().full_randomization);
    }

    #[test]
    fn table1_sharding_not_dataset_scalable() {
        assert!(!PolicyId::ParallelStaging.capabilities().dataset_scalability);
        assert!(!PolicyId::DeepIoOrdered.capabilities().dataset_scalability);
        assert!(!PolicyId::LbannDynamic.capabilities().dataset_scalability);
    }

    #[test]
    fn only_nopfs_is_hardware_independent() {
        for p in PolicyId::ALL {
            let hw = p.capabilities().hardware_independence;
            if matches!(p, PolicyId::NoPfs | PolicyId::Perfect) {
                assert!(hw);
            } else {
                assert!(!hw, "{p} should not be hardware independent");
            }
        }
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(PolicyId::NoPfs.name(), "NoPFS");
        assert_eq!(PolicyId::Perfect.name(), "Lower Bound");
        assert_eq!(PolicyId::DeepIoOpportunistic.name(), "DeepIO (Opp.)");
    }

    #[test]
    fn all_has_ten_unique_policies() {
        let set: std::collections::HashSet<_> = PolicyId::ALL.iter().collect();
        assert_eq!(set.len(), 10);
    }
}
