//! Property tests for the observability layer: histogram bucket
//! boundaries and quantiles must be monotone, merging must be
//! associative, and snapshots taken under concurrent writers must
//! account for every recorded observation.

use nopfs_obs::metrics::{bucket_of, bucket_upper, HistogramSnapshot, HISTOGRAM_BUCKETS};
use nopfs_obs::{Registry, Snapshot};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn histogram_of(values: &[u64]) -> HistogramSnapshot {
    let r = Registry::new();
    let h = r.histogram("h");
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// value → bucket is monotone: a larger value never lands in a
    /// smaller bucket, and every value lies within its bucket's edges.
    #[test]
    fn bucket_assignment_is_monotone_and_bounded(
        raw in prop::collection::vec(any::<u64>(), 2..64),
    ) {
        let mut values = raw;
        values.sort_unstable();
        let buckets: Vec<usize> = values.iter().map(|&v| bucket_of(v)).collect();
        for w in buckets.windows(2) {
            prop_assert!(w[0] <= w[1], "bucket order violates value order");
        }
        for (&v, &b) in values.iter().zip(&buckets) {
            prop_assert!(b < HISTOGRAM_BUCKETS);
            prop_assert!(v <= bucket_upper(b));
            if b > 0 {
                prop_assert!(v > bucket_upper(b - 1));
            }
        }
    }

    /// bucket → quantile is monotone: for any recorded set, a higher
    /// quantile never reports a smaller value, `quantile(1.0)` is the
    /// exact maximum, and every quantile lies within the observed range
    /// rounded up to its bucket edge.
    #[test]
    fn quantiles_are_monotone_and_clamped(
        values in prop::collection::vec(0u64..1_000_000_000, 1..80),
        qs in prop::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        let snap = histogram_of(&values);
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let reported: Vec<u64> = qs.iter().map(|&q| snap.quantile(q)).collect();
        for w in reported.windows(2) {
            prop_assert!(w[0] <= w[1], "quantile not monotone: {reported:?}");
        }
        let max = *values.iter().max().unwrap();
        let min = *values.iter().min().unwrap();
        prop_assert_eq!(snap.quantile(1.0), max);
        for &r in &reported {
            prop_assert!(r <= max);
            prop_assert!(r >= min.min(bucket_upper(bucket_of(min))));
        }
    }

    /// Histogram merge is associative and commutative: (a ∪ b) ∪ c
    /// equals a ∪ (b ∪ c) and b ∪ a bucket-for-bucket.
    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(any::<u64>(), 0..40),
        b in prop::collection::vec(any::<u64>(), 0..40),
        c in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);

        prop_assert_eq!(&left, &right);

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);

        // The merged histogram equals recording the concatenation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        // Sum wraps identically in both paths, so compare whole snapshots.
        prop_assert_eq!(left, histogram_of(&all));
    }

    /// Snapshot merging over disjoint per-worker registries equals one
    /// registry recording everything (the "cluster totals" identity).
    #[test]
    fn snapshot_merge_equals_single_registry(
        per_worker in prop::collection::vec(
            prop::collection::vec(0u64..10_000, 0..20), 1..5),
    ) {
        let combined = Registry::new();
        let mut merged = Snapshot::default();
        for values in &per_worker {
            let r = Registry::new();
            for &v in values {
                r.counter("events").inc();
                r.histogram("lat").record(v);
                combined.counter("events").inc();
                combined.histogram("lat").record(v);
            }
            merged.merge(&r.snapshot());
        }
        let want = combined.snapshot();
        prop_assert_eq!(merged.counter_total("events"), want.counter_total("events"));
        let total: usize = per_worker.iter().map(Vec::len).sum();
        if total > 0 {
            prop_assert_eq!(merged.histogram("lat").unwrap(), want.histogram("lat").unwrap());
        }
    }
}

/// Snapshots taken while writers are still running never lose updates:
/// after the writers join, the final snapshot accounts for exactly the
/// recorded sum, and every mid-flight snapshot was monotone.
#[test]
fn concurrent_writers_sum_observed_equals_sum_recorded() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 20_000;
    let r = Registry::new();
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let r = r.clone();
            std::thread::spawn(move || {
                let c = r.counter("obs.test.count");
                let h = r.histogram("obs.test.lat");
                let mut sum = 0u64;
                for i in 0..PER_WRITER {
                    let v = w * 31 + i % 97;
                    c.inc();
                    h.record(v);
                    sum += v;
                }
                sum
            })
        })
        .collect();

    // A reader snapshots continuously while the writers run; counters
    // must be monotone and internally consistent at every observation.
    let reader = {
        let r = r.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = 0u64;
            let mut observations = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = r.snapshot();
                let n = snap.counter_total("obs.test.count");
                assert!(n >= last, "counter went backwards under writers");
                last = n;
                observations += 1;
            }
            observations
        })
    };

    let recorded_sum: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    stop.store(true, Ordering::Relaxed);
    let observations = reader.join().unwrap();
    assert!(observations > 0);

    let snap = r.snapshot();
    assert_eq!(snap.counter_total("obs.test.count"), WRITERS * PER_WRITER);
    let h = snap.histogram("obs.test.lat").unwrap();
    assert_eq!(h.count, WRITERS * PER_WRITER);
    assert_eq!(h.sum, recorded_sum, "sum of observed != sum of recorded");
    assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
}
