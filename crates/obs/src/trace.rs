//! Structured event tracing: bounded per-thread ring buffers of spans
//! and instant events, stamped with both the wall clock and the
//! simulator's model clock, exportable as Chrome `trace_event` JSON
//! (openable in `about:tracing` / Perfetto).
//!
//! Emission never crosses threads: each thread owns a bounded ring
//! registered with the tracer on first use, so the only lock an event
//! takes is the owner thread's own uncontended ring mutex. When a ring
//! fills, the oldest events are dropped (and counted) — tracing a
//! too-long run degrades gracefully instead of growing without bound.
//!
//! Two clocks ride on every event: `wall_us` (microseconds since the
//! tracer was created) and `model_s` (the harness's model clock). The
//! runtime stamps wall time and derives model time through the job's
//! `TimeScale` factor; the simulator stamps model time explicitly via
//! the `*_at` methods and the timeline (`ts`) then *is* the model
//! clock, so runtime and simulated traces of the same scenario line up.

use crate::json::Json;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default per-thread ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's rings, one per tracer it has emitted into.
    static THREAD_RINGS: RefCell<HashMap<u64, Arc<Mutex<Ring>>>> =
        RefCell::new(HashMap::new());
    /// A small stable id for this thread (Chrome traces key lanes on it).
    static THREAD_ID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// One argument value on a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A numeric argument.
    Num(f64),
    /// A string argument.
    Str(String),
}

impl From<f64> for ArgValue {
    fn from(x: f64) -> Self {
        ArgValue::Num(x)
    }
}

impl From<u64> for ArgValue {
    fn from(x: u64) -> Self {
        ArgValue::Num(x as f64)
    }
}

impl From<usize> for ArgValue {
    fn from(x: usize) -> Self {
        ArgValue::Num(x as f64)
    }
}

impl From<&str> for ArgValue {
    fn from(s: &str) -> Self {
        ArgValue::Str(s.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(s: String) -> Self {
        ArgValue::Str(s)
    }
}

/// One recorded span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (see [`crate::names`] for the workspace vocabulary).
    pub name: &'static str,
    /// Category ("worker", "tier", "resilience", "elastic", "sim", …).
    pub cat: &'static str,
    /// Chrome phase: `'X'` complete span, `'i'` instant.
    pub ph: char,
    /// Timeline position in µs: wall clock for runtime events, model
    /// clock for simulator events emitted via the `*_at` methods.
    pub ts_us: u64,
    /// Span duration in µs (0 for instants).
    pub dur_us: u64,
    /// Wall-clock µs since the tracer was created.
    pub wall_us: u64,
    /// Model-clock seconds.
    pub model_s: f64,
    /// Emitting thread's stable id.
    pub tid: u64,
    /// Event arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

#[derive(Debug)]
struct TracerInner {
    id: u64,
    epoch: Instant,
    /// Wall seconds per model second (the runtime's `TimeScale` factor);
    /// used to derive `model_s` for wall-stamped events.
    wall_per_model: f64,
    capacity: usize,
    rings: Mutex<Vec<Arc<Mutex<Ring>>>>,
}

/// A handle to an event tracer (or to nothing, for the no-op mode).
/// Cloning is cheap; all clones feed the same rings.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// An active tracer with the default per-thread ring capacity and a
    /// realtime clock (model seconds == wall seconds).
    pub fn new() -> Self {
        Self::with_config(DEFAULT_RING_CAPACITY, 1.0)
    }

    /// An active tracer with explicit ring capacity and wall-per-model
    /// scale factor.
    ///
    /// # Panics
    /// Panics on zero capacity or a non-positive/non-finite factor.
    pub fn with_config(capacity: usize, wall_per_model: f64) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        assert!(
            wall_per_model > 0.0 && wall_per_model.is_finite(),
            "scale factor must be positive and finite"
        );
        Self {
            inner: Some(Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                wall_per_model,
                capacity,
                rings: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A disconnected tracer: every emission is a no-op.
    pub fn noop() -> Self {
        Self { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    fn push(&self, event: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        THREAD_RINGS.with(|rings| {
            let mut rings = rings.borrow_mut();
            let ring = rings.entry(inner.id).or_insert_with(|| {
                let ring = Arc::new(Mutex::new(Ring {
                    events: VecDeque::new(),
                    dropped: 0,
                }));
                inner.rings.lock().push(Arc::clone(&ring));
                ring
            });
            let mut ring = ring.lock();
            if ring.events.len() >= inner.capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            ring.events.push_back(event);
        });
    }

    fn wall_us(&self, at: Instant) -> u64 {
        let inner = self.inner.as_ref().expect("active tracer");
        at.saturating_duration_since(inner.epoch).as_micros() as u64
    }

    /// Records an instant event stamped now (wall clock primary; model
    /// time derived through the scale factor).
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.inner.is_none() {
            return;
        }
        let wall_us = self.wall_us(Instant::now());
        let model_s = wall_us as f64 / 1e6 / self.inner.as_ref().unwrap().wall_per_model;
        self.push(TraceEvent {
            name,
            cat,
            ph: 'i',
            ts_us: wall_us,
            dur_us: 0,
            wall_us,
            model_s,
            tid: THREAD_ID.with(|t| *t),
            args,
        });
    }

    /// Records an instant event at an explicit model time (model clock
    /// primary — the simulator's emission path).
    pub fn instant_at(
        &self,
        name: &'static str,
        cat: &'static str,
        model_s: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.inner.is_none() {
            return;
        }
        let ts_us = (model_s.max(0.0) * 1e6) as u64;
        self.push(TraceEvent {
            name,
            cat,
            ph: 'i',
            ts_us,
            dur_us: 0,
            wall_us: self.wall_us(Instant::now()),
            model_s,
            tid: THREAD_ID.with(|t| *t),
            args,
        });
    }

    /// Records a complete span that started at `start` and ends now
    /// (wall clock primary).
    pub fn complete(
        &self,
        name: &'static str,
        cat: &'static str,
        start: Instant,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.inner.is_none() {
            return;
        }
        let ts_us = self.wall_us(start);
        let end_us = self.wall_us(Instant::now());
        let model_s = ts_us as f64 / 1e6 / self.inner.as_ref().unwrap().wall_per_model;
        self.push(TraceEvent {
            name,
            cat,
            ph: 'X',
            ts_us,
            dur_us: end_us.saturating_sub(ts_us),
            wall_us: ts_us,
            model_s,
            tid: THREAD_ID.with(|t| *t),
            args,
        });
    }

    /// Records a complete span at explicit model coordinates (model
    /// clock primary — the simulator's emission path).
    pub fn complete_at(
        &self,
        name: &'static str,
        cat: &'static str,
        model_start_s: f64,
        model_dur_s: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.inner.is_none() {
            return;
        }
        self.push(TraceEvent {
            name,
            cat,
            ph: 'X',
            ts_us: (model_start_s.max(0.0) * 1e6) as u64,
            dur_us: (model_dur_s.max(0.0) * 1e6) as u64,
            wall_us: self.wall_us(Instant::now()),
            model_s: model_start_s,
            tid: THREAD_ID.with(|t| *t),
            args,
        });
    }

    /// Copies out every recorded event across all threads, sorted by
    /// timeline position. Rings keep their contents (export is
    /// non-destructive).
    pub fn export(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut events = Vec::new();
        for ring in inner.rings.lock().iter() {
            events.extend(ring.lock().events.iter().cloned());
        }
        events.sort_by(|a, b| {
            a.ts_us
                .cmp(&b.ts_us)
                .then(a.tid.cmp(&b.tid))
                .then(a.dur_us.cmp(&b.dur_us))
        });
        events
    }

    /// Events dropped to ring bounds, summed over all threads.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner.rings.lock().iter().map(|r| r.lock().dropped).sum()
        })
    }

    /// Renders every recorded event as a Chrome `trace_event` document
    /// (`{"traceEvents": [...]}`); `process_name` labels the single
    /// process lane.
    pub fn chrome_trace(&self, process_name: &str) -> Json {
        chrome_trace_of(&self.export(), process_name)
    }
}

/// Renders a batch of events (e.g. merged from several tracers) as a
/// Chrome `trace_event` document.
pub fn chrome_trace_of(events: &[TraceEvent], process_name: &str) -> Json {
    let mut out = Vec::with_capacity(events.len() + 1);
    // Process-name metadata event, so about:tracing labels the lane.
    out.push(Json::obj([
        ("name", Json::from("process_name")),
        ("ph", Json::from("M")),
        ("pid", Json::from(1u64)),
        ("tid", Json::from(0u64)),
        (
            "args",
            Json::obj([("name", Json::from(process_name.to_string()))]),
        ),
    ]));
    for e in events {
        let mut args: Vec<(String, Json)> = vec![
            ("wall_us".to_string(), Json::from(e.wall_us)),
            ("model_s".to_string(), Json::Num(e.model_s)),
        ];
        args.extend(e.args.iter().map(|(k, v)| {
            (
                k.to_string(),
                match v {
                    ArgValue::Num(x) => Json::Num(*x),
                    ArgValue::Str(s) => Json::Str(s.clone()),
                },
            )
        }));
        let mut fields = vec![
            ("name".to_string(), Json::from(e.name)),
            ("cat".to_string(), Json::from(e.cat)),
            ("ph".to_string(), Json::Str(e.ph.to_string())),
            ("ts".to_string(), Json::from(e.ts_us)),
        ];
        if e.ph == 'X' {
            fields.push(("dur".to_string(), Json::from(e.dur_us)));
        }
        if e.ph == 'i' {
            // Thread-scoped instants render as small arrows in the UI.
            fields.push(("s".to_string(), Json::from("t")));
        }
        fields.extend([
            ("pid".to_string(), Json::from(1u64)),
            ("tid".to_string(), Json::from(e.tid)),
            ("args".to_string(), Json::Obj(args)),
        ]);
        out.push(Json::Obj(fields));
    }
    Json::obj([
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::from("ms")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn instants_and_spans_are_recorded_in_order() {
        let t = Tracer::new();
        let start = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        t.instant("fetch", "worker", vec![("served", ArgValue::from("local"))]);
        t.complete("stall", "worker", start, vec![]);
        let events = t.export();
        assert_eq!(events.len(), 2);
        // The span started strictly before the instant was emitted.
        assert_eq!(events[0].name, "stall");
        assert_eq!(events[0].ph, 'X');
        assert!(events[0].dur_us >= 2_000);
        assert_eq!(events[1].name, "fetch");
        assert_eq!(events[1].ph, 'i');
        assert!(events[0].ts_us < events[1].ts_us);
    }

    #[test]
    fn model_clock_events_use_model_timeline() {
        let t = Tracer::new();
        t.instant_at("epoch", "sim", 1.5, vec![("epoch", ArgValue::from(3u64))]);
        t.complete_at("fetch", "sim", 2.0, 0.25, vec![]);
        let events = t.export();
        assert_eq!(events[0].ts_us, 1_500_000);
        assert_eq!(events[0].model_s, 1.5);
        assert_eq!(events[1].ts_us, 2_000_000);
        assert_eq!(events[1].dur_us, 250_000);
    }

    #[test]
    fn rings_are_bounded_and_count_drops() {
        let t = Tracer::with_config(4, 1.0);
        for _ in 0..10 {
            t.instant("e", "test", vec![]);
        }
        assert_eq!(t.export().len(), 4);
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn per_thread_rings_merge_on_export() {
        let t = Tracer::new();
        t.instant("main", "test", vec![]);
        let t2 = t.clone();
        std::thread::spawn(move || {
            t2.instant("spawned", "test", vec![]);
        })
        .join()
        .unwrap();
        let events = t.export();
        assert_eq!(events.len(), 2);
        let tids: std::collections::HashSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2);
    }

    #[test]
    fn noop_tracer_records_nothing() {
        let t = Tracer::noop();
        t.instant("e", "test", vec![]);
        t.complete("s", "test", Instant::now(), vec![]);
        assert!(t.export().is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(!t.is_active());
    }

    #[test]
    fn chrome_trace_parses_and_has_required_fields() {
        let t = Tracer::new();
        t.instant("fetch", "worker", vec![("sample", ArgValue::from(7u64))]);
        let doc = Json::parse(&t.chrome_trace("test-run").render()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2); // metadata + 1 event
        let e = &events[1];
        assert_eq!(e.get("name").unwrap().as_str().unwrap(), "fetch");
        assert_eq!(e.get("ph").unwrap().as_str().unwrap(), "i");
        assert!(e.get("ts").unwrap().as_num().is_some());
        assert!(e.get("args").unwrap().get("model_s").is_some());
        assert_eq!(
            e.get("args").unwrap().get("sample").unwrap().as_num(),
            Some(7.0)
        );
    }

    #[test]
    fn scale_factor_derives_model_time() {
        let t = Tracer::with_config(64, 2.0); // 2 wall seconds per model second
        t.instant("e", "test", vec![]);
        let e = &t.export()[0];
        assert!((e.model_s - e.wall_us as f64 / 1e6 / 2.0).abs() < 1e-9);
    }
}
