//! Workspace observability: the one vocabulary every harness reports
//! through.
//!
//! The paper's argument is quantitative — stall time, per-tier hit
//! fractions, interference slowdowns (Figs. 2, 5, 8, 12) — and before
//! this crate those numbers lived in ad-hoc structs visible only after
//! a run ended. This crate gives the workspace three layers:
//!
//! - [`metrics`] — a lock-free [`metrics::Registry`] of named counters,
//!   gauges, and log-bucketed latency histograms with hierarchical
//!   labels (tenant/rank/tier/policy). Registration locks once; the hot
//!   fetch path is relaxed atomics on cheap-clone handles, and a no-op
//!   registry makes all of it vanish (the `obs_overhead` bench pins the
//!   active cost at <5%).
//! - [`trace`] — structured event tracing into bounded per-thread ring
//!   buffers: spans and instants (fetch/served-from, staging stall,
//!   breaker transitions, hedges, replans, recovery barriers) stamped
//!   with both the wall clock and the model clock, exportable as Chrome
//!   `trace_event` JSON for `about:tracing` / Perfetto.
//! - [`snapshot`] — [`snapshot::Snapshot`]s of a whole registry at any
//!   moment, a JSON-lines emitter, and the periodic [`snapshot::Sampler`]
//!   the cluster runtime drives per tenant, turning the interference
//!   report into a live time series.
//!
//! The pre-existing stats structs (`WorkerStats`, `TierStats`,
//! `ResilienceStats`, `PfsStats`, `StagingStats`) are now typed views
//! over this registry; [`names`] lists the shared metric and event
//! vocabulary they map onto.

pub mod json;
pub mod metrics;
pub mod names;
pub mod snapshot;
pub mod trace;

pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Labels, Registry};
pub use snapshot::{JsonlEmitter, MetricEntry, Sampler, Snapshot};
pub use trace::{ArgValue, TraceEvent, Tracer};

/// The observability context a job threads through its fetch path: one
/// registry handle plus one tracer handle. Cloning is cheap; scoping
/// derives child contexts whose metrics carry extra labels while
/// feeding the same tracer rings.
#[derive(Debug, Clone)]
pub struct ObsCtx {
    /// Metric registry handle.
    pub registry: Registry,
    /// Event tracer handle.
    pub tracer: Tracer,
}

impl Default for ObsCtx {
    /// An active registry with a disconnected tracer — counters are
    /// always on (the stats structs are views over them), event rings
    /// only when a harness opts in via [`ObsCtx::traced`].
    fn default() -> Self {
        Self {
            registry: Registry::new(),
            tracer: Tracer::noop(),
        }
    }
}

impl ObsCtx {
    /// The default context: active metrics, no tracing.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fully disconnected context.
    pub fn noop() -> Self {
        Self {
            registry: Registry::noop(),
            tracer: Tracer::noop(),
        }
    }

    /// An active context with event tracing on (default ring capacity,
    /// realtime clock).
    pub fn traced() -> Self {
        Self {
            registry: Registry::new(),
            tracer: Tracer::new(),
        }
    }

    /// An active traced context with an explicit wall-per-model scale
    /// factor (pass the job's `TimeScale` factor so trace events carry
    /// the model clock).
    pub fn traced_with_scale(wall_per_model: f64) -> Self {
        Self {
            registry: Registry::new(),
            tracer: Tracer::with_config(trace::DEFAULT_RING_CAPACITY, wall_per_model),
        }
    }

    /// A child context whose metrics carry extra labels; the tracer is
    /// shared.
    pub fn scoped(&self, labels: impl IntoIterator<Item = (&'static str, String)>) -> ObsCtx {
        ObsCtx {
            registry: self.registry.scoped(labels),
            tracer: self.tracer.clone(),
        }
    }

    /// A point-in-time view of the registry.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ctx_counts_but_does_not_trace() {
        let obs = ObsCtx::new();
        obs.registry.counter("x").inc();
        obs.tracer.instant("e", "test", vec![]);
        assert_eq!(obs.snapshot().counter("x"), Some(1));
        assert!(obs.tracer.export().is_empty());
    }

    #[test]
    fn scoped_ctx_shares_registry_and_tracer() {
        let obs = ObsCtx::traced();
        let child = obs.scoped([("tenant", "a".to_string())]);
        child.registry.counter("x").inc();
        child.tracer.instant("e", "test", vec![]);
        assert!(child.registry.same_registry(&obs.registry));
        assert_eq!(obs.snapshot().counter("x{tenant=a}"), Some(1));
        assert_eq!(obs.tracer.export().len(), 1);
    }

    #[test]
    fn noop_ctx_is_inert() {
        let obs = ObsCtx::noop();
        obs.registry.counter("x").inc();
        assert!(obs.snapshot().is_empty());
    }
}
