//! The telemetry surface: point-in-time [`Snapshot`]s of a whole
//! registry, a JSON-lines emitter that turns periodic snapshots into a
//! live time series, and a background [`Sampler`] the cluster runtime
//! drives per tenant.

use crate::json::Json;
use crate::metrics::{HistogramSnapshot, Labels, Registry};
use parking_lot::Mutex;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One metric's identity and value inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry<T> {
    /// Dotted metric name.
    pub name: String,
    /// Label pairs, outermost scope first.
    pub labels: Labels,
    /// The captured value.
    pub value: T,
}

impl<T> MetricEntry<T> {
    /// The flat `name{k=v,…}` key used in JSONL emission and merging.
    pub fn key(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// A point-in-time view of every metric in one registry, sorted by
/// `(name, labels)` for deterministic emission.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<MetricEntry<u64>>,
    /// All gauges.
    pub gauges: Vec<MetricEntry<u64>>,
    /// All histograms.
    pub histograms: Vec<MetricEntry<HistogramSnapshot>>,
}

impl Snapshot {
    /// Captures `registry` (empty for a no-op registry).
    pub fn capture(registry: &Registry) -> Self {
        let mut snap = Snapshot::default();
        registry.visit_counters(|(name, labels), value| {
            snap.counters.push(MetricEntry {
                name: name.clone(),
                labels: labels.clone(),
                value,
            });
        });
        registry.visit_gauges(|(name, labels), value| {
            snap.gauges.push(MetricEntry {
                name: name.clone(),
                labels: labels.clone(),
                value,
            });
        });
        registry.visit_histograms(|(name, labels), value| {
            snap.histograms.push(MetricEntry {
                name: name.clone(),
                labels: labels.clone(),
                value,
            });
        });
        snap.counters
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snap.gauges
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snap.histograms
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snap
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The value of counter `key()` (`None` if absent).
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|e| e.key() == key)
            .map(|e| e.value)
    }

    /// Sum of every counter named `name`, across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.value)
            .sum()
    }

    /// The histogram with key `key()` (`None` if absent).
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|e| e.key() == key)
            .map(|e| &e.value)
    }

    /// Merges another snapshot into this one: counters add, gauges take
    /// the maximum (they are high-water marks in this workspace), and
    /// histograms merge bucket-wise. This is the one merge routine
    /// behind every "cluster totals" view.
    pub fn merge(&mut self, other: &Snapshot) {
        fn upsert<T>(
            dst: &mut Vec<MetricEntry<T>>,
            src: &[MetricEntry<T>],
            combine: impl Fn(&mut T, &T),
        ) where
            T: Clone,
        {
            for entry in src {
                match dst
                    .iter_mut()
                    .find(|e| e.name == entry.name && e.labels == entry.labels)
                {
                    Some(e) => combine(&mut e.value, &entry.value),
                    None => dst.push(entry.clone()),
                }
            }
            // Keep deterministic ordering after inserts.
        }
        upsert(&mut self.counters, &other.counters, |a, b| *a += *b);
        upsert(&mut self.gauges, &other.gauges, |a, b| *a = (*a).max(*b));
        upsert(&mut self.histograms, &other.histograms, |a, b| a.merge(b));
        self.counters
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self.gauges
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self.histograms
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }

    /// Serializes the snapshot: counters and gauges as flat
    /// `key → value` objects, histograms as `key → {count, sum, mean,
    /// p50, p95, p99, max}`.
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|e| (e.key(), Json::from(e.value)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|e| (e.key(), Json::from(e.value)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|e| {
                (
                    e.key(),
                    Json::obj([
                        ("count", Json::from(e.value.count)),
                        ("sum", Json::from(e.value.sum)),
                        ("mean", Json::Num(e.value.mean())),
                        ("p50", Json::from(e.value.p50())),
                        ("p95", Json::from(e.value.p95())),
                        ("p99", Json::from(e.value.p99())),
                        ("max", Json::from(e.value.max)),
                    ]),
                )
            })
            .collect();
        Json::obj([
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(histograms)),
        ])
    }
}

/// A JSON-lines telemetry stream: each [`emit`](Self::emit) appends one
/// compact line `{"seq", "wall_s", "model_s", "counters", …}`.
///
/// Lines are always retained in memory (so reports can carry the time
/// series); [`to_file`](Self::to_file) additionally streams each line
/// to disk as it is emitted.
#[derive(Debug)]
pub struct JsonlEmitter {
    seq: AtomicU64,
    lines: Mutex<Vec<String>>,
    file: Option<Mutex<std::fs::File>>,
}

impl JsonlEmitter {
    /// An in-memory emitter.
    pub fn memory() -> Arc<Self> {
        Arc::new(Self {
            seq: AtomicU64::new(0),
            lines: Mutex::new(Vec::new()),
            file: None,
        })
    }

    /// An emitter that also appends each line to `path` (truncated on
    /// creation).
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Arc<Self>> {
        Ok(Arc::new(Self {
            seq: AtomicU64::new(0),
            lines: Mutex::new(Vec::new()),
            file: Some(Mutex::new(std::fs::File::create(path)?)),
        }))
    }

    /// Emits one snapshot line stamped with both clocks; returns the
    /// line's sequence number.
    pub fn emit(&self, snapshot: &Snapshot, wall_s: f64, model_s: f64) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let line = Json::obj([
            ("seq", Json::from(seq)),
            ("wall_s", Json::Num(wall_s)),
            ("model_s", Json::Num(model_s)),
            ("snapshot", snapshot.to_json()),
        ])
        .render_compact();
        if let Some(file) = &self.file {
            let mut f = file.lock();
            let _ = writeln!(f, "{line}");
        }
        self.lines.lock().push(line);
        seq
    }

    /// All lines emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }

    /// Number of lines emitted so far.
    pub fn len(&self) -> usize {
        self.lines.lock().len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.lines.lock().is_empty()
    }
}

/// A background thread that snapshots a registry every `interval` and
/// emits each snapshot as one JSONL line — the live-telemetry loop the
/// cluster runtime runs per tenant. Stopping emits one final snapshot,
/// so even a run shorter than the interval produces a complete series.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Spawns the sampling loop. `wall_per_model` converts the sampler's
    /// wall clock into model seconds for the line stamps (use the job's
    /// `TimeScale` factor; 1.0 for realtime).
    pub fn spawn(
        registry: Registry,
        emitter: Arc<JsonlEmitter>,
        interval: Duration,
        wall_per_model: f64,
    ) -> Sampler {
        assert!(interval > Duration::ZERO, "interval must be positive");
        assert!(
            wall_per_model > 0.0 && wall_per_model.is_finite(),
            "scale factor must be positive and finite"
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let t0 = Instant::now();
            let emit = |now: Instant| {
                let wall_s = now.duration_since(t0).as_secs_f64();
                emitter.emit(&registry.snapshot(), wall_s, wall_s / wall_per_model);
            };
            while !stop2.load(Ordering::Relaxed) {
                // Sleep in small slices so stop() returns promptly even
                // with a long sampling interval.
                let deadline = Instant::now() + interval;
                while Instant::now() < deadline {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2).min(interval));
                }
                emit(Instant::now());
            }
        });
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the loop; the final snapshot is emitted before this
    /// returns.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_captures_and_sorts() {
        let r = Registry::new();
        r.counter_with("b", &[]).add(2);
        r.counter_with("a", &[("tier", "ram")]).inc();
        r.gauge("hwm").record_max(7);
        r.histogram("lat").record(100);
        let s = r.snapshot();
        assert_eq!(s.counters.len(), 2);
        assert_eq!(s.counters[0].key(), "a{tier=ram}");
        assert_eq!(s.counters[1].key(), "b");
        assert_eq!(s.counter("b"), Some(2));
        assert_eq!(s.counter_total("a"), 1);
        assert_eq!(s.gauges[0].value, 7);
        assert_eq!(s.histogram("lat").unwrap().count, 1);
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let r1 = Registry::new();
        r1.counter("x").add(3);
        r1.histogram("h").record(10);
        r1.gauge("g").set(5);
        let r2 = Registry::new();
        r2.counter("x").add(4);
        r2.counter("y").inc();
        r2.histogram("h").record(1000);
        r2.gauge("g").set(2);
        let mut merged = r1.snapshot();
        merged.merge(&r2.snapshot());
        assert_eq!(merged.counter("x"), Some(7));
        assert_eq!(merged.counter("y"), Some(1));
        assert_eq!(merged.gauges[0].value, 5);
        let h = merged.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 1000);
    }

    #[test]
    fn jsonl_lines_parse_and_are_monotone() {
        let r = Registry::new();
        let c = r.counter("fetches");
        let emitter = JsonlEmitter::memory();
        for i in 0..3u64 {
            c.add(i + 1);
            emitter.emit(&r.snapshot(), i as f64, i as f64 / 2.0);
        }
        let lines = emitter.lines();
        assert_eq!(lines.len(), 3);
        let mut last = 0.0;
        for (i, line) in lines.iter().enumerate() {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("seq").unwrap().as_num(), Some(i as f64));
            let fetched = v
                .get("snapshot")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("fetches")
                .unwrap()
                .as_num()
                .unwrap();
            assert!(fetched >= last, "counter regressed across snapshots");
            last = fetched;
        }
        assert_eq!(last, 6.0);
    }

    #[test]
    fn sampler_emits_final_snapshot_on_stop() {
        let r = Registry::new();
        r.counter("x").inc();
        let emitter = JsonlEmitter::memory();
        let sampler = Sampler::spawn(
            r.clone(),
            Arc::clone(&emitter),
            Duration::from_millis(5),
            1.0,
        );
        std::thread::sleep(Duration::from_millis(25));
        sampler.stop();
        let n = emitter.len();
        assert!(n >= 2, "expected several periodic lines, got {n}");
        // The final line reflects the stop-time state.
        let last = Json::parse(emitter.lines().last().unwrap()).unwrap();
        assert_eq!(
            last.get("snapshot")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("x")
                .unwrap()
                .as_num(),
            Some(1.0)
        );
    }

    #[test]
    fn file_emitter_streams_lines() {
        let dir = std::env::temp_dir().join(format!("nopfs_obs_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let r = Registry::new();
        r.counter("x").inc();
        let emitter = JsonlEmitter::to_file(&path).unwrap();
        emitter.emit(&r.snapshot(), 0.0, 0.0);
        emitter.emit(&r.snapshot(), 1.0, 1.0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            Json::parse(line).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
