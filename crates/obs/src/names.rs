//! The shared metric and trace-event vocabulary.
//!
//! Every harness (threaded runtime, simulator, cluster) reports through
//! these names, so a dashboard or trace viewer sees one schema no
//! matter which produced the data. The stats structs are views over the
//! metric names; DESIGN.md §14 tabulates the event names.

// --- Worker fetch accounting (`WorkerStats` view, Fig. 12) ---

/// Staging fetches served from a local storage class.
pub const WORKER_FETCH_LOCAL: &str = "worker.fetch.local";
/// Staging fetches served from a remote worker's cache.
pub const WORKER_FETCH_REMOTE: &str = "worker.fetch.remote";
/// Staging fetches served from the PFS (or cloud origin).
pub const WORKER_FETCH_PFS: &str = "worker.fetch.pfs";
/// Samples loaded during a non-overlapped prestaging phase.
pub const WORKER_FETCH_PRESTAGE: &str = "worker.fetch.prestage";
/// Remote requests answered `NotCached` (heuristic false positives).
pub const WORKER_FALSE_POSITIVES: &str = "worker.false_positives";
/// Remote fetches skipped by the progress heuristic.
pub const WORKER_HEURISTIC_SKIPS: &str = "worker.heuristic_skips";
/// Origin read errors that were retried.
pub const WORKER_PFS_ERRORS: &str = "worker.pfs_errors";
/// Total nanoseconds the consumer stalled on the staging buffer.
pub const WORKER_STALL_NANOS: &str = "worker.stall_nanos";
/// Samples delivered to the consumer.
pub const WORKER_CONSUMED: &str = "worker.consumed";
/// Per-stall latency distribution (ns).
pub const WORKER_STALL_LATENCY: &str = "worker.stall_latency_ns";

// --- Tier counters (`TierStats` view, labelled `tier=<name>`) ---

/// Tier read hits.
pub const TIER_HITS: &str = "tier.hits";
/// Tier read misses.
pub const TIER_MISSES: &str = "tier.misses";
/// Bytes served by hits.
pub const TIER_BYTES_READ: &str = "tier.bytes_read";
/// Explicit (pinned) fills.
pub const TIER_FILLS: &str = "tier.fills";
/// Bytes written by fills.
pub const TIER_BYTES_FILLED: &str = "tier.bytes_filled";
/// Read-path promotions into this tier.
pub const TIER_PROMOTIONS: &str = "tier.promotions";
/// Spills demoted into this tier from above.
pub const TIER_DEMOTIONS: &str = "tier.demotions";
/// Entries evicted from this tier.
pub const TIER_EVICTIONS: &str = "tier.evictions";
/// Bytes evicted from this tier.
pub const TIER_BYTES_EVICTED: &str = "tier.bytes_evicted";
/// Per-read service latency distribution (ns), hits only.
pub const TIER_READ_LATENCY: &str = "tier.read_latency_ns";

// --- Resilience counters (`ResilienceStats` view) ---

/// Reads attempted through the resilient source.
pub const RES_READS: &str = "resilience.reads";
/// Retried attempts.
pub const RES_RETRIES: &str = "resilience.retries";
/// Reads that exhausted their retry budget.
pub const RES_EXHAUSTED: &str = "resilience.exhausted";
/// Hedged requests fired.
pub const RES_HEDGES_FIRED: &str = "resilience.hedges_fired";
/// Hedged requests that won the race.
pub const RES_HEDGES_WON: &str = "resilience.hedges_won";
/// Attempts that missed their deadline.
pub const RES_DEADLINE_MISSES: &str = "resilience.deadline_misses";
/// Attempts rejected by origin throttling.
pub const RES_THROTTLED: &str = "resilience.throttled";
/// Reads rejected while the breaker was open.
pub const BREAKER_REJECTIONS: &str = "breaker.rejections";
/// Breaker transitions to open.
pub const BREAKER_TO_OPEN: &str = "breaker.to_open";
/// Breaker transitions to half-open.
pub const BREAKER_TO_HALF_OPEN: &str = "breaker.to_half_open";
/// Breaker transitions to closed.
pub const BREAKER_TO_CLOSED: &str = "breaker.to_closed";
/// End-to-end resilient read latency distribution (ns).
pub const RES_READ_LATENCY: &str = "resilience.read_latency_ns";

// --- PFS counters (`PfsStats` view) ---

/// PFS sample reads.
pub const PFS_READS: &str = "pfs.reads";
/// PFS bytes read.
pub const PFS_BYTES_READ: &str = "pfs.bytes_read";
/// PFS sample writes.
pub const PFS_WRITES: &str = "pfs.writes";
/// PFS bytes written.
pub const PFS_BYTES_WRITTEN: &str = "pfs.bytes_written";

// --- Staging counters (`StagingStats` view) ---

/// Samples pushed into the staging buffer.
pub const STAGING_PUSHED: &str = "staging.pushed";
/// Samples popped from the staging buffer.
pub const STAGING_POPPED: &str = "staging.popped";
/// Bytes currently buffered (gauge).
pub const STAGING_USED_BYTES: &str = "staging.used_bytes";

// --- Simulator (`sim.*`) ---
// Labelled `loc=<staging|local|remote|pfs>`: the fetch source the
// policy selected, priced on the model clock.

/// Modelled fetches by source.
pub const SIM_FETCH: &str = "sim.fetch";

// --- Trace event names (categories: worker/tier/resilience/elastic/sim) ---

/// Span: one staging fetch, arg `served` ∈ local/remote/pfs.
pub const EV_FETCH: &str = "fetch";
/// Span: the consumer stalled waiting on the staging buffer.
pub const EV_STALL: &str = "staging_stall";
/// Instant: circuit breaker opened.
pub const EV_BREAKER_OPEN: &str = "breaker_open";
/// Instant: circuit breaker probing (half-open).
pub const EV_BREAKER_HALF_OPEN: &str = "breaker_half_open";
/// Instant: circuit breaker closed.
pub const EV_BREAKER_CLOSED: &str = "breaker_closed";
/// Instant: a hedged request was fired.
pub const EV_HEDGE_FIRED: &str = "hedge_fired";
/// Instant: membership change triggered an incremental replan.
pub const EV_REPLAN: &str = "replan";
/// Instant: a crash fault tore the worker set down.
pub const EV_CRASH: &str = "crash";
/// Span: the recovery barrier (relaunch to all-ranks-ready).
pub const EV_RECOVERY_BARRIER: &str = "recovery_barrier";
/// Instant: an epoch boundary (simulator and runtime).
pub const EV_EPOCH: &str = "epoch";
