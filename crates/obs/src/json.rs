//! The workspace's built-in JSON value: one serializer shared by the
//! bench reports, the telemetry snapshot/JSONL emitter, and the Chrome
//! trace exporter (the workspace is offline, so this is a small
//! built-in rather than a serde dependency).
//!
//! Object keys keep insertion order, so emitted files diff cleanly
//! between runs. A matching recursive-descent [`Json::parse`] lets
//! self-checking examples validate the artifacts they emit.

use std::fmt::Write as _;

/// A minimal JSON value for machine-readable reports and telemetry.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers serialize as).
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Self {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key in an object (`None` on non-objects and misses).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Serializes on one line with no whitespace (for JSON-lines
    /// telemetry streams, one snapshot per line).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None);
        out
    }

    /// Shared renderer: `indent: Some(level)` pretty-prints, `None`
    /// packs everything on one line.
    fn render_into(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Round-trippable and compact: integers print bare.
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                    }
                    item.render_into(out, indent.map(|l| l + 1));
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level));
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                    }
                    Json::Str(k.clone()).render_into(out, indent);
                    out.push_str(if indent.is_some() { ": " } else { ":" });
                    v.render_into(out, indent.map(|l| l + 1));
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level));
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset [`render`](Self::render)
    /// emits: no exponent-free integer distinction, `\uXXXX` escapes
    /// limited to the Basic Multilingual Plane).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Self {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let v = Json::obj([
            ("figure", Json::from("fig2")),
            ("count", Json::from(3u64)),
            ("ratio", Json::Num(1.5)),
            (
                "tenants",
                Json::Arr(vec![Json::obj([("name", Json::from("a"))])]),
            ),
            ("empty", Json::Arr(vec![])),
            ("none", Json::Null),
            ("flag", Json::Bool(true)),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_compact()).unwrap(), v);
    }

    #[test]
    fn compact_is_single_line() {
        let v = Json::obj([
            ("a", Json::from(1u64)),
            ("b", Json::Arr(vec![Json::from(2u64), Json::Null])),
        ]);
        let s = v.render_compact();
        assert!(!s.contains('\n'));
        assert_eq!(s, r#"{"a":1,"b":[2,null]}"#);
    }

    #[test]
    fn parse_escapes_and_numbers() {
        let v = Json::parse(r#"{"s":"a\"b\\c\ndA","x":-1.5e2,"y":7}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\ndA");
        assert_eq!(v.get("x").unwrap().as_num().unwrap(), -150.0);
        assert_eq!(v.get("y").unwrap().as_num().unwrap(), 7.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("a", Json::Arr(vec![Json::from(1u64)]))]);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("b").is_none());
        assert!(v.as_num().is_none());
    }
}
