//! The lock-free metrics registry: named counters, gauges, and
//! log-bucketed latency histograms with hierarchical labels.
//!
//! Registration (name → handle) takes a registry lock once; after that
//! every update is a relaxed atomic on a cheap-clone handle — the hot
//! fetch path never touches a lock. A [`Registry::noop`] registry hands
//! out disconnected handles whose updates compile to a branch on a
//! `None`, so instrumentation can stay in place unconditionally (the
//! `obs_overhead` bench pins the cost of the active path at <5%).

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Label pairs attached to a metric, ordered outermost scope first
/// (e.g. `tenant`, then `rank`, then `tier`).
pub type Labels = Vec<(String, String)>;

/// A metric's identity: dotted name plus its labels.
pub(crate) type MetricKey = (String, Labels);

#[derive(Debug, Default)]
struct Inner {
    counters: RwLock<HashMap<MetricKey, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<MetricKey, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<MetricKey, Arc<HistogramCore>>>,
}

/// A handle to a metrics registry (or to nothing, for the no-op mode).
///
/// Cloning is cheap (an `Arc` plus the scope labels); scoping with
/// [`Registry::scoped`] derives a child handle whose registrations all
/// carry additional label pairs, which is how the cluster runtime gives
/// every tenant (and every rank within it) its own labelled slice of
/// one shared registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
    scope: Arc<Labels>,
}

impl Registry {
    /// A fresh, active registry.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(Inner::default())),
            scope: Arc::new(Vec::new()),
        }
    }

    /// A disconnected registry: every handle it hands out is a no-op.
    pub fn noop() -> Self {
        Self {
            inner: None,
            scope: Arc::new(Vec::new()),
        }
    }

    /// Whether this handle reaches a live registry.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether two handles reach the same underlying registry.
    pub fn same_registry(&self, other: &Registry) -> bool {
        match (&self.inner, &other.inner) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// A child handle whose registrations carry `labels` in addition to
    /// (and nested under) this handle's scope.
    pub fn scoped(&self, labels: impl IntoIterator<Item = (&'static str, String)>) -> Registry {
        let mut scope = (*self.scope).clone();
        scope.extend(labels.into_iter().map(|(k, v)| (k.to_string(), v)));
        Registry {
            inner: self.inner.clone(),
            scope: Arc::new(scope),
        }
    }

    /// This handle's scope labels.
    pub fn scope(&self) -> &Labels {
        &self.scope
    }

    fn key(&self, name: &str, extra: &[(&str, &str)]) -> MetricKey {
        let mut labels = (*self.scope).clone();
        labels.extend(extra.iter().map(|(k, v)| (k.to_string(), v.to_string())));
        (name.to_string(), labels)
    }

    /// Registers (or retrieves) the counter `name` under this scope.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Registers (or retrieves) a counter with extra label pairs.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter(None);
        };
        let key = self.key(name, labels);
        if let Some(c) = inner.counters.read().get(&key) {
            return Counter(Some(Arc::clone(c)));
        }
        let mut map = inner.counters.write();
        Counter(Some(Arc::clone(map.entry(key).or_default())))
    }

    /// Registers (or retrieves) the gauge `name` under this scope.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Registers (or retrieves) a gauge with extra label pairs.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge(None);
        };
        let key = self.key(name, labels);
        if let Some(g) = inner.gauges.read().get(&key) {
            return Gauge(Some(Arc::clone(g)));
        }
        let mut map = inner.gauges.write();
        Gauge(Some(Arc::clone(map.entry(key).or_default())))
    }

    /// Registers (or retrieves) the histogram `name` under this scope.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Registers (or retrieves) a histogram with extra label pairs.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram(None);
        };
        let key = self.key(name, labels);
        if let Some(h) = inner.histograms.read().get(&key) {
            return Histogram(Some(Arc::clone(h)));
        }
        let mut map = inner.histograms.write();
        Histogram(Some(Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(HistogramCore::new())),
        )))
    }

    /// A point-in-time view of every metric in the registry, sorted by
    /// `(name, labels)` for deterministic emission. Concurrent writers
    /// keep running — each value is an independent relaxed load, so the
    /// snapshot is consistent-enough for reporting (per-metric monotone
    /// across successive snapshots; asserted by the telemetry tests).
    pub fn snapshot(&self) -> crate::snapshot::Snapshot {
        crate::snapshot::Snapshot::capture(self)
    }

    pub(crate) fn visit_counters(&self, mut f: impl FnMut(&MetricKey, u64)) {
        if let Some(inner) = &self.inner {
            for (k, v) in inner.counters.read().iter() {
                f(k, v.load(Ordering::Relaxed));
            }
        }
    }

    pub(crate) fn visit_gauges(&self, mut f: impl FnMut(&MetricKey, u64)) {
        if let Some(inner) = &self.inner {
            for (k, v) in inner.gauges.read().iter() {
                f(k, v.load(Ordering::Relaxed));
            }
        }
    }

    pub(crate) fn visit_histograms(&self, mut f: impl FnMut(&MetricKey, HistogramSnapshot)) {
        if let Some(inner) = &self.inner {
            for (k, v) in inner.histograms.read().iter() {
                f(k, v.snapshot());
            }
        }
    }
}

/// A monotone event counter (no-op when disconnected).
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A disconnected counter (all updates vanish, reads are 0).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Whether updates reach a live registry.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (0 when disconnected).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value / high-water-mark gauge (no-op when disconnected).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A disconnected gauge.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Whether updates reach a live registry.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the value to at least `v` (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The current value (0 when disconnected).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Bucket count: bucket 0 holds the value 0, bucket `i ≥ 1` holds
/// values whose bit length is `i`, i.e. `[2^(i-1), 2^i)`. 65 buckets
/// cover the whole `u64` range at power-of-two resolution.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index recording `value` increments.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (inclusive upper edge);
/// quantiles report this edge, clamped to the observed maximum.
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= 64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A log-bucketed latency/size histogram (no-op when disconnected).
///
/// Recording is four relaxed atomic operations; quantiles come from the
/// bucket counts at snapshot time.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A disconnected histogram.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Whether updates reach a live registry (callers gate timing
    /// setup — e.g. taking an `Instant` — on this).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// A point-in-time view (empty when disconnected).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |h| h.snapshot())
    }
}

/// A consistent-enough copy of one histogram's buckets and moments.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_of`] for the boundaries).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (wraps only past `u64::MAX`).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl HistogramSnapshot {
    /// The value at quantile `q ∈ [0, 1]`: the inclusive upper edge of
    /// the bucket holding the `ceil(q·count)`-th observation, clamped
    /// to the observed maximum (so `quantile(1.0) == max`). 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (upper bucket edge).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (upper bucket edge).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (upper bucket edge).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the exact recorded values (not bucket edges).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Accumulates another snapshot (bucket-wise; associative and
    /// commutative, asserted by the obs proptests).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            // Every bucket's inclusive upper edge maps back to it.
            assert_eq!(bucket_of(bucket_upper(i)), i);
        }
    }

    #[test]
    fn histogram_quantiles() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.p50() >= 2 && s.p50() <= 3);
        assert_eq!(s.quantile(0.0), 1);
        assert!((s.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn registry_returns_same_handle_for_same_key() {
        let r = Registry::new();
        let a = r.counter_with("x", &[("tier", "ram")]);
        let b = r.counter_with("x", &[("tier", "ram")]);
        let c = r.counter_with("x", &[("tier", "ssd")]);
        a.inc();
        b.inc();
        c.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn scoped_labels_nest() {
        let r = Registry::new();
        let tenant = r.scoped([("tenant", "a".to_string())]);
        let rank = tenant.scoped([("rank", "0".to_string())]);
        rank.counter("fetches").inc();
        let snap = r.snapshot();
        let entry = &snap.counters[0];
        assert_eq!(entry.name, "fetches");
        assert_eq!(
            entry.labels,
            vec![
                ("tenant".to_string(), "a".to_string()),
                ("rank".to_string(), "0".to_string())
            ]
        );
        assert_eq!(entry.value, 1);
    }

    #[test]
    fn noop_handles_are_inert() {
        let r = Registry::noop();
        assert!(!r.is_active());
        let c = r.counter("x");
        let g = r.gauge("y");
        let h = r.histogram("z");
        c.inc();
        g.record_max(9);
        h.record(5);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn gauge_semantics() {
        let r = Registry::new();
        let g = r.gauge("hwm");
        g.set(5);
        g.record_max(3);
        assert_eq!(g.get(), 5);
        g.record_max(8);
        assert_eq!(g.get(), 8);
    }
}
