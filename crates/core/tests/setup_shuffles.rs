//! Proves the O(E) setup guarantee end to end: building AND running a
//! full `Job` generates each epoch's shuffle exactly once, no matter
//! how many workers the job has.
//!
//! This file deliberately holds a single `#[test]` so the whole binary
//! runs it alone: `epoch_shuffles_generated()` is process-global, and
//! any concurrently running test that touches a `ShuffleSpec` would
//! make the exact-delta assertions flaky. Keep it that way.

use bytes::Bytes;
use nopfs_clairvoyance::sampler::epoch_shuffles_generated;
use nopfs_core::{Job, JobConfig};
use nopfs_perfmodel::presets::fig8_small_cluster;
use nopfs_util::timing::TimeScale;
use std::sync::Arc;

#[test]
fn job_setup_and_run_generate_each_epoch_shuffle_exactly_once() {
    // Worker counts spanning 1..8: the generation count must stay E,
    // independent of N (the old path cost O(N·E) per process and
    // O(N²·E) across ranks re-deriving each other's digests).
    for (workers, epochs) in [(1usize, 3u64), (2, 4), (4, 5), (8, 2)] {
        let mut sys = fig8_small_cluster();
        sys.workers = workers;
        sys.staging.capacity = 64 * 1_000;
        sys.staging.threads = 2;
        let sizes = Arc::new(vec![1_000u64; 64]);
        let config = JobConfig::new(41, epochs, 4, sys, TimeScale::new(1e-6));

        let before = epoch_shuffles_generated();
        let job = Job::new(config, Arc::clone(&sizes));
        let after_setup = epoch_shuffles_generated();
        assert_eq!(
            after_setup - before,
            epochs,
            "N={workers}: setup must generate each of the {epochs} epoch \
             shuffles exactly once"
        );
        assert_eq!(job.setup_stats().shuffle_generations, epochs);

        // Running the job (allgather verification, prefetchers, serving,
        // consumption) must not regenerate a single shuffle: workers
        // read the engine's cached digests and streams.
        let pfs = job.make_pfs();
        for (id, &s) in sizes.iter().enumerate() {
            pfs.put(id as u64, Bytes::from(vec![id as u8; s as usize]));
        }
        let consumed = job.run(&pfs, |w| w.by_ref().count() as u64);
        assert_eq!(consumed.iter().sum::<u64>(), 64 * epochs);
        assert_eq!(
            epoch_shuffles_generated(),
            after_setup,
            "N={workers}: running the job regenerated shuffles"
        );
    }
}
