//! Runtime statistics (the numbers behind Fig. 12).
//!
//! Each worker counts where its staging prefetches were served from
//! (local class, remote cache, PFS), how long the trainer stalled
//! waiting for the staging buffer, and how the progress heuristic
//! behaved (remote attempts that came back `NotCached` are the paper's
//! false positives). All counters are atomics updated by the prefetch
//! threads and snapshot by the consumer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared counters, updated lock-free from the worker's threads.
#[derive(Debug, Default)]
pub struct StatsCollector {
    local: AtomicU64,
    remote: AtomicU64,
    pfs: AtomicU64,
    prestage: AtomicU64,
    false_positives: AtomicU64,
    heuristic_skips: AtomicU64,
    pfs_errors: AtomicU64,
    stall_nanos: AtomicU64,
    consumed: AtomicU64,
}

impl StatsCollector {
    /// A fresh collector behind an [`Arc`].
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub fn count_local(&self) {
        self.local.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_remote(&self) {
        self.remote.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_pfs(&self) {
        self.pfs.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_prestage(&self) {
        self.prestage.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_false_positive(&self) {
        self.false_positives.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_heuristic_skip(&self) {
        self.heuristic_skips.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_pfs_error(&self) {
        self.pfs_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_stall(&self, d: Duration) {
        self.stall_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub fn count_consumed(&self) {
        self.consumed.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            local_fetches: self.local.load(Ordering::Relaxed),
            remote_fetches: self.remote.load(Ordering::Relaxed),
            pfs_fetches: self.pfs.load(Ordering::Relaxed),
            prestage_fetches: self.prestage.load(Ordering::Relaxed),
            false_positives: self.false_positives.load(Ordering::Relaxed),
            heuristic_skips: self.heuristic_skips.load(Ordering::Relaxed),
            pfs_errors: self.pfs_errors.load(Ordering::Relaxed),
            stall_time: Duration::from_nanos(self.stall_nanos.load(Ordering::Relaxed)),
            samples_consumed: self.consumed.load(Ordering::Relaxed),
        }
    }
}

/// Statistics of the clairvoyant setup phase (the job-level counterpart
/// of the per-worker runtime counters).
///
/// `shuffle_generations` is the load-bearing number: the single-pass
/// engine generates each epoch's shuffle exactly once, so a correct
/// setup records exactly `E` generations no matter how many workers the
/// job has. Tests assert this; the `micro` bench quantifies the wall
/// time it saves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetupStats {
    /// Epoch shuffles generated during setup (always `E` on the
    /// single-pass path).
    pub shuffle_generations: u64,
    /// Wall time of the whole clairvoyant precomputation (engine pass
    /// plus placement).
    pub setup_time: Duration,
}

/// A point-in-time view of one worker's I/O statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Staging fetches served from a local storage class.
    pub local_fetches: u64,
    /// Staging fetches served from a remote worker's cache.
    pub remote_fetches: u64,
    /// Staging fetches served from the PFS.
    pub pfs_fetches: u64,
    /// Samples loaded from the PFS during a non-overlapped prestaging
    /// phase (sharding/preloading policies; excluded from the staging
    /// fetch counts, matching the simulator's accounting).
    pub prestage_fetches: u64,
    /// Remote requests answered `NotCached` (progress-heuristic false
    /// positives; each also produced a PFS fetch).
    pub false_positives: u64,
    /// Remote fetches not attempted because the heuristic said the
    /// holder had not prefetched the sample yet.
    pub heuristic_skips: u64,
    /// PFS read errors that were retried.
    pub pfs_errors: u64,
    /// Total time the consumer stalled waiting on the staging buffer.
    pub stall_time: Duration,
    /// Samples delivered to the consumer.
    pub samples_consumed: u64,
}

impl WorkerStats {
    /// Total staging fetches.
    pub fn total_fetches(&self) -> u64 {
        self.local_fetches + self.remote_fetches + self.pfs_fetches
    }

    /// `(local, remote, pfs)` fetch fractions (zeros when nothing was
    /// fetched).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total_fetches();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.local_fetches as f64 / t as f64,
            self.remote_fetches as f64 / t as f64,
            self.pfs_fetches as f64 / t as f64,
        )
    }

    /// Merges per-worker stats into cluster totals.
    pub fn merge(&mut self, other: &WorkerStats) {
        self.local_fetches += other.local_fetches;
        self.remote_fetches += other.remote_fetches;
        self.pfs_fetches += other.pfs_fetches;
        self.prestage_fetches += other.prestage_fetches;
        self.false_positives += other.false_positives;
        self.heuristic_skips += other.heuristic_skips;
        self.pfs_errors += other.pfs_errors;
        self.stall_time += other.stall_time;
        self.samples_consumed += other.samples_consumed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = StatsCollector::new();
        c.count_local();
        c.count_local();
        c.count_remote();
        c.count_pfs();
        c.count_false_positive();
        c.count_heuristic_skip();
        c.count_pfs_error();
        c.add_stall(Duration::from_millis(5));
        c.count_consumed();
        let s = c.snapshot();
        assert_eq!(s.local_fetches, 2);
        assert_eq!(s.remote_fetches, 1);
        assert_eq!(s.pfs_fetches, 1);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.heuristic_skips, 1);
        assert_eq!(s.pfs_errors, 1);
        assert_eq!(s.stall_time, Duration::from_millis(5));
        assert_eq!(s.samples_consumed, 1);
        assert_eq!(s.total_fetches(), 4);
    }

    #[test]
    fn fractions_sum_to_one_when_nonempty() {
        let c = StatsCollector::new();
        c.count_local();
        c.count_pfs();
        let (l, r, p) = c.snapshot().fractions();
        assert!((l + r + p - 1.0).abs() < 1e-12);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn empty_fractions_are_zero() {
        assert_eq!(
            StatsCollector::new().snapshot().fractions(),
            (0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn merge_totals() {
        let a = StatsCollector::new();
        a.count_local();
        let b = StatsCollector::new();
        b.count_pfs();
        b.add_stall(Duration::from_millis(2));
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.local_fetches, 1);
        assert_eq!(total.pfs_fetches, 1);
        assert_eq!(total.stall_time, Duration::from_millis(2));
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let c = StatsCollector::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.count_pfs();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().pfs_fetches, 40_000);
    }
}
