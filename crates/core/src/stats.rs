//! Runtime statistics (the numbers behind Fig. 12).
//!
//! Each worker counts where its staging prefetches were served from
//! (local class, remote cache, PFS), how long the trainer stalled
//! waiting for the staging buffer, and how the progress heuristic
//! behaved (remote attempts that came back `NotCached` are the paper's
//! false positives).
//!
//! The collector is a typed view over the `nopfs_obs` metrics registry:
//! each counter is a registered `worker.*` metric (see
//! [`nopfs_obs::names`]), so the same numbers surface in live telemetry
//! snapshots, and [`WorkerStats`] is just the point-in-time read. All
//! updates are relaxed atomics on pre-registered handles — the hot path
//! never locks.

use nopfs_obs::{names, Counter, Histogram, Registry};
use std::sync::Arc;
use std::time::Duration;

/// Shared counters, updated lock-free from the worker's threads; a
/// typed view over `worker.*` metrics in an obs registry.
///
/// The registry is cumulative: re-attaching a collector to names that
/// already exist (an elastic worker relaunched after a crash, a new
/// segment of the same rank) reuses the underlying counters. The
/// collector therefore snapshots a *baseline* at construction and
/// [`Self::snapshot`] reports deltas, so each collector's view covers
/// exactly its own lifetime while telemetry sees the running totals.
#[derive(Debug)]
pub struct StatsCollector {
    local: Counter,
    remote: Counter,
    pfs: Counter,
    prestage: Counter,
    false_positives: Counter,
    heuristic_skips: Counter,
    pfs_errors: Counter,
    stall_nanos: Counter,
    consumed: Counter,
    stall_latency: Histogram,
    /// Registry values at construction, subtracted from every snapshot.
    base: WorkerStats,
}

impl Default for StatsCollector {
    /// A collector over a fresh private registry.
    fn default() -> Self {
        Self::in_registry(&Registry::new())
    }
}

impl StatsCollector {
    /// A fresh collector behind an [`Arc`], backed by its own private
    /// registry (the solo-run shape; scoped runs use
    /// [`Self::in_registry`]).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A collector whose counters are registered in `registry` (with
    /// whatever scope labels the handle carries — the cluster runtime
    /// passes a tenant+rank-scoped handle here).
    pub fn in_registry(registry: &Registry) -> Self {
        let mut c = Self {
            local: registry.counter(names::WORKER_FETCH_LOCAL),
            remote: registry.counter(names::WORKER_FETCH_REMOTE),
            pfs: registry.counter(names::WORKER_FETCH_PFS),
            prestage: registry.counter(names::WORKER_FETCH_PRESTAGE),
            false_positives: registry.counter(names::WORKER_FALSE_POSITIVES),
            heuristic_skips: registry.counter(names::WORKER_HEURISTIC_SKIPS),
            pfs_errors: registry.counter(names::WORKER_PFS_ERRORS),
            stall_nanos: registry.counter(names::WORKER_STALL_NANOS),
            consumed: registry.counter(names::WORKER_CONSUMED),
            stall_latency: registry.histogram(names::WORKER_STALL_LATENCY),
            base: WorkerStats::default(),
        };
        c.base = c.totals();
        c
    }

    pub fn count_local(&self) {
        self.local.inc();
    }

    pub fn count_remote(&self) {
        self.remote.inc();
    }

    pub fn count_pfs(&self) {
        self.pfs.inc();
    }

    pub fn count_prestage(&self) {
        self.prestage.inc();
    }

    pub fn count_false_positive(&self) {
        self.false_positives.inc();
    }

    pub fn count_heuristic_skip(&self) {
        self.heuristic_skips.inc();
    }

    pub fn count_pfs_error(&self) {
        self.pfs_errors.inc();
    }

    pub fn add_stall(&self, d: Duration) {
        let nanos = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.stall_nanos.add(nanos);
        self.stall_latency.record(nanos);
    }

    pub fn count_consumed(&self) {
        self.consumed.inc();
    }

    /// Raw cumulative registry values (no baseline subtraction).
    fn totals(&self) -> WorkerStats {
        WorkerStats {
            local_fetches: self.local.get(),
            remote_fetches: self.remote.get(),
            pfs_fetches: self.pfs.get(),
            prestage_fetches: self.prestage.get(),
            false_positives: self.false_positives.get(),
            heuristic_skips: self.heuristic_skips.get(),
            pfs_errors: self.pfs_errors.get(),
            stall_time: Duration::from_nanos(self.stall_nanos.get()),
            samples_consumed: self.consumed.get(),
        }
    }

    /// A consistent-enough snapshot for reporting: registry values
    /// since this collector was constructed.
    pub fn snapshot(&self) -> WorkerStats {
        let t = self.totals();
        WorkerStats {
            local_fetches: t.local_fetches - self.base.local_fetches,
            remote_fetches: t.remote_fetches - self.base.remote_fetches,
            pfs_fetches: t.pfs_fetches - self.base.pfs_fetches,
            prestage_fetches: t.prestage_fetches - self.base.prestage_fetches,
            false_positives: t.false_positives - self.base.false_positives,
            heuristic_skips: t.heuristic_skips - self.base.heuristic_skips,
            pfs_errors: t.pfs_errors - self.base.pfs_errors,
            stall_time: t.stall_time.saturating_sub(self.base.stall_time),
            samples_consumed: t.samples_consumed - self.base.samples_consumed,
        }
    }
}

/// Statistics of the clairvoyant setup phase (the job-level counterpart
/// of the per-worker runtime counters).
///
/// `shuffle_generations` is the load-bearing number: the single-pass
/// engine generates each epoch's shuffle exactly once, so a correct
/// setup records exactly `E` generations no matter how many workers the
/// job has. Tests assert this; the `micro` bench quantifies the wall
/// time it saves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetupStats {
    /// Epoch shuffles generated during setup (always `E` on the
    /// single-pass path).
    pub shuffle_generations: u64,
    /// Wall time of the whole clairvoyant precomputation (engine pass
    /// plus placement).
    pub setup_time: Duration,
}

/// A point-in-time view of one worker's I/O statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Staging fetches served from a local storage class.
    pub local_fetches: u64,
    /// Staging fetches served from a remote worker's cache.
    pub remote_fetches: u64,
    /// Staging fetches served from the PFS.
    pub pfs_fetches: u64,
    /// Samples loaded from the PFS during a non-overlapped prestaging
    /// phase (sharding/preloading policies; excluded from the staging
    /// fetch counts, matching the simulator's accounting).
    pub prestage_fetches: u64,
    /// Remote requests answered `NotCached` (progress-heuristic false
    /// positives; each also produced a PFS fetch).
    pub false_positives: u64,
    /// Remote fetches not attempted because the heuristic said the
    /// holder had not prefetched the sample yet.
    pub heuristic_skips: u64,
    /// PFS read errors that were retried.
    pub pfs_errors: u64,
    /// Total time the consumer stalled waiting on the staging buffer.
    pub stall_time: Duration,
    /// Samples delivered to the consumer.
    pub samples_consumed: u64,
}

impl WorkerStats {
    /// Total staging fetches.
    pub fn total_fetches(&self) -> u64 {
        self.local_fetches + self.remote_fetches + self.pfs_fetches
    }

    /// `(local, remote, pfs)` fetch fractions (zeros when nothing was
    /// fetched).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total_fetches();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.local_fetches as f64 / t as f64,
            self.remote_fetches as f64 / t as f64,
            self.pfs_fetches as f64 / t as f64,
        )
    }

    /// Merges per-worker stats into cluster totals.
    pub fn merge(&mut self, other: &WorkerStats) {
        self.local_fetches += other.local_fetches;
        self.remote_fetches += other.remote_fetches;
        self.pfs_fetches += other.pfs_fetches;
        self.prestage_fetches += other.prestage_fetches;
        self.false_positives += other.false_positives;
        self.heuristic_skips += other.heuristic_skips;
        self.pfs_errors += other.pfs_errors;
        self.stall_time += other.stall_time;
        self.samples_consumed += other.samples_consumed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = StatsCollector::new();
        c.count_local();
        c.count_local();
        c.count_remote();
        c.count_pfs();
        c.count_false_positive();
        c.count_heuristic_skip();
        c.count_pfs_error();
        c.add_stall(Duration::from_millis(5));
        c.count_consumed();
        let s = c.snapshot();
        assert_eq!(s.local_fetches, 2);
        assert_eq!(s.remote_fetches, 1);
        assert_eq!(s.pfs_fetches, 1);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.heuristic_skips, 1);
        assert_eq!(s.pfs_errors, 1);
        assert_eq!(s.stall_time, Duration::from_millis(5));
        assert_eq!(s.samples_consumed, 1);
        assert_eq!(s.total_fetches(), 4);
    }

    #[test]
    fn fractions_sum_to_one_when_nonempty() {
        let c = StatsCollector::new();
        c.count_local();
        c.count_pfs();
        let (l, r, p) = c.snapshot().fractions();
        assert!((l + r + p - 1.0).abs() < 1e-12);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn empty_fractions_are_zero() {
        assert_eq!(
            StatsCollector::new().snapshot().fractions(),
            (0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn merge_totals() {
        let a = StatsCollector::new();
        a.count_local();
        let b = StatsCollector::new();
        b.count_pfs();
        b.add_stall(Duration::from_millis(2));
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.local_fetches, 1);
        assert_eq!(total.pfs_fetches, 1);
        assert_eq!(total.stall_time, Duration::from_millis(2));
    }

    #[test]
    fn collector_is_a_registry_view() {
        let registry = Registry::new().scoped([("rank", "3".to_string())]);
        let c = StatsCollector::in_registry(&registry);
        c.count_local();
        c.count_local();
        c.add_stall(Duration::from_micros(10));
        // The same numbers surface through the registry snapshot…
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(&format!(
                "{}{{rank=3}}",
                nopfs_obs::names::WORKER_FETCH_LOCAL
            )),
            Some(2)
        );
        assert_eq!(
            snap.histogram(&format!(
                "{}{{rank=3}}",
                nopfs_obs::names::WORKER_STALL_LATENCY
            ))
            .unwrap()
            .count,
            1
        );
        // …and through the typed view.
        assert_eq!(c.snapshot().local_fetches, 2);
        assert_eq!(c.snapshot().stall_time, Duration::from_micros(10));
    }

    #[test]
    fn reattached_collector_reports_only_its_own_lifetime() {
        // An elastic worker relaunched after a crash re-registers the
        // same metric names; its view must start from zero while the
        // registry keeps the cumulative total.
        let registry = Registry::new();
        let first = StatsCollector::in_registry(&registry);
        first.count_local();
        first.count_local();
        let second = StatsCollector::in_registry(&registry);
        second.count_local();
        assert_eq!(first.snapshot().local_fetches, 3, "shared counter");
        assert_eq!(second.snapshot().local_fetches, 1, "delta view");
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total(names::WORKER_FETCH_LOCAL), 3);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let c = StatsCollector::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.count_pfs();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().pfs_fetches, 40_000);
    }
}
