//! The per-worker runtime: prefetcher threads, the serving loop, and
//! the iterator-style consumer handle.
//!
//! Each worker (one per rank, as in the paper's MPI deployment) runs:
//!
//! - **class prefetchers** — one per storage class, draining the
//!   clairvoyant assignment list in first-access order from the PFS
//!   into the class's backend (the per-class thread counts `p_j` are
//!   modelled by the backends' aggregate throughput curves);
//! - **staging prefetchers** — `p_0` threads that walk the access
//!   stream `R`, pick the fastest source for each sample via the
//!   performance model, and fill the position-ordered staging buffer;
//! - **a serving loop** — answers other workers' sample requests from
//!   the local caches, paying the modelled wire cost;
//! - **the consumer** — [`WorkerHandle`], the training loop's
//!   iterator over `(sample id, bytes)` in exact `R` order.

use crate::config::JobConfig;
use crate::msg::{Msg, RemoteReply};
use crate::stats::{SetupStats, StatsCollector, WorkerStats};
use crate::SampleId;
use bytes::Bytes;
use nopfs_clairvoyance::placement::GlobalPlacement;
use nopfs_clairvoyance::sampler::ShuffleSpec;
use nopfs_net::Endpoint;
use nopfs_obs::{names, ObsCtx};
use nopfs_perfmodel::Location;
use nopfs_pfs::Pfs;
use nopfs_storage::{
    ReorderStage, ResilienceStats, SourceError, SourceHealth, TierStack, TierStats,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Job-wide immutable state shared by all of a worker's threads.
///
/// The digests, streams, and placement are the single-pass engine's
/// artifacts, computed once in `Job::new`; launching a worker reads
/// them instead of regenerating any shuffle.
pub(crate) struct Shared {
    pub config: JobConfig,
    pub sizes: Arc<Vec<u64>>,
    pub placement: Arc<GlobalPlacement>,
    pub spec: ShuffleSpec,
    /// `class_index[w][k]` = position of sample `k` in worker `w`'s
    /// class prefetch list (`u32::MAX` when unassigned) — the input to
    /// the remote-progress heuristic.
    pub class_index: Vec<Arc<Vec<u32>>>,
    /// Per-worker access-stream digests from the setup pass; the setup
    /// allgather verifies every rank's claimed digest against these
    /// cached values (the runtime's clairvoyance check).
    pub digests: Vec<u64>,
    /// Per-worker materialized access streams from the setup pass.
    pub streams: Vec<Arc<Vec<SampleId>>>,
    /// Setup-phase statistics (shuffle generations, wall time).
    pub setup: SetupStats,
}

/// Samples per vectored class-prefetcher fill chunk: deep enough to
/// coalesce adjacent origin ranges, shallow enough that progress (and
/// the stop flag) is observed promptly.
const FILL_BATCH: usize = 16;

/// Stream positions a staging prefetcher claims per round. Each thread
/// buffers at most this many fetched samples before staging them, so
/// the claim size also bounds out-of-order memory beyond the stage's
/// own capacity.
const STAGE_BATCH: u64 = 8;

/// Reads `id` from the hierarchy's origin with patient, bounded
/// retries.
///
/// The origin may now be a resilient cloud chain whose circuit breaker
/// fails reads fast with [`SourceError::Unavailable`] while a brownout
/// lasts; those windows *pass*, so this loop waits them out with a
/// small capped backoff instead of escalating. The wall-clock budget
/// keeps liveness: a loader that cannot make progress for a minute is
/// broken, not browned out.
///
/// # Panics
/// Panics when the object is missing ([`SourceError::NotFound`] — the
/// dataset itself is broken, which no loader policy can paper over) or
/// when reads are still failing after the wall-clock budget.
fn origin_read_retry(tiers: &TierStack, id: SampleId, stats: &StatsCollector) -> Bytes {
    const BUDGET: std::time::Duration = std::time::Duration::from_secs(60);
    let start = Instant::now();
    let mut attempt = 0u32;
    loop {
        match tiers.read_origin(id) {
            Ok(data) => return data,
            Err(SourceError::NotFound(_)) => {
                panic!("sample {id} missing from the PFS: dataset not materialized?")
            }
            Err(e) => {
                stats.count_pfs_error();
                if start.elapsed() >= BUDGET {
                    panic!("origin read of sample {id} still failing after {BUDGET:?}: {e}");
                }
                attempt += 1;
                // Escalate 50µs → 2ms, then hold: long enough to drain
                // transient bursts, short enough that breaker reopening
                // after a brownout is observed almost immediately.
                let us = (50u64 << attempt.min(10)).min(2_000);
                std::thread::sleep(std::time::Duration::from_micros(us));
            }
        }
    }
}

/// Vectored [`origin_read_retry`]: the whole group goes down to the
/// origin as **one** [`TierStack::read_origin_many`] call (so a
/// coalescing origin merges adjacent ids into fewer requests and the
/// PFS counts the batch as one reader stream), then any id that failed
/// transiently falls back to the patient single-read retry loop.
/// Returns the bytes in input order.
///
/// # Panics
/// Panics when an object is missing or still failing after the retry
/// budget, exactly like [`origin_read_retry`].
fn origin_read_many_retry(
    tiers: &TierStack,
    ids: &[SampleId],
    stats: &StatsCollector,
) -> Vec<Bytes> {
    tiers
        .read_origin_many(ids)
        .into_iter()
        .zip(ids)
        .map(|(r, &id)| match r {
            Ok(data) => data,
            Err(SourceError::NotFound(_)) => {
                panic!("sample {id} missing from the PFS: dataset not materialized?")
            }
            Err(_) => {
                stats.count_pfs_error();
                origin_read_retry(tiers, id, stats)
            }
        })
        .collect()
}

struct WorkerCtx {
    rank: usize,
    shared: Arc<Shared>,
    /// The injected PFS handle (also the hierarchy's origin); kept for
    /// live contention observation (`reader_count`).
    pfs: Pfs,
    endpoint: Arc<Endpoint<Msg>>,
    /// The worker's storage hierarchy: one tier per storage class
    /// (tier index = class index), the PFS as origin. Owns the local
    /// cache catalog and per-tier statistics.
    tiers: TierStack,
    stats: Arc<StatsCollector>,
    stop: Arc<AtomicBool>,
    /// Per-class prefetch progress (index into the class list).
    progress: Arc<Vec<AtomicU64>>,
    /// For each sample this worker holds, the holder rank to ask per
    /// class is this worker itself; for remote fetches we need the
    /// rank of the fastest holder. Derived from placement on the fly.
    stage: ReorderStage,
    /// Rank-scoped observability context: the registry the collector
    /// and tier counters registered into, plus the tracer fetch/stall
    /// spans land in.
    obs: ObsCtx,
}

impl WorkerCtx {
    /// Vectored staging fetch: per-sample source selection via
    /// [`Self::staging_probe`], but every sample that resolves to
    /// the origin is fetched in **one** batched
    /// [`TierStack::read_origin_many`] round-trip instead of one origin
    /// read (and one `t(γ)` reader registration) per sample. Bytes come
    /// back in input order; statistics, self-healing fills, and trace
    /// spans are per sample, unchanged.
    fn fetch_many_for_staging(&self, ks: &[SampleId]) -> Vec<Bytes> {
        let t0 = self.obs.tracer.is_active().then(Instant::now);
        // Phase 1: pick a source per sample; local and remote samples
        // are served immediately, origin-destined ones are queued.
        let mut served: Vec<Option<(Bytes, &'static str)>> = Vec::with_capacity(ks.len());
        let mut needs_fill = Vec::with_capacity(ks.len());
        let mut origin_pos: Vec<usize> = Vec::new();
        for (i, &k) in ks.iter().enumerate() {
            let (s, nf) = self.staging_probe(k);
            if s.is_none() {
                origin_pos.push(i);
            }
            served.push(s);
            needs_fill.push(nf);
        }
        // Phase 2: one vectored origin read for everything that needs it.
        if !origin_pos.is_empty() {
            let ids: Vec<SampleId> = origin_pos.iter().map(|&i| ks[i]).collect();
            let datas = origin_read_many_retry(&self.tiers, &ids, &self.stats);
            for (&i, data) in origin_pos.iter().zip(datas) {
                served[i] = Some((data, "pfs"));
            }
        }
        // Phase 3: self-healing fills and trace spans, in input order.
        ks.iter()
            .zip(served.into_iter().zip(needs_fill))
            .map(|(&k, (s, nf))| {
                let (data, who) = s.expect("every staged sample is fetched");
                if nf {
                    self.self_healing_fill(k, &data);
                }
                if let Some(t0) = t0 {
                    self.obs.tracer.complete(
                        names::EV_FETCH,
                        "worker",
                        t0,
                        vec![("sample", k.into()), ("served", who.into())],
                    );
                }
                data
            })
            .collect()
    }

    /// Self-healing fill: if this sample is assigned to one of our
    /// tiers but the class prefetcher has not cached it yet, the
    /// staging fetch doubles as the (pinned) fill.
    fn self_healing_fill(&self, k: SampleId, data: &Bytes) {
        if let Some(c) = self.shared.placement.assignment(self.rank).class_of(k) {
            let _ = self.tiers.fill(c as usize, k, data.clone());
        }
    }

    /// Phase 1 of a staging fetch: the source decision, plus the bytes
    /// when a local tier or a remote peer can serve them. `None` means
    /// the origin must supply the bytes (already counted as a PFS
    /// fetch); the `bool` is whether the self-healing fill applies
    /// (the sample was not cataloged locally when the fetch started).
    fn staging_probe(&self, k: SampleId) -> (Option<(Bytes, &'static str)>, bool) {
        let sys = &self.shared.config.system;
        let size = self.shared.sizes[k as usize];

        let local_tier = self.tiers.locate(k);
        // Remote candidates pass the progress heuristic: our own class-c
        // prefetcher's position is the proxy for the holder's (paper
        // Sec. 5.2.2 — load-balanced prefetching advances in lockstep).
        let mut best_remote: Option<(usize, u8)> = None;
        for &(o, c) in self.shared.placement.holders(k) {
            if o == self.rank {
                continue;
            }
            let idx = self.shared.class_index[o][k as usize];
            let my_progress = self
                .progress
                .get(c as usize)
                .map_or(0, |p| p.load(Ordering::Relaxed));
            if u64::from(idx) < my_progress {
                if best_remote.is_none_or(|(_, bc)| c < bc) {
                    best_remote = Some((o, c));
                }
            } else {
                self.stats.count_heuristic_skip();
            }
        }

        // Live PFS contention: the readers already in flight plus us.
        // The pick itself is the workspace-wide NoPFS selection rule —
        // the ordered-tier-list argmin (`select_source_tiered`) that
        // the simulator's NoPFS policy also funnels into, reached via
        // the degraded {local tier, remote tier, origin} wrapper: when
        // the origin's circuit breaker is open (health `Unavailable`),
        // the fetch steers to peers or local tiers instead of queueing
        // on a source that will fail fast anyway.
        let gamma = self.pfs.reader_count() + 1;
        let origin_ok = self.tiers.origin_health() != SourceHealth::Unavailable;
        let choice = nopfs_policy::decision::select_source_degraded(
            sys,
            local_tier.map(|t| t as u8),
            best_remote.map(|(_, c)| c),
            size,
            gamma,
            origin_ok,
        );

        let served = match choice {
            Location::Local(_) => match self.tiers.get_cached(k) {
                Some(d) => {
                    self.stats.count_local();
                    Some((d, "local"))
                }
                // Catalog raced an eviction (not expected under NoPFS's
                // no-eviction placement, but recoverable): `get_cached`
                // repaired the stale entry; go to the PFS for the bytes.
                None => {
                    self.stats.count_pfs();
                    None
                }
            },
            Location::Remote(_) => {
                let (owner, _) = best_remote.expect("remote choice implies a holder");
                match self.request_remote(owner, k) {
                    Some(d) => {
                        self.stats.count_remote();
                        Some((d, "remote"))
                    }
                    None => {
                        // Heuristic false positive: the holder had not
                        // prefetched the sample yet. Not an error.
                        self.stats.count_false_positive();
                        self.stats.count_pfs();
                        None
                    }
                }
            }
            Location::Pfs => {
                self.stats.count_pfs();
                None
            }
            Location::Staging => unreachable!("staging is never a fetch candidate"),
        };
        (served, local_tier.is_none())
    }

    fn request_remote(&self, owner: usize, k: SampleId) -> Option<Bytes> {
        let (tx, rx) = crossbeam::channel::bounded::<RemoteReply>(1);
        self.endpoint
            .send(
                owner,
                Msg::Request {
                    sample: k,
                    reply: tx,
                },
            )
            .ok()?;
        let reply = rx.recv().ok()?;
        debug_assert_eq!(reply.sample, k);
        reply.data
    }
}

/// The per-worker loader handle: the paper's `get`/iterator interface.
///
/// Yields `(sample id, bytes)` in exactly the clairvoyant access-stream
/// order. Created by [`crate::job::Job::run`].
pub struct WorkerHandle {
    ctx: Arc<WorkerCtx>,
    stream: Arc<Vec<SampleId>>,
    threads: Vec<JoinHandle<()>>,
    server: Option<JoinHandle<()>>,
    consumed: u64,
    epoch_len: u64,
    batch_size: usize,
    finished: bool,
}

impl WorkerHandle {
    pub(crate) fn launch(
        rank: usize,
        shared: Arc<Shared>,
        pfs: Pfs,
        endpoint: Endpoint<Msg>,
    ) -> Self {
        Self::launch_with_tiers(rank, shared, pfs, endpoint, None)
    }

    /// Like [`Self::launch`], but with an optional pre-built hierarchy:
    /// the elastic runtime hands surviving workers their still-warm
    /// [`TierStack`] across a recovery barrier (crashed ranks restart
    /// cold with a fresh stack), and wraps the origin in fault-injecting
    /// or retrying sources the worker need not know about.
    pub(crate) fn launch_with_tiers(
        rank: usize,
        shared: Arc<Shared>,
        pfs: Pfs,
        endpoint: Endpoint<Msg>,
        tiers: Option<TierStack>,
    ) -> Self {
        let endpoint = Arc::new(endpoint);
        let sys = &shared.config.system;
        let scale = shared.config.scale;

        // Setup allgather: exchange access-stream digests and verify
        // every rank's claim against the engine's cached digests — no
        // stream is re-derived here (the old per-rank recomputation
        // made setup O(N²·E·F) across the cluster).
        let my_digest = shared.digests[rank];
        let digests = endpoint
            .allgather(Msg::Digest(my_digest))
            .expect("setup allgather failed");
        for (o, msg) in digests.iter().enumerate() {
            let Msg::Digest(d) = msg else {
                panic!("unexpected setup message from rank {o}");
            };
            assert_eq!(
                *d, shared.digests[o],
                "worker {o}'s access stream diverged from the seed — clairvoyance broken"
            );
        }
        // The allgather requires exclusive use of the endpoints: a rank
        // that finished early could otherwise start its prefetchers and
        // inject sample requests into a peer still collecting digests.
        endpoint.barrier();

        // Rank-scoped observability: every metric this worker registers
        // (collector, tier counters) carries a `rank=<r>` label; trace
        // spans share the job-wide tracer.
        let obs = shared.config.obs.scoped([("rank", rank.to_string())]);

        // The worker's storage hierarchy: class tiers over the injected
        // PFS origin, behind the one tiered fetch API — or the handed-
        // over (still warm) stack of a surviving elastic worker.
        let tiers = tiers.unwrap_or_else(|| {
            crate::tiers::class_tier_stack_in_registry(
                sys,
                scale,
                Arc::new(pfs.clone()),
                &obs.registry,
            )
        });
        let stats = Arc::new(StatsCollector::in_registry(&obs.registry));
        let stop = Arc::new(AtomicBool::new(false));
        let progress = Arc::new(
            (0..sys.classes.len())
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>(),
        );
        let stage = ReorderStage::new_in_registry(sys.staging.capacity, &obs.registry);
        let stream = Arc::clone(&shared.streams[rank]);
        let epoch_len = shared.spec.worker_epoch_len(rank);

        let ctx = Arc::new(WorkerCtx {
            rank,
            shared: Arc::clone(&shared),
            pfs,
            endpoint,
            tiers,
            stats,
            stop,
            progress,
            stage,
            obs,
        });

        let mut threads = Vec::new();

        // Class prefetchers: one thread per cache tier, draining the
        // assignment in first-access order. Fills go down to the origin
        // in vectored chunks so a coalescing PFS merges adjacent ids
        // into fewer requests; progress advances per completed chunk
        // (conservative: the remote heuristic only sees finished work).
        for class in 0..ctx.tiers.cache_tiers() {
            let ctx = Arc::clone(&ctx);
            threads.push(std::thread::spawn(move || {
                let assignment = ctx.shared.placement.assignment(ctx.rank);
                let order = assignment.prefetch_order(class);
                let mut done = 0u64;
                for chunk in order.chunks(FILL_BATCH) {
                    if ctx.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let missing: Vec<SampleId> = chunk
                        .iter()
                        .copied()
                        .filter(|&k| ctx.tiers.locate(k).is_none())
                        .collect();
                    if !missing.is_empty() {
                        let datas = origin_read_many_retry(&ctx.tiers, &missing, &ctx.stats);
                        for (k, data) in missing.into_iter().zip(datas) {
                            let _ = ctx.tiers.fill(class, k, data);
                        }
                    }
                    done += chunk.len() as u64;
                    ctx.progress[class].store(done, Ordering::Relaxed);
                }
            }));
        }

        // Staging prefetchers: p0 threads each claiming a run of stream
        // positions per round, fetching the run through the vectored
        // staging path. Pushing a claimed run in ascending order keeps
        // the stage deadlock-free: the thread holding the globally next
        // position always pushes it first, and the stage always admits
        // the head position.
        let position = Arc::new(AtomicU64::new(0));
        for _ in 0..sys.staging.threads.max(1) {
            let ctx = Arc::clone(&ctx);
            let stream = Arc::clone(&stream);
            let position = Arc::clone(&position);
            threads.push(std::thread::spawn(move || 'rounds: loop {
                if ctx.stop.load(Ordering::Relaxed) {
                    break;
                }
                let base = position.fetch_add(STAGE_BATCH, Ordering::SeqCst);
                if base >= stream.len() as u64 {
                    break;
                }
                let end = (base + STAGE_BATCH).min(stream.len() as u64);
                let ks = &stream[base as usize..end as usize];
                let datas = ctx.fetch_many_for_staging(ks);
                for (off, (&k, data)) in ks.iter().zip(datas).enumerate() {
                    // Preprocess-and-store: the model's write_i(k). Each
                    // of the p0 threads pays it independently, so the
                    // aggregate preprocessing rate scales with the
                    // thread count, as in the performance model.
                    let wt = ctx.shared.config.system.write_time(data.len() as u64);
                    ctx.shared.config.scale.wait(wt);
                    if !ctx.stage.push(base + off as u64, k, data) {
                        break 'rounds; // stage closed
                    }
                }
            }));
        }

        // Serving loop: answer remote requests until shutdown.
        let server = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || {
                while let Ok(env) = ctx.endpoint.recv() {
                    match env.msg {
                        Msg::Request { sample, reply } => {
                            let data = ctx.tiers.get_cached(sample);
                            if let Some(d) = &data {
                                // Pay the wire cost of the payload.
                                ctx.endpoint.pace(d.len() as u64);
                            }
                            let _ = reply.send(RemoteReply { sample, data });
                        }
                        Msg::Shutdown => break,
                        Msg::Digest(_) => {
                            // Setup finished before this loop started.
                        }
                    }
                }
            })
        };

        Self {
            ctx,
            stream,
            threads,
            server: Some(server),
            consumed: 0,
            epoch_len,
            batch_size: shared.config.batch_size,
            finished: false,
        }
    }

    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.ctx.rank
    }

    /// Total samples this handle will yield over the whole run.
    pub fn len(&self) -> u64 {
        self.stream.len() as u64
    }

    /// Whether the run yields no samples (degenerate configurations).
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }

    /// Samples this worker consumes per epoch.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// The epoch of the *next* sample to be yielded.
    pub fn current_epoch(&self) -> u64 {
        self.consumed.checked_div(self.epoch_len).unwrap_or(0)
    }

    /// Next sample in access-stream order, blocking on the staging
    /// buffer; `None` once the run is exhausted. Blocked time is
    /// recorded as consumer stall.
    pub fn next_sample(&mut self) -> Option<(SampleId, Bytes)> {
        if self.consumed >= self.stream.len() as u64 {
            return None;
        }
        if self.epoch_len > 0 && self.consumed.is_multiple_of(self.epoch_len) {
            self.ctx.obs.tracer.instant(
                names::EV_EPOCH,
                "worker",
                vec![("epoch", self.current_epoch().into())],
            );
        }
        let t0 = Instant::now();
        let item = self.ctx.stage.pop()?;
        let stalled = t0.elapsed();
        if self.ctx.obs.tracer.is_active() && stalled > std::time::Duration::from_micros(50) {
            // Only material stalls become spans; sub-50µs pops are the
            // healthy case and would drown the ring.
            self.ctx.obs.tracer.complete(
                names::EV_STALL,
                "worker",
                t0,
                vec![("stall_us", (stalled.as_micros() as u64).into())],
            );
        }
        self.ctx.stats.add_stall(stalled);
        self.ctx.stats.count_consumed();
        self.consumed += 1;
        Some(item)
    }

    /// The configured per-worker mini-batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Next local mini-batch (up to `batch_size` samples, never
    /// crossing an epoch boundary); `None` once exhausted. Epoch
    /// semantics come from the workspace-shared
    /// [`crate::next_batch_len`].
    pub fn next_batch(&mut self) -> Option<Vec<(SampleId, Bytes)>> {
        let want = crate::next_batch_len(
            self.consumed,
            self.stream.len() as u64,
            self.epoch_len,
            self.batch_size,
        );
        if want == 0 {
            return None;
        }
        let mut batch = Vec::with_capacity(want);
        for _ in 0..want {
            match self.next_sample() {
                Some(item) => batch.push(item),
                None => break,
            }
        }
        if batch.is_empty() {
            None
        } else {
            Some(batch)
        }
    }

    /// Current I/O statistics snapshot.
    pub fn stats(&self) -> WorkerStats {
        self.ctx.stats.snapshot()
    }

    /// Per-tier hierarchy statistics, fastest tier first (the PFS
    /// origin last): hit/miss/byte counters from this worker's
    /// [`TierStack`].
    pub fn tier_stats(&self) -> Vec<TierStats> {
        self.ctx.tiers.all_stats()
    }

    /// Resilience counters from the hierarchy's origin chain (retries,
    /// hedges, breaker transitions), when the origin is wrapped in a
    /// [`nopfs_storage::ResilientSource`]; `None` for a plain origin.
    pub fn resilience_stats(&self) -> Option<ResilienceStats> {
        self.ctx.tiers.origin_resilience()
    }

    /// Synchronizes all workers (bulk-synchronous step boundary).
    pub fn barrier(&self) {
        self.ctx.endpoint.barrier();
    }

    /// Stops prefetchers, waits for the whole cluster to finish, and
    /// shuts down the serving loop. Idempotent.
    ///
    /// Called automatically by [`crate::job::Job::run`]. Handles
    /// obtained via [`crate::job::Job::launch_workers`] must be shut
    /// down **concurrently** (one thread per handle): the internal
    /// cluster barrier means a sequential shutdown of multiple ranks
    /// would deadlock.
    pub fn shutdown(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.ctx.stop.store(true, Ordering::SeqCst);
        self.ctx.stage.close();
        for t in self.threads.drain(..) {
            t.join().expect("worker thread panicked");
        }
        // All our outbound requests are done; wait for everyone else
        // before killing the serving loop they may still depend on.
        self.ctx.endpoint.barrier();
        let _ = self.ctx.endpoint.send(self.ctx.rank, Msg::Shutdown);
        if let Some(s) = self.server.take() {
            s.join().expect("server thread panicked");
        }
    }
}

impl Iterator for WorkerHandle {
    type Item = (SampleId, Bytes);

    fn next(&mut self) -> Option<Self::Item> {
        self.next_sample()
    }
}
