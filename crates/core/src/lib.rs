//! NoPFS: the Near-optimal PreFetching System (paper Sec. 5).
//!
//! This crate is the runtime middleware — the paper's primary
//! contribution. Given the PRNG seed that generates the SGD access
//! stream, every worker knows exactly which process will access which
//! sample when, arbitrarily far into the future. NoPFS turns that
//! clairvoyance into an integrated prefetching and caching system:
//!
//! 1. **Staging prefetch in access order** (Rule 1): `p_0` threads fill
//!    a position-ordered staging buffer strictly along the worker's
//!    stream `R`; consumed samples are dropped immediately
//!    (approximating Rules 2–4, since a consumed sample's next use is
//!    at least an epoch away).
//! 2. **Frequency-ranked hierarchical placement**: each worker caches
//!    the samples *it* will access most often in its fastest storage
//!    class, then slower ones — and computes every other worker's
//!    placement locally, with zero metadata traffic.
//! 3. **Performance-model source selection**: each staging fetch goes
//!    to the fastest of {local class, remote worker's cache, PFS} by
//!    the model of `nopfs-perfmodel`, with live PFS contention (γ)
//!    observed from the synthetic PFS.
//! 4. **Progress-heuristic remote fetches**: a remote cache is only
//!    asked for a sample if this worker's own prefetch progress
//!    suggests the remote has cached it; misses fall back to the PFS
//!    and are counted (the paper's false-positive discussion).
//!
//! The user-facing API mirrors the paper's Fig. 7: build a [`Job`] from
//! a [`JobConfig`] and a dataset, then iterate samples per worker
//! through [`WorkerHandle`] — a drop-in replacement for a framework
//! data loader.

pub mod config;
pub mod elastic;
pub mod job;
pub mod msg;
pub mod stats;
pub mod tiers;
pub mod worker;

pub use config::JobConfig;
pub use elastic::{ElasticJob, ElasticReport};
pub use job::Job;
pub use stats::WorkerStats;
pub use tiers::{class_tier_stack, class_tier_stack_in_registry};
pub use worker::WorkerHandle;

/// Sample identifier (dense index into the dataset).
pub type SampleId = u64;

/// How many samples the next mini-batch should contain, given how many
/// samples were already consumed: up to `batch_size`, never crossing an
/// epoch boundary, zero once `total` is exhausted.
///
/// This is *the* epoch-boundary semantics of the workspace: both
/// [`WorkerHandle::next_batch`] and the `DataLoader` trait's default
/// `next_batch` (in `nopfs_baselines`) delegate here, so batching can
/// never diverge between NoPFS and the baseline loaders.
pub fn next_batch_len(consumed: u64, total: u64, epoch_len: u64, batch_size: usize) -> usize {
    if consumed >= total || epoch_len == 0 {
        return 0;
    }
    let into_epoch = consumed % epoch_len;
    let left_in_epoch = epoch_len - into_epoch;
    (batch_size as u64).min(left_in_epoch).min(total - consumed) as usize
}

#[cfg(test)]
mod batch_tests {
    use super::next_batch_len;

    #[test]
    fn batches_never_cross_epoch_boundaries() {
        // Epoch of 5 with batch 3: 3 + 2 per epoch.
        assert_eq!(next_batch_len(0, 10, 5, 3), 3);
        assert_eq!(next_batch_len(3, 10, 5, 3), 2);
        assert_eq!(next_batch_len(5, 10, 5, 3), 3);
        assert_eq!(next_batch_len(8, 10, 5, 3), 2);
        assert_eq!(next_batch_len(10, 10, 5, 3), 0);
    }

    #[test]
    fn exhaustion_and_degenerate_cases() {
        assert_eq!(next_batch_len(7, 7, 7, 4), 0, "exhausted");
        assert_eq!(next_batch_len(0, 7, 0, 4), 0, "zero epoch length");
        // Total shorter than the epoch claims: cap at what's left.
        assert_eq!(next_batch_len(6, 7, 10, 4), 1);
    }
}
