//! The `Job`: NoPFS's user-facing entry point (paper Fig. 7).
//!
//! A [`Job`] owns the clairvoyant precomputation — access streams,
//! frequency analysis, hierarchical placement — and spawns one worker
//! per rank of the in-process cluster, each with its own prefetchers,
//! caches, and serving loop. Integration mirrors the paper's three-line
//! change to a PyTorch script:
//!
//! ```
//! use nopfs_core::{Job, JobConfig};
//! use nopfs_perfmodel::presets::fig8_small_cluster;
//! use nopfs_util::timing::TimeScale;
//! use std::sync::Arc;
//!
//! let mut system = fig8_small_cluster();
//! system.workers = 2;
//! let config = JobConfig::new(42, 1, 4, system, TimeScale::new(1e-6));
//! let sizes = Arc::new(vec![1_000u64; 64]);
//! let job = Job::new(config, sizes.clone());
//!
//! // Materialize a dataset and train.
//! let pfs = job.make_pfs();
//! for id in 0..64u64 {
//!     pfs.put(id, bytes::Bytes::from(vec![id as u8; 1_000]));
//! }
//! let consumed = job.run(&pfs, |worker| {
//!     let mut n = 0;
//!     while let Some((_id, _data)) = worker.next_sample() {
//!         n += 1;
//!     }
//!     n
//! });
//! assert_eq!(consumed.iter().sum::<u64>(), 64);
//! ```

use crate::config::JobConfig;
use crate::msg::Msg;
use crate::stats::SetupStats;
use crate::worker::{Shared, WorkerHandle};
use nopfs_clairvoyance::engine::SetupPass;
use nopfs_clairvoyance::placement::GlobalPlacement;
use nopfs_net::{cluster, NetConfig};
use nopfs_pfs::Pfs;
use std::sync::Arc;
use std::time::Instant;

/// A NoPFS job: clairvoyant precomputation plus the worker launcher.
pub struct Job {
    shared: Arc<Shared>,
}

impl Job {
    /// Builds the job: one single-pass [`SetupPass`] over the epoch
    /// shuffles derives every worker's access stream, stream digest,
    /// access frequencies, and storage-class assignment from the seed —
    /// the paper's "a few passes over the shuffles" made literal. Each
    /// epoch's shuffle is generated exactly once for the whole job
    /// (O(E·F) setup regardless of worker count); workers later verify
    /// the allgathered digests against these cached values instead of
    /// re-deriving any stream.
    ///
    /// `sizes[k]` is the size in bytes of sample `k`; the dataset later
    /// materialized in the PFS must match.
    ///
    /// # Panics
    /// Panics on an empty dataset or inconsistent configuration.
    pub fn new(config: JobConfig, sizes: Arc<Vec<u64>>) -> Self {
        assert!(!sizes.is_empty(), "dataset must contain samples");
        let setup_start = Instant::now();
        let spec = config.shuffle_spec(sizes.len() as u64);
        let capacities: Vec<Vec<u64>> = (0..config.system.workers)
            .map(|_| config.system.class_capacities())
            .collect();
        // All setup artifacts are pure functions of the seed; computed
        // once here and shared — every worker would derive the
        // identical values.
        let artifacts = SetupPass::new(spec, config.epochs).run();
        let placement = Arc::new(artifacts.placement(&sizes, &capacities));
        let class_index: Vec<Arc<Vec<u32>>> = (0..config.system.workers)
            .map(|w| {
                let mut idx = vec![u32::MAX; sizes.len()];
                let assignment = placement.assignment(w);
                for class in 0..assignment.num_classes() {
                    for (i, &k) in assignment.prefetch_order(class).iter().enumerate() {
                        idx[k as usize] = i as u32;
                    }
                }
                Arc::new(idx)
            })
            .collect();
        let streams = artifacts.streams.expect("setup pass materializes streams");
        let setup = SetupStats {
            shuffle_generations: artifacts.shuffles_generated,
            setup_time: setup_start.elapsed(),
        };
        Self {
            shared: Arc::new(Shared {
                config,
                sizes,
                placement,
                spec,
                class_index,
                digests: artifacts.digests,
                streams,
                setup,
            }),
        }
    }

    /// The job's configuration.
    pub fn config(&self) -> &JobConfig {
        &self.shared.config
    }

    /// The computed cluster-wide placement.
    pub fn placement(&self) -> &GlobalPlacement {
        &self.shared.placement
    }

    /// Statistics of the clairvoyant setup phase: how many epoch
    /// shuffles were generated (exactly `E` on the single-pass path)
    /// and how long precomputation took.
    pub fn setup_stats(&self) -> &SetupStats {
        &self.shared.setup
    }

    /// Convenience: an in-memory synthetic PFS matching the job's
    /// system curve and time scale.
    ///
    /// This is the single-tenant convenience only — [`Job::run`]
    /// accepts **any** injected [`Pfs`] handle, which is how
    /// `nopfs_cluster` co-schedules several jobs on one shared
    /// filesystem (each receiving a [`Pfs::namespaced`] view of it).
    pub fn make_pfs(&self) -> Pfs {
        Pfs::in_memory(
            self.shared.config.system.pfs_read.clone(),
            self.shared.config.scale,
        )
    }

    /// Launches one worker thread per rank, hands each a
    /// [`WorkerHandle`], and returns the per-rank results of `f`.
    ///
    /// `f` runs on the worker's thread (the training loop). When it
    /// returns, the worker is shut down cleanly: prefetchers stop, the
    /// cluster synchronizes, serving loops exit. If a worker panics the
    /// whole `run` panics.
    ///
    /// The injected `pfs` is the job's *resource boundary*: workers
    /// build everything else (caches, staging buffers, the in-process
    /// interconnect) privately, but all PFS reads pace through this
    /// handle's shared `t(γ)` regulator. Handing co-scheduled jobs
    /// namespaced views of one `Pfs` therefore reproduces cross-job
    /// I/O contention with no other coupling — and the workers' live
    /// source selection (which prices PFS fetches at the *observed*
    /// reader count) automatically accounts for other tenants' traffic.
    /// Launches one worker per rank and returns the handles themselves
    /// instead of scoping a closure over them — the entry point the
    /// workspace loader factory (`nopfs_baselines::registry`) uses to
    /// hand NoPFS out as `Box<dyn DataLoader>` objects.
    ///
    /// Launching blocks until every rank has passed the setup
    /// allgather, so the returned handles are immediately consumable
    /// from any threads (or sequentially). Shut them down concurrently
    /// — one thread per handle, as [`WorkerHandle::shutdown`] documents
    /// — or hand them to a harness that does (the registry's
    /// `LoaderSet` drop does exactly this).
    pub fn launch_workers(&self, pfs: &Pfs) -> Vec<WorkerHandle> {
        let endpoints = cluster::<Msg>(
            self.shared.config.system.workers,
            NetConfig::new(
                self.shared.config.system.interconnect,
                self.shared.config.scale,
            ),
        );
        // The launches must overlap: each blocks in the setup allgather
        // until all ranks have joined it.
        let threads: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, endpoint)| {
                let shared = Arc::clone(&self.shared);
                let pfs = pfs.clone();
                std::thread::spawn(move || WorkerHandle::launch(rank, shared, pfs, endpoint))
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().expect("worker launch panicked"))
            .collect()
    }

    pub fn run<R, F>(&self, pfs: &Pfs, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut WorkerHandle) -> R + Sync,
    {
        let n = self.shared.config.system.workers;
        let endpoints = cluster::<Msg>(
            n,
            NetConfig::new(
                self.shared.config.system.interconnect,
                self.shared.config.scale,
            ),
        );
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .enumerate()
                .map(|(rank, endpoint)| {
                    let shared = Arc::clone(&self.shared);
                    let pfs = pfs.clone();
                    s.spawn(move || {
                        let mut handle = WorkerHandle::launch(rank, shared, pfs, endpoint);
                        let result = f(&mut handle);
                        handle.shutdown();
                        result
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::WorkerStats;
    use bytes::Bytes;
    use nopfs_perfmodel::presets::fig8_small_cluster;
    use nopfs_perfmodel::SystemSpec;
    use nopfs_util::timing::TimeScale;

    /// A small 4-worker system with fast substrates (compressed time).
    fn small_system() -> SystemSpec {
        let mut sys = fig8_small_cluster();
        sys.staging.capacity = 64 * 1_000; // 64 samples of 1 KB
        sys.staging.threads = 4;
        sys.classes[0].capacity = 40 * 1_000;
        sys.classes[1].capacity = 80 * 1_000;
        sys
    }

    fn materialize(pfs: &Pfs, sizes: &[u64]) {
        for (id, &s) in sizes.iter().enumerate() {
            // Content encodes the id for integrity checking.
            let mut v = vec![0u8; s as usize];
            v[0] = (id % 256) as u8;
            if s >= 2 {
                v[1] = ((id / 256) % 256) as u8;
            }
            pfs.put(id as u64, Bytes::from(v));
        }
    }

    fn run_job(epochs: u64, num_samples: usize) -> (Vec<Vec<u64>>, Vec<WorkerStats>, u64) {
        let sizes = Arc::new(vec![1_000u64; num_samples]);
        let config = JobConfig::new(77, epochs, 8, small_system(), TimeScale::new(1e-6));
        let job = Job::new(config, Arc::clone(&sizes));
        let pfs = job.make_pfs();
        materialize(&pfs, &sizes);
        let out = job.run(&pfs, |w| {
            let mut ids = Vec::new();
            while let Some((id, data)) = w.next_sample() {
                assert_eq!(data[0], (id % 256) as u8, "corrupt sample {id}");
                assert_eq!(data.len(), 1_000);
                ids.push(id);
            }
            (ids, w.stats())
        });
        let (ids, stats): (Vec<_>, Vec<_>) = out.into_iter().unzip();
        (ids, stats, pfs.stats().reads)
    }

    #[test]
    fn delivers_every_sample_once_per_epoch_in_stream_order() {
        let epochs = 3;
        let f = 100usize;
        let (per_worker, _, _) = run_job(epochs, f);
        // Exact stream-order delivery, verified against clairvoyance.
        let config = JobConfig::new(77, epochs, 8, small_system(), TimeScale::new(1e-6));
        let spec = config.shuffle_spec(f as u64);
        for (w, got) in per_worker.iter().enumerate() {
            let expect =
                nopfs_clairvoyance::stream::AccessStream::new(spec, w, epochs).materialize();
            assert_eq!(got, &expect, "worker {w} deviated from its stream");
        }
        // Exactly-once per epoch across the cluster.
        let mut counts = vec![0u32; f];
        for ids in &per_worker {
            for &id in ids {
                counts[id as usize] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == epochs as u32));
    }

    #[test]
    fn stats_cover_all_fetches_and_report_cache_use() {
        let (per_worker, stats, pfs_reads) = run_job(4, 120);
        let total_consumed: u64 = per_worker.iter().map(|v| v.len() as u64).sum();
        let mut merged = stats[0].clone();
        for s in &stats[1..] {
            merged.merge(s);
        }
        assert_eq!(merged.samples_consumed, total_consumed);
        assert_eq!(merged.total_fetches(), total_consumed);
        // Multi-epoch run over a cacheable dataset: caches must serve a
        // meaningful share after epoch 0.
        assert!(
            merged.local_fetches + merged.remote_fetches > total_consumed / 4,
            "caches barely used: {merged:?}"
        );
        // The PFS itself must have been read (class prefetchers fill
        // from it even when staging never misses).
        assert!(pfs_reads > 0, "nothing ever read the PFS");
    }

    #[test]
    fn batches_respect_epoch_boundaries() {
        let sizes = Arc::new(vec![500u64; 50]);
        let config = JobConfig::new(9, 2, 8, small_system(), TimeScale::new(1e-6));
        let job = Job::new(config, Arc::clone(&sizes));
        let pfs = job.make_pfs();
        materialize(&pfs, &sizes);
        let batch_shapes = job.run(&pfs, |w| {
            let mut shapes = Vec::new();
            while let Some(batch) = w.next_batch() {
                shapes.push(batch.len());
            }
            shapes
        });
        for (w, shapes) in batch_shapes.iter().enumerate() {
            // 50 samples / 4 workers: workers 0,1 get 13/epoch, 2,3 get 12.
            let epoch_len = if w < 2 { 13 } else { 12 };
            let per_epoch: Vec<usize> = if epoch_len == 13 {
                vec![8, 5]
            } else {
                vec![8, 4]
            };
            let mut expect = per_epoch.clone();
            expect.extend(per_epoch);
            assert_eq!(shapes, &expect, "worker {w}");
        }
    }

    #[test]
    fn survives_transient_pfs_faults() {
        let sizes = Arc::new(vec![1_000u64; 40]);
        let config = JobConfig::new(5, 1, 4, small_system(), TimeScale::new(1e-6));
        let job = Job::new(config, Arc::clone(&sizes));
        let pfs = job.make_pfs();
        materialize(&pfs, &sizes);
        // Several samples fail twice before succeeding.
        for id in [3u64, 17, 29] {
            pfs.inject_fault(id, 2);
        }
        let counts = job.run(&pfs, |w| w.by_ref().count());
        assert_eq!(counts.iter().sum::<usize>(), 40);
    }

    #[test]
    fn early_stop_shuts_down_cleanly() {
        let sizes = Arc::new(vec![1_000u64; 200]);
        let config = JobConfig::new(3, 5, 8, small_system(), TimeScale::new(1e-6));
        let job = Job::new(config, Arc::clone(&sizes));
        let pfs = job.make_pfs();
        materialize(&pfs, &sizes);
        // Every worker stops after 10 samples; shutdown must not hang.
        let got = job.run(&pfs, |w| {
            let mut n = 0;
            for _ in 0..10 {
                if w.next_sample().is_none() {
                    break;
                }
                n += 1;
            }
            n
        });
        assert_eq!(got, vec![10, 10, 10, 10]);
    }

    #[test]
    fn heuristic_false_positives_are_rare() {
        // The paper: "we confirmed that, in practice, there are very
        // few false positives."
        let (_, stats, _) = run_job(4, 120);
        let mut merged = stats[0].clone();
        for s in &stats[1..] {
            merged.merge(s);
        }
        let attempts = merged.remote_fetches + merged.false_positives;
        if attempts > 0 {
            let fp_rate = merged.false_positives as f64 / attempts as f64;
            assert!(
                fp_rate < 0.25,
                "false-positive rate {fp_rate} too high ({merged:?})"
            );
        }
    }

    #[test]
    fn single_worker_runs_without_peers() {
        let mut sys = small_system();
        sys.workers = 1;
        let sizes = Arc::new(vec![800u64; 30]);
        let config = JobConfig::new(2, 2, 4, sys, TimeScale::new(1e-6));
        let job = Job::new(config, Arc::clone(&sizes));
        let pfs = job.make_pfs();
        materialize(&pfs, &sizes);
        let counts = job.run(&pfs, |w| w.by_ref().count());
        assert_eq!(counts, vec![60]);
    }

    #[test]
    fn two_jobs_share_one_pfs_via_namespaces() {
        // The multi-tenant injection contract: two independent jobs,
        // each handed a namespaced view of ONE shared PFS, both deliver
        // every one of their own samples exactly once per epoch with no
        // cross-tenant bleed.
        let shared = Pfs::in_memory(
            nopfs_perfmodel::ThroughputCurve::flat(1e12),
            TimeScale::new(1e-6),
        );
        let sizes_a = Arc::new(vec![1_000u64; 48]);
        let sizes_b = Arc::new(vec![1_000u64; 32]);
        let pfs_a = shared.namespaced(0);
        let pfs_b = shared.namespaced(48);
        materialize(&pfs_a, &sizes_a);
        materialize(&pfs_b, &sizes_b);
        std::thread::scope(|s| {
            let a = s.spawn(|| {
                let config = JobConfig::new(1, 2, 8, small_system(), TimeScale::new(1e-6));
                let job = Job::new(config, Arc::clone(&sizes_a));
                job.run(&pfs_a, |w| {
                    let mut n = 0u64;
                    while let Some((id, data)) = w.next_sample() {
                        assert!(id < 48, "tenant A got foreign sample {id}");
                        assert_eq!(data[0], (id % 256) as u8);
                        n += 1;
                    }
                    n
                })
                .iter()
                .sum::<u64>()
            });
            let b = s.spawn(|| {
                let config = JobConfig::new(2, 2, 8, small_system(), TimeScale::new(1e-6));
                let job = Job::new(config, Arc::clone(&sizes_b));
                job.run(&pfs_b, |w| {
                    let mut n = 0u64;
                    while let Some((id, data)) = w.next_sample() {
                        assert!(id < 32, "tenant B got foreign sample {id}");
                        assert_eq!(data[0], (id % 256) as u8);
                        n += 1;
                    }
                    n
                })
                .iter()
                .sum::<u64>()
            });
            assert_eq!(a.join().unwrap(), 96);
            assert_eq!(b.join().unwrap(), 64);
        });
        // Both tenants' traffic flowed through the one shared store.
        let stats = shared.stats();
        assert_eq!(stats.writes, 80);
        assert!(stats.reads > 0);
    }

    #[test]
    fn placement_is_exposed_and_consistent() {
        let sizes = Arc::new(vec![1_000u64; 64]);
        let config = JobConfig::new(1, 2, 4, small_system(), TimeScale::new(1e-6));
        let job = Job::new(config, Arc::clone(&sizes));
        let p = job.placement();
        for k in 0..64u64 {
            for &(w, c) in p.holders(k) {
                assert_eq!(p.assignment(w).class_of(k), Some(c));
            }
        }
    }
}
