//! The inter-worker message protocol.
//!
//! Three message kinds cross the interconnect: the setup allgather that
//! distributes access-stream digests, sample requests to remote caches,
//! and shutdown markers. Replies carry their payload through an
//! in-process channel embedded in the request (the natural zero-copy
//! idiom here), but the *server* pays the modelled wire cost for the
//! payload via `Endpoint::pace` before replying, so timing matches a
//! real transport.

use crate::SampleId;
use bytes::Bytes;
use crossbeam::channel::Sender;
use nopfs_net::Wire;

/// Reply to a remote sample request.
#[derive(Debug, Clone)]
pub struct RemoteReply {
    /// The requested sample.
    pub sample: SampleId,
    /// The payload, or `None` when the serving worker had not cached
    /// the sample (a progress-heuristic false positive — the paper:
    /// "the failure of this heuristic is not an error").
    pub data: Option<Bytes>,
}

/// Messages between workers.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Access-stream digest for the setup allgather (Sec. 5.2.2: the
    /// distributed manager distributes each worker's `R`; streams are
    /// recomputable from the seed, so a digest suffices to verify
    /// agreement).
    Digest(u64),
    /// Request for a cached sample.
    Request {
        /// The sample wanted.
        sample: SampleId,
        /// Where to deliver the reply.
        reply: Sender<RemoteReply>,
    },
    /// The cluster is done; the serving loop may exit.
    Shutdown,
}

impl Wire for Msg {
    fn wire_size(&self) -> u64 {
        match self {
            // Digest and request are metadata-sized messages.
            Msg::Digest(_) => 8,
            Msg::Request { .. } => 16,
            Msg::Shutdown => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_are_metadata_scale() {
        let (tx, _rx) = crossbeam::channel::bounded(1);
        assert_eq!(Msg::Digest(1).wire_size(), 8);
        assert_eq!(
            Msg::Request {
                sample: 3,
                reply: tx
            }
            .wire_size(),
            16
        );
        assert_eq!(Msg::Shutdown.wire_size(), 1);
    }
}
