//! Building the worker-local storage hierarchy as a [`TierStack`].
//!
//! Every runtime loader — NoPFS's workers, the core-driven baseline
//! loaders — materializes the same hierarchy from a [`SystemSpec`]: one
//! rate-throttled in-memory tier per storage class (Table 2's
//! `d_j`/`r_j(p)`/`w_j(p)` rows, fastest first) bottoming out in the
//! injected PFS handle as the origin. Tier index therefore equals
//! storage-class index everywhere, and the origin is always
//! [`TierStack::origin_index`].
//!
//! Promotion is [`PromotePolicy::Never`]: the clairvoyant runtime plans
//! every fill itself (frequency-ranked placement, first-touch cores),
//! so the stack's read-path promotion machinery stays off and fills go
//! through [`TierStack::fill`] as pinned residents.

use nopfs_obs::Registry;
use nopfs_perfmodel::SystemSpec;
use nopfs_storage::{build_stack_in_registry, DataSource, PromotePolicy, TierSpec, TierStack};
use nopfs_util::timing::TimeScale;
use std::sync::Arc;

/// Builds the per-worker hierarchy: one throttled tier per storage
/// class of `sys` (fastest first) over `origin` (the injected PFS).
/// Each class maps to a [`TierSpec`] rated at its configured thread
/// count (`r_j(p_j)`/`w_j(p_j)`).
pub fn class_tier_stack(
    sys: &SystemSpec,
    scale: TimeScale,
    origin: Arc<dyn DataSource>,
) -> TierStack {
    class_tier_stack_in_registry(sys, scale, origin, &Registry::new())
}

/// [`class_tier_stack`] with the `tier.*` counters registered in
/// `registry` (with its scope labels) — the runtime passes each
/// worker's rank-scoped registry here so per-tier hit/miss/latency
/// metrics surface in live telemetry.
pub fn class_tier_stack_in_registry(
    sys: &SystemSpec,
    scale: TimeScale,
    origin: Arc<dyn DataSource>,
    registry: &Registry,
) -> TierStack {
    let specs: Vec<TierSpec> = sys
        .classes
        .iter()
        .map(|class| {
            let p = f64::from(class.prefetch_threads.max(1));
            TierSpec::new(
                class.name.clone(),
                class.capacity,
                class.read.at(p),
                class.write.at(p),
            )
        })
        .collect();
    build_stack_in_registry(&specs, scale, origin, PromotePolicy::Never, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use nopfs_perfmodel::presets::fig8_small_cluster;
    use nopfs_pfs::Pfs;

    #[test]
    fn stack_mirrors_the_class_hierarchy() {
        let sys = fig8_small_cluster();
        let pfs = Pfs::in_memory(sys.pfs_read.clone(), TimeScale::new(1e-6));
        pfs.put(3, Bytes::from_static(b"sample"));
        let stack = class_tier_stack(&sys, TimeScale::new(1e-6), Arc::new(pfs.clone()));
        assert_eq!(stack.num_tiers(), sys.classes.len() + 1);
        for (j, class) in sys.classes.iter().enumerate() {
            assert_eq!(stack.tier_name(j), class.name);
            assert_eq!(stack.source(j).capacity(), Some(class.capacity));
        }
        assert_eq!(stack.tier_name(stack.origin_index()), "pfs");
        // Reads bottom out in the injected PFS...
        assert_eq!(stack.read(3).unwrap(), Bytes::from_static(b"sample"));
        assert_eq!(pfs.stats().reads, 1);
        // ...and promotion stays off: fills are planned externally.
        assert_eq!(stack.locate(3), None);
        stack.fill(0, 3, Bytes::from_static(b"sample")).unwrap();
        assert_eq!(stack.locate(3), Some(0));
        let before = pfs.stats().reads;
        stack.read(3).unwrap();
        assert_eq!(pfs.stats().reads, before, "cached read skips the PFS");
    }
}
