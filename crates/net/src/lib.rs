//! An in-process cluster substrate.
//!
//! The paper's NoPFS implementation runs one MPI rank per worker and
//! uses the interconnect for three things: an allgather of access
//! streams at setup, point-to-point sample serving between workers, and
//! (in the training framework underneath) gradient allreduces. This
//! crate substitutes that substrate with an in-process cluster: workers
//! are OS threads, every node owns an [`Endpoint`] with an inbox
//! channel, and all traffic is paced through a per-node egress
//! [`TokenBucket`] at the modelled interconnect bandwidth `b_c` plus a
//! fixed latency. Real bytes cross real thread boundaries, so
//! correctness (ordering, integrity, graceful shutdown) is exercised the
//! way a real transport would exercise it, while transfer *times* follow
//! the performance model.
//!
//! Collectives (barrier, allgather, allreduce) are built on the same
//! point-to-point layer. The gradient allreduce uses the
//! bandwidth-optimal ring algorithm (with a star fallback at `n ≤ 2`),
//! so no rank becomes an O(n·|buf|) hotspot — which matters once
//! multi-tenant experiments run several clusters concurrently; the
//! setup allgather stays naive-star, adequate for its once-per-job use.

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use nopfs_util::rate::TokenBucket;
use nopfs_util::timing::{precise_wait, TimeScale};
use std::sync::Arc;
use std::time::Duration;

/// Messages must report their wire size so the NIC model can pace them.
pub trait Wire: Send + 'static {
    /// Bytes this message would occupy on the wire.
    fn wire_size(&self) -> u64;
}

impl Wire for bytes::Bytes {
    fn wire_size(&self) -> u64 {
        self.len() as u64
    }
}

impl Wire for Vec<f32> {
    fn wire_size(&self) -> u64 {
        (self.len() * 4) as u64
    }
}

impl Wire for u64 {
    fn wire_size(&self) -> u64 {
        8
    }
}

/// A delivered message with its sender.
#[derive(Debug)]
pub struct Envelope<T> {
    /// Sending rank.
    pub from: usize,
    /// The payload.
    pub msg: T,
}

/// Interconnect parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Per-node interconnect bandwidth `b_c`, model bytes/second.
    pub bandwidth: f64,
    /// One-way message latency, model seconds.
    pub latency: f64,
    /// Model-to-wall time mapping.
    pub scale: TimeScale,
}

impl NetConfig {
    /// A configuration with the given bandwidth (model bytes/s), 10 µs
    /// latency, and the given time scale.
    pub fn new(bandwidth: f64, scale: TimeScale) -> Self {
        assert!(bandwidth > 0.0 && bandwidth.is_finite());
        Self {
            bandwidth,
            latency: 10e-6,
            scale,
        }
    }
}

/// Errors surfaced by the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer's endpoint was dropped.
    Disconnected,
    /// No message arrived within the timeout.
    Timeout,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for NetError {}

/// One node's connection to the cluster.
pub struct Endpoint<T: Wire> {
    rank: usize,
    peers: Vec<Sender<Envelope<T>>>,
    inbox: Receiver<Envelope<T>>,
    egress: Arc<TokenBucket>,
    config: NetConfig,
    barrier: Arc<std::sync::Barrier>,
}

impl<T: Wire> Endpoint<T> {
    /// This node's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Cluster size.
    pub fn world_size(&self) -> usize {
        self.peers.len()
    }

    /// Sends `msg` to `to`, blocking for the modelled transfer time
    /// (egress pacing plus latency) before it is delivered.
    ///
    /// Sending to self is allowed and skips the latency (loopback).
    pub fn send(&self, to: usize, msg: T) -> Result<(), NetError> {
        assert!(to < self.peers.len(), "rank {to} out of range");
        let size = msg.wire_size();
        if to != self.rank {
            self.egress.acquire(size);
            precise_wait(self.config.scale.to_wall(self.config.latency));
        }
        self.peers[to]
            .send(Envelope {
                from: self.rank,
                msg,
            })
            .map_err(|_| NetError::Disconnected)
    }

    /// Blocks until a message arrives.
    pub fn recv(&self) -> Result<Envelope<T>, NetError> {
        self.inbox.recv().map_err(|_| NetError::Disconnected)
    }

    /// Blocks until a message arrives or `timeout` (wall time) elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<T>, NetError> {
        self.inbox.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<T>> {
        self.inbox.try_recv().ok()
    }

    /// Synchronizes all ranks (the bulk-synchronous barrier between
    /// training iterations).
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Pays the wire cost of transferring `bytes` from this node without
    /// sending a message — used when a payload travels out of band (an
    /// in-process reply channel) but must still occupy the modelled NIC.
    pub fn pace(&self, bytes: u64) {
        self.egress.acquire(bytes);
        precise_wait(self.config.scale.to_wall(self.config.latency));
    }
}

impl<T: Wire + Clone> Endpoint<T> {
    /// Naive allgather: every rank contributes one value and receives
    /// everyone's, indexed by rank. This is how workers exchange access
    /// streams at setup ("distributing a worker's access sequence R to
    /// all other workers", Sec. 5.2.2).
    ///
    /// All ranks must call this collectively, with no other traffic in
    /// flight on the same endpoint.
    pub fn allgather(&self, value: T) -> Result<Vec<T>, NetError> {
        let n = self.world_size();
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        slots[self.rank] = Some(value.clone());
        for to in 0..n {
            if to != self.rank {
                self.send(to, value.clone())?;
            }
        }
        for _ in 0..n - 1 {
            let env = self.recv()?;
            assert!(
                slots[env.from].is_none(),
                "duplicate allgather contribution from rank {}",
                env.from
            );
            slots[env.from] = Some(env.msg);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all contributions received"))
            .collect())
    }
}

impl Endpoint<Vec<f32>> {
    /// Sum-allreduce over `buf` — the gradient synchronization of
    /// data-parallel SGD. All ranks must call collectively with
    /// equal-length buffers.
    ///
    /// Uses the bandwidth-optimal ring algorithm (reduce-scatter
    /// followed by allgather: every node moves `2·(n-1)/n · |buf|`
    /// elements regardless of `n`), falling back to the star for
    /// `n ≤ 2`, where the ring degenerates to the same exchange and the
    /// star's single hop is strictly cheaper in latency.
    pub fn allreduce_sum(&self, buf: &mut [f32]) -> Result<(), NetError> {
        if self.world_size() <= 2 {
            self.allreduce_sum_star(buf)
        } else {
            self.allreduce_sum_ring(buf)
        }
    }

    /// Star-topology sum-allreduce through rank 0. Rank 0 receives and
    /// reduces every contribution, then broadcasts the result: an
    /// O(n·|buf|) hotspot on rank 0, so it serves only as the small-`n`
    /// fallback of [`Self::allreduce_sum`].
    pub fn allreduce_sum_star(&self, buf: &mut [f32]) -> Result<(), NetError> {
        let n = self.world_size();
        if n == 1 {
            return Ok(());
        }
        if self.rank == 0 {
            for _ in 0..n - 1 {
                let env = self.recv()?;
                assert_eq!(env.msg.len(), buf.len(), "allreduce length mismatch");
                for (a, b) in buf.iter_mut().zip(&env.msg) {
                    *a += b;
                }
            }
            for to in 1..n {
                self.send(to, buf.to_vec())?;
            }
        } else {
            self.send(0, buf.to_vec())?;
            let env = self.recv()?;
            assert_eq!(env.from, 0, "unexpected allreduce reply origin");
            buf.copy_from_slice(&env.msg);
        }
        Ok(())
    }

    /// Ring sum-allreduce: `n-1` reduce-scatter steps leave each rank
    /// owning one fully-reduced chunk, then `n-1` allgather steps
    /// circulate the reduced chunks. Every step only talks to the
    /// immediate neighbors, so no rank's NIC carries more than
    /// `2·(n-1)/n` of the buffer — the property that keeps gradient
    /// synchronization flat as tenants scale worker counts.
    fn allreduce_sum_ring(&self, buf: &mut [f32]) -> Result<(), NetError> {
        let n = self.world_size();
        let right = (self.rank + 1) % n;
        let left = (self.rank + n - 1) % n;
        // Chunk c covers chunk_range(c); chunks may be empty when
        // `buf.len() < n`, which still circulates (zero-byte messages
        // pay only the latency).
        let len = buf.len();
        let chunk_range = move |c: usize| (c * len / n)..((c + 1) * len / n);

        // Reduce-scatter: in step s, send chunk (rank - s) and reduce
        // the incoming chunk (rank - s - 1) from the left neighbor.
        for step in 0..n - 1 {
            let send_c = (self.rank + n - step) % n;
            let recv_c = (self.rank + n - step - 1) % n;
            self.send(right, buf[chunk_range(send_c)].to_vec())?;
            let env = self.recv()?;
            assert_eq!(env.from, left, "ring allreduce expects in-ring traffic");
            let dst = &mut buf[chunk_range(recv_c)];
            assert_eq!(env.msg.len(), dst.len(), "allreduce length mismatch");
            for (a, b) in dst.iter_mut().zip(&env.msg) {
                *a += b;
            }
        }

        // Allgather: circulate the reduced chunks. After reduce-scatter,
        // rank r owns chunk (r + 1) mod n.
        for step in 0..n - 1 {
            let send_c = (self.rank + 1 + n - step) % n;
            let recv_c = (self.rank + n - step) % n;
            self.send(right, buf[chunk_range(send_c)].to_vec())?;
            let env = self.recv()?;
            assert_eq!(env.from, left, "ring allreduce expects in-ring traffic");
            let dst = &mut buf[chunk_range(recv_c)];
            assert_eq!(env.msg.len(), dst.len(), "allreduce length mismatch");
            dst.copy_from_slice(&env.msg);
        }
        Ok(())
    }
}

/// Creates a cluster of `n` connected endpoints.
///
/// # Panics
/// Panics if `n == 0`.
pub fn cluster<T: Wire>(n: usize, config: NetConfig) -> Vec<Endpoint<T>> {
    assert!(n > 0, "a cluster needs at least one node");
    let mut senders = Vec::with_capacity(n);
    let mut inboxes = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel::unbounded::<Envelope<T>>();
        senders.push(tx);
        inboxes.push(rx);
    }
    let barrier = Arc::new(std::sync::Barrier::new(n));
    inboxes
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Endpoint {
            rank,
            peers: senders.clone(),
            inbox,
            egress: Arc::new(TokenBucket::with_burst_window(
                config.scale.rate_to_wall(config.bandwidth),
                0.005,
            )),
            config,
            barrier: Arc::clone(&barrier),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::time::Instant;

    fn fast_config() -> NetConfig {
        NetConfig {
            bandwidth: 1.0e12,
            latency: 0.0,
            scale: TimeScale::realtime(),
        }
    }

    #[test]
    fn point_to_point_delivery() {
        let mut eps = cluster::<Bytes>(2, fast_config());
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, Bytes::from_static(b"hello")).unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.from, 0);
        assert_eq!(env.msg, Bytes::from_static(b"hello"));
    }

    #[test]
    fn self_send_is_loopback() {
        let eps = cluster::<u64>(1, fast_config());
        eps[0].send(0, 42).unwrap();
        assert_eq!(eps[0].recv().unwrap().msg, 42);
    }

    #[test]
    fn transfer_time_follows_bandwidth() {
        // 10 MB/s: a 1 MB message should take ~100 ms to send.
        let cfg = NetConfig {
            bandwidth: 10.0e6,
            latency: 0.0,
            scale: TimeScale::realtime(),
        };
        let mut eps = cluster::<Bytes>(2, cfg);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let payload = Bytes::from(vec![0u8; 1_000_000]);
        a.send(1, payload.clone()).unwrap(); // drain burst
        b.recv().unwrap();
        let t0 = Instant::now();
        a.send(1, payload).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.07, "send too fast: {dt}s");
        assert!(dt < 0.5, "send too slow: {dt}s");
        b.recv().unwrap();
    }

    #[test]
    fn latency_is_applied() {
        let cfg = NetConfig {
            bandwidth: 1.0e12,
            latency: 0.02, // 20 ms model
            scale: TimeScale::realtime(),
        };
        let mut eps = cluster::<u64>(2, cfg);
        let _b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t0 = Instant::now();
        a.send(1, 1).unwrap();
        assert!(t0.elapsed().as_secs_f64() >= 0.02);
    }

    #[test]
    fn recv_timeout_expires() {
        let eps = cluster::<u64>(2, fast_config());
        assert_eq!(
            eps[0].recv_timeout(Duration::from_millis(20)).unwrap_err(),
            NetError::Timeout
        );
    }

    #[test]
    fn disconnected_peer_is_reported() {
        let mut eps = cluster::<u64>(2, fast_config());
        let a = eps.remove(0);
        drop(eps); // drop rank 1
        assert_eq!(a.send(1, 5).unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn allgather_collects_rank_indexed() {
        let eps = cluster::<u64>(4, fast_config());
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    let rank = ep.rank() as u64;
                    ep.allgather(rank * 10).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let eps = cluster::<Vec<f32>>(4, fast_config());
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    let mut buf = vec![ep.rank() as f32 + 1.0, 2.0];
                    ep.allreduce_sum(&mut buf).unwrap();
                    buf
                })
            })
            .collect();
        for h in handles {
            // 1+2+3+4 = 10; 2*4 = 8.
            assert_eq!(h.join().unwrap(), vec![10.0, 8.0]);
        }
    }

    /// Runs one collective closure on every rank of a fresh cluster and
    /// returns the per-rank buffers.
    fn run_allreduce<F>(n: usize, init: &[f32], f: F) -> Vec<Vec<f32>>
    where
        F: Fn(&Endpoint<Vec<f32>>, &mut Vec<f32>) + Send + Sync + Copy + 'static,
    {
        let eps = cluster::<Vec<f32>>(n, fast_config());
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let mut buf: Vec<f32> = init.iter().map(|v| v + ep.rank() as f32 * 0.5).collect();
                std::thread::spawn(move || {
                    f(&ep, &mut buf);
                    buf
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn ring_matches_star_for_many_shapes() {
        // Including buffers shorter than the world size (empty chunks)
        // and an empty buffer.
        for (n, len) in [(3, 0), (3, 2), (4, 4), (5, 3), (6, 17), (8, 64)] {
            let init: Vec<f32> = (0..len).map(|i| i as f32 * 0.25 - 1.0).collect();
            let ring = run_allreduce(n, &init, |ep, buf| {
                ep.allreduce_sum(buf).unwrap();
            });
            let star = run_allreduce(n, &init, |ep, buf| {
                ep.allreduce_sum_star(buf).unwrap();
            });
            for (r, s) in ring.iter().zip(&star) {
                assert_eq!(r.len(), s.len());
                for (a, b) in r.iter().zip(s) {
                    assert!((a - b).abs() < 1e-4, "n={n} len={len}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn small_world_star_fallback_is_exact() {
        // n ≤ 2 goes through the star; verify both entry points agree.
        for n in [1usize, 2] {
            let init = [1.5f32, -2.0, 3.25];
            let via_public = run_allreduce(n, &init, |ep, buf| {
                ep.allreduce_sum(buf).unwrap();
            });
            let via_star = run_allreduce(n, &init, |ep, buf| {
                ep.allreduce_sum_star(buf).unwrap();
            });
            assert_eq!(via_public, via_star);
            // And the values are the true sums.
            let rank_sum: f32 = (0..n).map(|r| r as f32 * 0.5).sum();
            for buf in via_public {
                for (got, base) in buf.iter().zip(&init) {
                    let expect = base * n as f32 + rank_sum;
                    assert!((got - expect).abs() < 1e-5, "{got} vs {expect}");
                }
            }
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let eps = cluster::<u64>(3, fast_config());
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    ep.barrier();
                    // Everyone must have incremented before anyone passes.
                    assert_eq!(counter.load(Ordering::SeqCst), 3);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn message_order_is_preserved_per_sender() {
        let mut eps = cluster::<u64>(2, fast_config());
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..100 {
            a.send(1, i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(b.recv().unwrap().msg, i);
        }
    }
}
