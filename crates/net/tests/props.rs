//! Property-based tests for the cluster substrate: collectives are
//! correct for any world size and payload.

use nopfs_net::{cluster, NetConfig};
use nopfs_util::timing::TimeScale;
use proptest::prelude::*;

fn fast() -> NetConfig {
    NetConfig {
        bandwidth: 1e12,
        latency: 0.0,
        scale: TimeScale::realtime(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Allgather returns everyone's contribution, rank-indexed, on
    /// every rank, for any world size.
    #[test]
    fn allgather_correct(n in 1usize..6, base in any::<u64>()) {
        let eps = cluster::<u64>(n, fast());
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    let mine = base.wrapping_add(ep.rank() as u64);
                    ep.allgather(mine).expect("allgather")
                })
            })
            .collect();
        let expect: Vec<u64> = (0..n).map(|r| base.wrapping_add(r as u64)).collect();
        for h in handles {
            prop_assert_eq!(h.join().expect("rank"), expect.clone());
        }
    }

    /// Allreduce computes the exact sum on every rank for arbitrary
    /// float vectors (within f32 associativity tolerance).
    #[test]
    fn allreduce_sums(
        n in 1usize..6,
        values in prop::collection::vec(-1e3f32..1e3, 1..20),
    ) {
        let eps = cluster::<Vec<f32>>(n, fast());
        let len = values.len();
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let mut buf: Vec<f32> = values
                    .iter()
                    .map(|v| v + ep.rank() as f32)
                    .collect();
                std::thread::spawn(move || {
                    ep.allreduce_sum(&mut buf).expect("allreduce");
                    buf
                })
            })
            .collect();
        // Expected: n*v + (0 + 1 + ... + n-1) per element.
        let rank_sum = (n * (n - 1) / 2) as f32;
        let expect: Vec<f32> = values.iter().map(|v| v * n as f32 + rank_sum).collect();
        for h in handles {
            let got = h.join().expect("rank");
            prop_assert_eq!(got.len(), len);
            for (g, e) in got.iter().zip(&expect) {
                prop_assert!((g - e).abs() <= 1e-2 + e.abs() * 1e-5, "{g} vs {e}");
            }
        }
    }

    /// Per-sender FIFO ordering holds for any message count.
    #[test]
    fn fifo_per_sender(count in 1u64..200) {
        let mut eps = cluster::<u64>(2, fast());
        let b = eps.pop().expect("rank 1");
        let a = eps.pop().expect("rank 0");
        let sender = std::thread::spawn(move || {
            for i in 0..count {
                a.send(1, i).expect("send");
            }
        });
        for i in 0..count {
            prop_assert_eq!(b.recv().expect("recv").msg, i);
        }
        sender.join().expect("sender");
    }
}
