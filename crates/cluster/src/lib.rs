//! Multi-tenant co-scheduling: K independent training jobs contending
//! on **one shared synthetic PFS**.
//!
//! The paper's opening argument (Sec. 1–2, Fig. 2) is that aggregate
//! PFS read throughput `t(γ)` saturates, so concurrently running
//! training jobs interfere with each other's I/O. Every other entry
//! point in this workspace launches a single job against a private
//! `Pfs`; this crate reproduces the motivating scenario itself:
//!
//! - a [`ClusterSpec`] describes K tenants — each with its own dataset,
//!   worker count, loader policy (NoPFS or any runtime baseline),
//!   batch/epoch parameters, and a staggered start time — plus the one
//!   shared PFS curve they all contend on;
//! - [`run_cluster`] launches every tenant concurrently (real threads,
//!   real bytes) against one `Pfs` whose `t(γ)` regulator spans all
//!   tenants. Each tenant addresses its own dense `0..F` sample ids
//!   through a [`nopfs_pfs::Pfs::namespaced`] handle, so jobs stay
//!   oblivious to each other everywhere except the shared regulator;
//! - interconnects are **partitioned**: each tenant runs its own
//!   in-process cluster network, modelling co-scheduled HPC jobs on
//!   disjoint node sets that share only the filesystem (optionally, a
//!   machine-wide NIC budget is split across tenants by worker share —
//!   [`ClusterSpec::partitioned_interconnect`]);
//! - [`interference_report`] additionally runs every tenant *solo* on a
//!   private PFS with the identical curve and reports each tenant's
//!   **interference slowdown** — co-scheduled ÷ solo steady epoch time
//!   — the headline number of the Fig. 2 study.
//!
//! The simulator counterpart (`nopfs_simulator::cluster`) replays the
//! same scenario analytically, so K can sweep far past what in-process
//! threads allow; `examples/interference.rs` and the
//! `fig2_interference` bench run both and cross-check them.

pub mod report;
pub mod runtime;
pub mod spec;

pub use nopfs_policy::PolicyId;
pub use report::{ClusterReport, TenantReport};
pub use runtime::{interference_report, run_cluster, run_solo};
pub use spec::{ClusterSpec, TenantSpec};
