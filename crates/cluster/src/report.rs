//! Per-tenant and aggregate statistics of a co-scheduled run.

use nopfs_core::stats::{SetupStats, WorkerStats};
use nopfs_obs::Snapshot;
use nopfs_pfs::PfsStats;
use nopfs_policy::PolicyId;
use nopfs_storage::{ResilienceStats, TierStats};
use nopfs_util::stats::Summary;

/// What one tenant measured over its run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant's label.
    pub name: String,
    /// The loader policy it ran.
    pub policy: PolicyId,
    /// Its start offset, model seconds.
    pub start_delay: f64,
    /// Bulk-synchronous epoch times (slowest worker per epoch), model
    /// seconds.
    pub epoch_times: Vec<f64>,
    /// Total run time (slowest worker, sum over epochs), model seconds.
    pub total_time: f64,
    /// Consumer stall summed across workers, model seconds.
    pub stall_time: f64,
    /// Cluster-merged loader statistics.
    pub stats: WorkerStats,
    /// Clairvoyant setup statistics (NoPFS tenants only).
    pub setup: Option<SetupStats>,
    /// Resilience counters of the object-store origin (retries, hedges,
    /// breaker transitions), merged across ranks; `None` unless the
    /// tenant's fault plan carried a cloud clause.
    pub resilience: Option<ResilienceStats>,
    /// Per-tier cache statistics merged across the tenant's surviving
    /// ranks (elastic NoPFS tenants only; baseline loaders manage their
    /// caches internally and leave this empty).
    pub tier_stats: Vec<TierStats>,
    /// Live telemetry: the tenant's JSONL snapshot lines (one per
    /// sampling tick plus a final one), empty unless the spec set
    /// [`crate::ClusterSpec::telemetry_interval`].
    pub telemetry: Vec<String>,
    /// The same tenant's solo steady epoch time, when an interference
    /// report ran it (model seconds).
    pub solo_epoch_time: Option<f64>,
    /// Interference slowdown: co-scheduled ÷ solo steady epoch time.
    pub slowdown: Option<f64>,
}

impl TenantReport {
    /// Steady-state epoch time: the median excluding epoch 0 (warmup),
    /// falling back to epoch 0 for single-epoch runs. Model seconds.
    pub fn steady_epoch_time(&self) -> f64 {
        let tail: Vec<f64> = self.epoch_times.iter().copied().skip(1).collect();
        if tail.is_empty() {
            return self.epoch_times.first().copied().unwrap_or(0.0);
        }
        Summary::new(&tail).median()
    }

    /// PFS reads this tenant issued.
    pub fn pfs_reads(&self) -> u64 {
        self.stats.pfs_fetches
    }

    /// Fraction of fetches served without touching the PFS.
    pub fn cache_fraction(&self) -> f64 {
        let total = self.stats.total_fetches();
        if total == 0 {
            return 0.0;
        }
        (self.stats.local_fetches + self.stats.remote_fetches) as f64 / total as f64
    }
}

/// The whole cluster's outcome.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-tenant reports, in [`crate::ClusterSpec`] order.
    pub tenants: Vec<TenantReport>,
    /// Traffic totals of the one shared PFS, across every tenant.
    pub pfs_totals: PfsStats,
    /// Wall-clock time of the whole co-scheduled run, seconds.
    pub wall_time: f64,
    /// The merged end-of-run view of the cluster registry: every
    /// tenant's metrics side by side under their `tenant=<name>`
    /// scopes.
    pub snapshot: Snapshot,
    /// Chrome `trace_event` JSON of the run's structured events,
    /// renderable in `about:tracing` / Perfetto; `None` when the
    /// spec's [`nopfs_obs::ObsCtx`] has tracing off (the default).
    pub chrome_trace: Option<String>,
}

impl ClusterReport {
    /// Loader statistics merged across every tenant.
    pub fn aggregate_stats(&self) -> WorkerStats {
        let mut merged = self.tenants[0].stats.clone();
        for t in &self.tenants[1..] {
            merged.merge(&t.stats);
        }
        merged
    }

    /// The worst interference slowdown across tenants (`None` until an
    /// interference report filled them in).
    pub fn max_slowdown(&self) -> Option<f64> {
        self.tenants
            .iter()
            .filter_map(|t| t.slowdown)
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }

    /// The slowdown of the first tenant running `policy`, if any.
    pub fn slowdown_of(&self, policy: PolicyId) -> Option<f64> {
        self.tenants
            .iter()
            .find(|t| t.policy == policy)
            .and_then(|t| t.slowdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stats(pfs: u64, local: u64) -> WorkerStats {
        WorkerStats {
            local_fetches: local,
            remote_fetches: 0,
            pfs_fetches: pfs,
            prestage_fetches: 0,
            false_positives: 0,
            heuristic_skips: 0,
            pfs_errors: 0,
            stall_time: Duration::ZERO,
            samples_consumed: pfs + local,
        }
    }

    fn tenant(name: &str, epochs: Vec<f64>, slowdown: Option<f64>) -> TenantReport {
        TenantReport {
            name: name.into(),
            policy: PolicyId::Naive,
            start_delay: 0.0,
            total_time: epochs.iter().sum(),
            epoch_times: epochs,
            stall_time: 0.0,
            stats: stats(10, 5),
            setup: None,
            resilience: None,
            tier_stats: Vec::new(),
            telemetry: Vec::new(),
            solo_epoch_time: None,
            slowdown,
        }
    }

    #[test]
    fn steady_epoch_excludes_warmup() {
        let t = tenant("a", vec![10.0, 2.0, 4.0, 3.0], None);
        assert!((t.steady_epoch_time() - 3.0).abs() < 1e-12);
        let single = tenant("b", vec![7.0], None);
        assert!((single.steady_epoch_time() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn aggregates_and_slowdowns() {
        let report = ClusterReport {
            tenants: vec![
                tenant("a", vec![1.0], Some(1.2)),
                tenant("b", vec![1.0], Some(2.5)),
                tenant("c", vec![1.0], None),
            ],
            pfs_totals: PfsStats::default(),
            wall_time: 0.0,
            snapshot: Snapshot::default(),
            chrome_trace: None,
        };
        assert_eq!(report.max_slowdown(), Some(2.5));
        assert_eq!(report.slowdown_of(PolicyId::Naive), Some(1.2));
        assert_eq!(report.slowdown_of(PolicyId::NoPfs), None);
        let merged = report.aggregate_stats();
        assert_eq!(merged.pfs_fetches, 30);
        assert_eq!(merged.samples_consumed, 45);
    }

    #[test]
    fn cache_fraction_counts_non_pfs_fetches() {
        let t = tenant("a", vec![1.0], None);
        assert!((t.cache_fraction() - 5.0 / 15.0).abs() < 1e-12);
    }
}
