//! The co-scheduling runtime: launches every tenant's real loader
//! threads against one shared, namespaced [`Pfs`].
//!
//! Ownership/injection contract: the cluster owns the one shared `Pfs`
//! and hands each tenant a namespaced handle; each tenant's runner
//! (`Job` or a baseline) *accepts* that handle instead of constructing
//! its own, and builds everything else — caches, staging buffers, its
//! partitioned interconnect, the gradient-allreduce network — privately.
//! Only the PFS regulator couples tenants, exactly as on a real machine
//! where co-scheduled jobs share the filesystem and nothing else.

use crate::report::{ClusterReport, TenantReport};
use crate::spec::{ClusterSpec, TenantSpec};
use nopfs_baselines::{registry, DataLoader};
use nopfs_core::{ElasticJob, JobConfig};
use nopfs_net::{cluster, Endpoint, NetConfig};
use nopfs_obs::{JsonlEmitter, ObsCtx, Sampler};
use nopfs_perfmodel::SystemSpec;
use nopfs_pfs::Pfs;
use nopfs_policy::ReadErrors;
use nopfs_train::{run_training_loop, RunMetrics, TrainLoopConfig};
use nopfs_util::rng::mix64;
use nopfs_util::timing::TimeScale;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Deterministically seeds transient read failures into the tenant's
/// namespace: each sample's next `1..=max_burst` reads fail with
/// probability `rate`. Every loader stack in the workspace retries
/// transient PFS errors (counting them in `pfs_errors`), so injected
/// bursts cost time but never change delivered content.
fn inject_read_errors(pfs: &Pfs, errors: &ReadErrors, num_samples: u64) {
    for id in 0..num_samples {
        let h = mix64(errors.seed, id);
        if ((h >> 11) as f64 / (1u64 << 53) as f64) >= errors.rate {
            continue;
        }
        let burst = 1 + ((h >> 32) as u32) % errors.max_burst.max(1);
        pfs.inject_fault(id, burst);
    }
}

/// Runs a crash/churn/cloud tenant through the elastic NoPFS runtime
/// ([`ElasticJob`] realizes every event of the plan, including its own
/// read-error layer beneath the tier stacks and the object-store origin
/// with its resilience stack) and reshapes the elastic report into the
/// tenant vocabulary.
fn run_tenant_elastic(
    tenant: &TenantSpec,
    system: SystemSpec,
    scale: TimeScale,
    pfs: &Pfs,
    obs: ObsCtx,
) -> TenantReport {
    let sizes = Arc::new(tenant.profile.sizes());
    // No drop_last: churn must keep the epoch length
    // membership-invariant, and this path has no per-step allreduce
    // that ragged batch counts could deadlock.
    let config =
        JobConfig::new(tenant.seed, tenant.epochs, tenant.batch, system, scale).with_obs(obs);
    let job = ElasticJob::new(config, sizes, tenant.fault_plan.clone())
        .unwrap_or_else(|e| panic!("tenant '{}': {}", tenant.name, e.0));
    let report = job.run(pfs);
    let epoch_times: Vec<f64> = report
        .epoch_times
        .iter()
        .map(|&d| scale.to_model(d))
        .collect();
    TenantReport {
        name: tenant.name.clone(),
        policy: tenant.policy,
        start_delay: tenant.start_delay,
        total_time: epoch_times.iter().sum(),
        epoch_times,
        stall_time: scale.to_model(report.stats.stall_time),
        stats: report.stats,
        setup: Some(report.setup),
        resilience: tenant
            .fault_plan
            .cloud
            .is_some()
            .then_some(report.resilience),
        tier_stats: report.tier_stats,
        telemetry: Vec::new(),
        solo_epoch_time: None,
        slowdown: None,
    }
}

/// Runs one tenant to completion on an injected PFS handle.
///
/// `system` is the tenant's effective system (interconnect partition
/// applied); the PFS curve it carries is only used for source-selection
/// pricing — pacing happens in the injected `pfs`.
fn run_tenant(
    tenant: &TenantSpec,
    system: SystemSpec,
    scale: TimeScale,
    pfs: &Pfs,
    obs: ObsCtx,
) -> TenantReport {
    // Crash, churn, and cloud plans run in the elastic runtime, which
    // realizes every event of the plan itself (including read errors,
    // injected beneath its tier stacks rather than into the PFS).
    if tenant.needs_elastic() {
        return run_tenant_elastic(tenant, system, scale, pfs, obs);
    }
    if let Some(errors) = &tenant.fault_plan.read_errors {
        inject_read_errors(pfs, errors, tenant.profile.num_samples);
    }
    let n = system.workers;
    let sizes = Arc::new(tenant.profile.sizes());
    // drop_last keeps every worker's batch count identical, which the
    // per-step allreduce requires (ragged counts would deadlock it).
    let config = JobConfig::new(
        tenant.seed,
        tenant.epochs,
        tenant.batch,
        system.clone(),
        scale,
    )
    .drop_last(true)
    .with_obs(obs);
    // The tenant's private gradient-allreduce network (its partition of
    // the interconnect), one endpoint per rank.
    let grad_endpoints: Mutex<Vec<Option<Endpoint<Vec<f32>>>>> = Mutex::new(
        cluster::<Vec<f32>>(n, NetConfig::new(system.interconnect, scale))
            .into_iter()
            .map(Some)
            .collect(),
    );
    let last_epoch = tenant.epochs - 1;
    let body = |loader: &mut dyn DataLoader| {
        let ep = grad_endpoints.lock()[loader.rank()]
            .take()
            .expect("each rank takes its endpoint once");
        // Stragglers: a slowed rank's compute throughput drops by its
        // plan factor. The training loop has no epoch hook, so the
        // cumulative (final-epoch) factor applies run-wide.
        let loop_cfg = TrainLoopConfig {
            compute_rate: tenant.compute
                / tenant.fault_plan.straggle_factor(last_epoch, loader.rank()),
            scale,
            grad_elems: tenant.grad_elems,
        };
        run_training_loop(loader, &loop_cfg, Some(&ep))
    };

    // The workspace policy registry is the single dispatch point: any
    // of the ten `PolicyId`s runs here (an infeasible configuration —
    // validated earlier by `ClusterSpec::validate` — is a panic).
    let outcome = registry::run_policy(tenant.policy, config, sizes, pfs, body)
        .unwrap_or_else(|e| panic!("tenant '{}': {}", tenant.name, e.0));
    let per_worker: Vec<RunMetrics> = outcome.per_worker;
    let setup = outcome.setup;

    // Bulk-synchronous epoch time (slowest worker per epoch) and the
    // merged statistics come from the workspace-shared aggregations.
    let epoch_times = RunMetrics::bulk_epoch_times(&per_worker);
    let stats = RunMetrics::merged_stats(&per_worker);
    let stall_time = scale.to_model(stats.stall_time);

    TenantReport {
        name: tenant.name.clone(),
        policy: tenant.policy,
        start_delay: tenant.start_delay,
        total_time: epoch_times.iter().sum(),
        epoch_times,
        stall_time,
        stats,
        setup,
        resilience: None,
        tier_stats: Vec::new(),
        telemetry: Vec::new(),
        solo_epoch_time: None,
        slowdown: None,
    }
}

/// Co-schedules every tenant of `spec` on one shared PFS and returns
/// per-tenant plus aggregate statistics.
///
/// Every tenant's dataset is materialized into its namespace first
/// (runs start "with data at rest on a PFS"); then one launcher thread
/// per tenant waits out the tenant's start delay and drives its real
/// loader stack. Worker threads, prefetchers, and serving loops all
/// belong to their tenant; the only shared object is the PFS, whose
/// `t(γ)` regulator sees the combined live reader count.
///
/// # Panics
/// Panics on an invalid [`ClusterSpec`] or if any tenant's run panics.
pub fn run_cluster(spec: &ClusterSpec) -> ClusterReport {
    spec.validate();
    let pfs = Pfs::in_memory(spec.pfs_read.clone(), spec.scale);
    let bases = spec.namespace_bases();
    for (tenant, &base) in spec.tenants.iter().zip(&bases) {
        tenant.profile.materialize(&pfs.namespaced(base));
    }
    let t0 = Instant::now();
    // One obs scope per tenant; with telemetry on, a background sampler
    // per tenant turns that scope into a live JSONL time series.
    let scopes: Vec<ObsCtx> = spec
        .tenants
        .iter()
        .map(|t| spec.obs.scoped([("tenant", t.name.clone())]))
        .collect();
    let streams: Vec<Option<(Arc<JsonlEmitter>, Sampler)>> = scopes
        .iter()
        .map(|obs| {
            spec.telemetry_interval.map(|interval| {
                let emitter = JsonlEmitter::memory();
                let sampler = Sampler::spawn(
                    obs.registry.clone(),
                    Arc::clone(&emitter),
                    interval,
                    spec.scale.factor(),
                );
                (emitter, sampler)
            })
        })
        .collect();
    let mut tenants: Vec<TenantReport> = std::thread::scope(|s| {
        let handles: Vec<_> = spec
            .tenants
            .iter()
            .enumerate()
            .map(|(i, tenant)| {
                let tenant_pfs = pfs.namespaced(bases[i]);
                let system = spec.tenant_system(i);
                let scale = spec.scale;
                let obs = scopes[i].clone();
                s.spawn(move || {
                    if tenant.start_delay > 0.0 {
                        scale.wait(tenant.start_delay);
                    }
                    run_tenant(tenant, system, scale, &tenant_pfs, obs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant panicked"))
            .collect()
    });
    for (report, stream) in tenants.iter_mut().zip(streams) {
        if let Some((emitter, sampler)) = stream {
            // Stopping emits one final snapshot, so even a run shorter
            // than the interval yields a complete series.
            sampler.stop();
            report.telemetry = emitter.lines();
        }
    }
    ClusterReport {
        tenants,
        pfs_totals: pfs.stats(),
        wall_time: t0.elapsed().as_secs_f64(),
        snapshot: spec.obs.snapshot(),
        chrome_trace: spec
            .obs
            .tracer
            .is_active()
            .then(|| spec.obs.tracer.chrome_trace("cluster").render_compact()),
    }
}

/// Runs tenant `index` of `spec` **alone** on a private PFS with the
/// identical curve — the baseline for interference slowdowns. The
/// tenant's start delay is ignored (it has nobody to stagger against).
pub fn run_solo(spec: &ClusterSpec, index: usize) -> TenantReport {
    let tenant = &spec.tenants[index];
    let pfs = Pfs::in_memory(spec.pfs_read.clone(), spec.scale);
    tenant.profile.materialize(&pfs);
    // A `run=solo` scope keeps the baseline's metrics apart from the
    // co-scheduled run's in the shared registry.
    let obs = spec
        .obs
        .scoped([("tenant", tenant.name.clone()), ("run", "solo".to_string())]);
    run_tenant(tenant, spec.tenant_system(index), spec.scale, &pfs, obs)
}

/// The full interference experiment: every tenant solo, then all
/// co-scheduled, with each [`TenantReport::slowdown`] set to
/// co-scheduled ÷ solo steady epoch time.
pub fn interference_report(spec: &ClusterSpec) -> ClusterReport {
    let solos: Vec<TenantReport> = (0..spec.tenants.len()).map(|i| run_solo(spec, i)).collect();
    let mut report = run_cluster(spec);
    for (tenant, solo) in report.tenants.iter_mut().zip(&solos) {
        let solo_epoch = solo.steady_epoch_time();
        tenant.solo_epoch_time = Some(solo_epoch);
        tenant.slowdown = (solo_epoch > 0.0).then(|| tenant.steady_epoch_time() / solo_epoch);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_datasets::DatasetProfile;
    use nopfs_perfmodel::presets::fig8_small_cluster;
    use nopfs_perfmodel::ThroughputCurve;
    use nopfs_policy::PolicyId;
    use nopfs_util::units::MB;

    /// A tenant system small enough for tests: 2 workers, caches that
    /// hold the whole dataset, a modest staging buffer.
    fn tenant_system() -> SystemSpec {
        let mut sys = fig8_small_cluster();
        sys.workers = 2;
        sys.staging.capacity = 2_000_000;
        sys.staging.threads = 2;
        sys.classes[0].capacity = 30_000_000;
        sys.classes[1].capacity = 60_000_000;
        sys
    }

    fn profile(name: &str, samples: u64, seed: u64) -> DatasetProfile {
        DatasetProfile::new(name, samples, 20_000.0, 0.0, 4, seed)
    }

    fn tenant(name: &str, policy: PolicyId, samples: u64, seed: u64) -> TenantSpec {
        TenantSpec::new(
            name,
            policy,
            tenant_system(),
            profile(name, samples, seed),
            2,
            4,
            seed,
        )
    }

    /// Fast, uncontended spec for correctness tests.
    fn fast_spec() -> ClusterSpec {
        ClusterSpec::new(ThroughputCurve::flat(1e12), TimeScale::new(1e-6))
    }

    #[test]
    fn tenants_get_their_own_samples_exactly_once_per_epoch() {
        // Sample counts divisible by the global batch (2 workers x 4),
        // so drop_last trims nothing and counts are exact.
        let spec = fast_spec()
            .tenant(tenant("a", PolicyId::NoPfs, 64, 3))
            .tenant(tenant("b", PolicyId::Naive, 40, 4))
            .tenant(tenant("c", PolicyId::StagingBuffer, 48, 5));
        let report = run_cluster(&spec);
        assert_eq!(report.tenants.len(), 3);
        for (t, spec_t) in report.tenants.iter().zip(&spec.tenants) {
            // Exactly once per epoch: 2 epochs x F samples.
            assert_eq!(
                t.stats.samples_consumed,
                2 * spec_t.profile.num_samples,
                "tenant {}",
                t.name
            );
            assert_eq!(t.epoch_times.len(), 2);
            assert!(t.total_time > 0.0);
        }
        // NoPFS tenants report setup stats; baselines don't.
        assert!(report.tenants[0].setup.is_some());
        assert!(report.tenants[1].setup.is_none());
        // The shared store holds all three datasets side by side.
        assert_eq!(
            report.pfs_totals.writes,
            64 + 40 + 48,
            "writes = materialized"
        );
    }

    #[test]
    fn payloads_do_not_bleed_across_namespaces() {
        // Every delivered payload must decode against its own tenant's
        // profile (ids and seeded patterns are tenant-specific, so any
        // cross-tenant mixup fails the decode).
        let spec = fast_spec()
            .tenant(tenant("a", PolicyId::Naive, 30, 11))
            .tenant(tenant("b", PolicyId::Naive, 30, 12));
        let pfs = Pfs::in_memory(spec.pfs_read.clone(), spec.scale);
        let bases = spec.namespace_bases();
        for (t, &base) in spec.tenants.iter().zip(&bases) {
            t.profile.materialize(&pfs.namespaced(base));
        }
        for (t, &base) in spec.tenants.iter().zip(&bases) {
            let ns = pfs.namespaced(base);
            for id in 0..t.profile.num_samples {
                let data = ns.read(id).expect("materialized");
                let (decoded, _) = t.profile.decode(&data).expect("clean payload");
                assert_eq!(decoded, id);
            }
        }
    }

    #[test]
    fn interference_slowdowns_favor_the_clairvoyant_tenant() {
        // A PFS that saturates at ~2 clients: co-scheduling multiplies
        // the live reader count, so the all-PFS naive tenants slow down
        // while NoPFS (cache-served after epoch 0) is shielded. The
        // scale is chosen so every paced wait exceeds the sleep
        // threshold: on small (even single-core) CI machines, sleeping
        // tenants interleave cleanly, keeping CPU contention out of
        // what must be a *PFS* contention measurement.
        let scale = TimeScale::new(0.5);
        let curve =
            ThroughputCurve::from_points(&[(1.0, 30.0 * MB), (2.0, 40.0 * MB), (16.0, 41.0 * MB)]);
        let mut spec = ClusterSpec::new(curve, scale)
            .tenant(tenant("nopfs", PolicyId::NoPfs, 296, 21))
            .tenant(tenant("naive-1", PolicyId::Naive, 296, 22))
            .tenant(tenant("naive-2", PolicyId::Naive, 296, 23));
        for t in &mut spec.tenants {
            t.epochs = 3;
        }
        let report = interference_report(&spec);
        let nopfs = report.slowdown_of(PolicyId::NoPfs).expect("filled in");
        let naive = report.slowdown_of(PolicyId::Naive).expect("filled in");
        assert!(
            naive > 1.15,
            "co-scheduled naive tenants must interfere: {naive}x"
        );
        assert!(
            nopfs < naive,
            "NoPFS ({nopfs}x) must degrade less than naive ({naive}x)"
        );
        // And the shield comes from the caches, not luck: NoPFS's
        // steady-state fetches are mostly cache-served.
        assert!(report.tenants[0].cache_fraction() > 0.3);
    }

    #[test]
    fn staggered_tenant_starts_late() {
        let scale = TimeScale::new(1e-3);
        let spec = ClusterSpec::new(ThroughputCurve::flat(1e12), scale)
            .tenant(tenant("early", PolicyId::Naive, 32, 31))
            .tenant(tenant("late", PolicyId::Naive, 32, 32).starting_at(5.0));
        let t0 = Instant::now();
        let report = run_cluster(&spec);
        // 5 model seconds at 1e-3 = 5 ms of wall stagger, measurable in
        // the cluster wall time.
        assert!(t0.elapsed().as_secs_f64() >= 0.005);
        assert!(report.wall_time >= 0.005);
        assert_eq!(report.tenants[1].start_delay, 5.0);
        // Both still delivered everything.
        for t in &report.tenants {
            assert_eq!(t.stats.samples_consumed, 64);
        }
    }

    #[test]
    fn straggler_plans_slow_a_tenant_without_changing_content() {
        use nopfs_policy::FaultPlan;
        // Two identical tenants; one has a rank slowed 8x. Stragglers
        // cost time, never content.
        // Per-sample compute waits of 0.1 model s at this scale exceed
        // the spin threshold, so paced tenants sleep and the comparison
        // survives a CPU-contended (parallel test) machine.
        let scale = TimeScale::new(5e-3);
        // Compute-bound tenants (0.1 model s per sample), so the 8x
        // compute straggle is the dominant term by construction.
        let spec = ClusterSpec::new(ThroughputCurve::flat(1e12), scale)
            .tenant(tenant("steady", PolicyId::Naive, 64, 51).with_compute(2.0e5))
            .tenant(
                tenant("straggling", PolicyId::Naive, 64, 51)
                    .with_compute(2.0e5)
                    .with_fault_plan(FaultPlan::fault_free().straggle(0, 0, 8.0)),
            );
        let report = run_cluster(&spec);
        let steady = &report.tenants[0];
        let slow = &report.tenants[1];
        assert_eq!(slow.stats.samples_consumed, steady.stats.samples_consumed);
        assert!(
            slow.total_time > 1.5 * steady.total_time,
            "8x straggler must dominate: {} vs {}",
            slow.total_time,
            steady.total_time
        );
    }

    #[test]
    fn read_error_plans_are_retried_through() {
        use nopfs_policy::{FaultPlan, ReadErrors};
        let spec = fast_spec().tenant(tenant("flaky", PolicyId::Naive, 40, 61).with_fault_plan(
            FaultPlan::fault_free().with_read_errors(ReadErrors {
                rate: 0.3,
                max_burst: 2,
                seed: 0xBAD,
            }),
        ));
        let report = run_cluster(&spec);
        let t = &report.tenants[0];
        assert!(t.stats.pfs_errors > 0, "rate 0.3 over 40 ids must fire");
        assert_eq!(t.stats.samples_consumed, 80, "retries absorb every burst");
    }

    #[test]
    fn cloud_origin_tenants_report_resilience() {
        use nopfs_policy::{CloudFaults, FaultPlan};
        let cloud = CloudFaults {
            spike_rate: 0.05,
            spike_factor: 4.0,
            throttle_rate: 0.1,
            throttle_burst: 2,
            retry_after: 1e-4,
            ..CloudFaults::none(0xC10D)
        };
        let spec = fast_spec()
            .tenant(
                tenant("cloudy", PolicyId::NoPfs, 60, 91)
                    .with_fault_plan(FaultPlan::fault_free().with_cloud(cloud)),
            )
            .tenant(tenant("steady", PolicyId::Naive, 40, 92));
        let report = run_cluster(&spec);
        let c = &report.tenants[0];
        // The origin detour costs time, never content.
        assert_eq!(c.stats.samples_consumed, 2 * 60);
        let res = c.resilience.as_ref().expect("cloud tenants report stats");
        assert!(res.reads > 0, "origin must be exercised");
        assert!(res.throttled > 0, "rate 0.1 over 60 ids must fire");
        assert_eq!(res.exhausted, 0, "retry budget absorbs every burst");
        // Elastic tenants also surface their merged cache-tier view.
        assert!(!c.tier_stats.is_empty(), "tier stats ride along");
        assert!(c.tier_stats.iter().any(|t| t.hits > 0));
        // Tenants without a cloud clause don't.
        assert!(report.tenants[1].resilience.is_none());
        assert!(report.tenants[1].tier_stats.is_empty());
    }

    #[test]
    fn crash_and_churn_tenants_run_elastically() {
        use nopfs_policy::FaultPlan;
        let plan = FaultPlan::fault_free().crash(0, 2, 1).join(1);
        let spec = fast_spec()
            .tenant(tenant("elastic", PolicyId::NoPfs, 60, 71).with_fault_plan(plan))
            .tenant(tenant("steady", PolicyId::Naive, 40, 72));
        let report = run_cluster(&spec);
        let e = &report.tenants[0];
        // Elastic path: no drop_last, so exactly F samples per epoch
        // despite the crash replay and the joined worker.
        assert_eq!(e.stats.samples_consumed, 2 * 60);
        assert_eq!(e.epoch_times.len(), 2);
        assert!(e.setup.is_some(), "elastic tenants report setup stats");
        // The co-scheduled steady tenant is untouched.
        assert_eq!(report.tenants[1].stats.samples_consumed, 2 * 40);
    }

    #[test]
    #[should_panic(expected = "elastic")]
    fn baseline_tenants_reject_crash_plans() {
        use nopfs_policy::FaultPlan;
        let spec = fast_spec().tenant(
            tenant("naive-crash", PolicyId::Naive, 40, 81)
                .with_fault_plan(FaultPlan::fault_free().crash(0, 1, 0)),
        );
        spec.validate();
    }

    #[test]
    fn telemetry_streams_snapshot_and_trace_ride_the_report() {
        use nopfs_obs::{Json, ObsCtx};
        use std::time::Duration;
        let spec = fast_spec()
            .tenant(tenant("a", PolicyId::NoPfs, 64, 3))
            .tenant(tenant("b", PolicyId::Naive, 40, 4))
            .with_obs(ObsCtx::traced())
            .telemetry_every(Duration::from_millis(5));
        let report = run_cluster(&spec);
        for t in &report.tenants {
            // At least the final stop-time snapshot, parseable JSONL
            // with monotone sequence numbers and counters.
            assert!(!t.telemetry.is_empty(), "tenant {} has no lines", t.name);
            let mut prev_seq = -1.0;
            for line in &t.telemetry {
                let j = Json::parse(line).expect("telemetry line parses");
                let seq = j.get("seq").and_then(Json::as_num).expect("seq");
                assert!(seq > prev_seq, "seq must increase");
                prev_seq = seq;
            }
        }
        // The merged end-of-run snapshot sees both tenants' scopes.
        for name in ["a", "b"] {
            let key = format!("worker.consumed{{tenant={name},rank=0}}");
            assert!(
                report.snapshot.counter(&key).is_some_and(|v| v > 0),
                "snapshot missing {key}"
            );
        }
        // Tracing was on, so the chrome trace exports and parses.
        let trace = report.chrome_trace.as_ref().expect("tracing was on");
        let j = Json::parse(trace).expect("chrome trace parses");
        let events = j
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty(), "the run must emit events");
    }

    #[test]
    fn lbann_tenant_coexists_on_the_shared_pfs() {
        let spec = fast_spec()
            .tenant(tenant("lbann", PolicyId::LbannDynamic, 40, 41))
            .tenant(tenant("naive", PolicyId::Naive, 40, 42));
        let report = run_cluster(&spec);
        let lbann = &report.tenants[0];
        assert_eq!(lbann.stats.samples_consumed, 80);
        // Epoch 0 from the PFS, epoch 1 owner-served.
        assert_eq!(lbann.stats.pfs_fetches, 40);
        assert!(lbann.stats.local_fetches + lbann.stats.remote_fetches >= 40);
    }
}
