//! The tenancy configuration layer: who runs what, where, and when.

use nopfs_datasets::DatasetProfile;
use nopfs_obs::ObsCtx;
use nopfs_perfmodel::{SystemSpec, ThroughputCurve};
use nopfs_policy::fault::ShuffleSpec;
use nopfs_policy::{FaultPlan, PolicyId};
use nopfs_util::timing::TimeScale;

/// One co-scheduled training job.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Report label ("job-a", "imagenet-run", …).
    pub name: String,
    /// The loader policy this tenant trains with — any entry of
    /// [`PolicyId::ALL`]. (`Perfect` runs on synthetic in-RAM data and
    /// therefore neither causes nor suffers PFS interference.)
    pub policy: PolicyId,
    /// The tenant's modelled system: worker count, staging buffer,
    /// storage classes, and interconnect. The `pfs_read` curve inside
    /// it is **ignored** — the shared curve lives on [`ClusterSpec`].
    pub system: SystemSpec,
    /// The tenant's dataset (its slice of the shared filesystem).
    pub profile: DatasetProfile,
    /// Training epochs.
    pub epochs: u64,
    /// Per-worker mini-batch size.
    pub batch: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Start offset relative to the cluster clock, model seconds.
    pub start_delay: f64,
    /// Compute throughput `c`, model bytes/s.
    pub compute: f64,
    /// Gradient elements per allreduce (0 disables synchronization).
    pub grad_elems: usize,
    /// This tenant's fault schedule (default: fault-free). Transient
    /// read errors and stragglers are realized for every policy;
    /// crashes and membership churn route the tenant through the
    /// elastic runtime and therefore require [`PolicyId::NoPfs`].
    pub fault_plan: FaultPlan,
}

impl TenantSpec {
    /// A tenant with default compute (64 MB/s), a small gradient, and
    /// no start delay.
    ///
    /// # Panics
    /// Panics on zero epochs or batch size.
    pub fn new(
        name: impl Into<String>,
        policy: PolicyId,
        system: SystemSpec,
        profile: DatasetProfile,
        epochs: u64,
        batch: usize,
        seed: u64,
    ) -> Self {
        assert!(epochs > 0, "at least one epoch");
        assert!(batch > 0, "batch size must be positive");
        system.validate();
        Self {
            name: name.into(),
            policy,
            system,
            profile,
            epochs,
            batch,
            seed,
            start_delay: 0.0,
            compute: 64.0e6,
            grad_elems: 256,
            fault_plan: FaultPlan::fault_free(),
        }
    }

    /// Sets the start offset (model seconds).
    pub fn starting_at(mut self, delay: f64) -> Self {
        assert!(delay >= 0.0 && delay.is_finite());
        self.start_delay = delay;
        self
    }

    /// Sets the modelled compute throughput (model bytes/s).
    pub fn with_compute(mut self, compute: f64) -> Self {
        assert!(compute > 0.0 && compute.is_finite());
        self.compute = compute;
        self
    }

    /// Sets the gradient allreduce size (0 = unsynchronized).
    pub fn with_grad_elems(mut self, elems: usize) -> Self {
        self.grad_elems = elems;
        self
    }

    /// Schedules a fault plan for this tenant (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Whether the plan needs the elastic runtime: crashes tear worker
    /// sets down mid-epoch, churn changes the membership, and cloud
    /// clauses re-route the origin through the object-store backend and
    /// its resilience stack — all beyond what a steady-state loader
    /// stack can absorb in place.
    pub fn needs_elastic(&self) -> bool {
        self.fault_plan.has_crash()
            || self.fault_plan.cloud.is_some()
            || self
                .fault_plan
                .memberships(self.system.workers, self.epochs)
                .iter()
                .any(|&m| m != self.system.workers)
    }
}

/// The whole co-scheduling configuration: K tenants plus the substrate
/// they share.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The co-scheduled jobs.
    pub tenants: Vec<TenantSpec>,
    /// The **shared** PFS `t(γ)` curve spanning all tenants.
    pub pfs_read: ThroughputCurve,
    /// Model-to-wall time mapping for every substrate of every tenant.
    pub scale: TimeScale,
    /// When set, a machine-wide interconnect budget (model bytes/s)
    /// split across tenants proportionally to worker count; when
    /// `None`, every tenant keeps its own system's `interconnect` at
    /// face value (disjoint node partitions with full NICs).
    pub interconnect_total: Option<f64>,
    /// The cluster's observability context. Every tenant's runtime
    /// registers its metrics under a `tenant=<name>` scope of this
    /// registry, so one snapshot is the whole cluster's merged view.
    /// Default: active metrics, tracing off ([`ObsCtx::new`]); swap in
    /// [`ObsCtx::traced`] (via [`Self::with_obs`]) for event rings and
    /// Chrome-trace export.
    pub obs: ObsCtx,
    /// When set, each tenant gets a background [`nopfs_obs::Sampler`]
    /// snapshotting its scope of the registry every interval (wall
    /// seconds) into the tenant's JSONL telemetry stream
    /// ([`crate::TenantReport::telemetry`]).
    pub telemetry_interval: Option<std::time::Duration>,
}

impl ClusterSpec {
    /// An empty cluster sharing the given PFS curve.
    pub fn new(pfs_read: ThroughputCurve, scale: TimeScale) -> Self {
        Self {
            tenants: Vec::new(),
            pfs_read,
            scale,
            interconnect_total: None,
            obs: ObsCtx::new(),
            telemetry_interval: None,
        }
    }

    /// Replaces the observability context (e.g. [`ObsCtx::traced`] to
    /// capture breaker/hedge/replan events for Chrome-trace export).
    pub fn with_obs(mut self, obs: ObsCtx) -> Self {
        self.obs = obs;
        self
    }

    /// Enables live telemetry: one background sampler per tenant emits
    /// a JSONL snapshot line every `interval` of wall time.
    pub fn telemetry_every(mut self, interval: std::time::Duration) -> Self {
        assert!(
            interval > std::time::Duration::ZERO,
            "interval must be positive"
        );
        self.telemetry_interval = Some(interval);
        self
    }

    /// Adds a tenant (builder style).
    pub fn tenant(mut self, tenant: TenantSpec) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Splits a machine-wide interconnect budget across tenants by
    /// worker share instead of giving each partition full NICs.
    pub fn partitioned_interconnect(mut self, total: f64) -> Self {
        assert!(total > 0.0 && total.is_finite());
        self.interconnect_total = Some(total);
        self
    }

    /// Total workers across all tenants.
    pub fn total_workers(&self) -> usize {
        self.tenants.iter().map(|t| t.system.workers).sum()
    }

    /// Checks the configuration.
    ///
    /// # Panics
    /// Panics on an empty cluster or an infeasible tenant: an LBANN
    /// tenant whose dataset exceeds its aggregate worker memory (the
    /// data store's documented requirement, checked by the shared
    /// policy layer), a fault plan its run shape cannot satisfy, or a
    /// crash/churn plan on a baseline tenant (only the elastic NoPFS
    /// runtime re-splits memberships and replays crashes).
    pub fn validate(&self) {
        assert!(!self.tenants.is_empty(), "a cluster needs tenants");
        for t in &self.tenants {
            t.system.validate();
            if matches!(t.policy, PolicyId::LbannDynamic | PolicyId::LbannPreloading) {
                if let Err(e) =
                    nopfs_policy::core::lbann_feasible(&t.system, t.profile.total_bytes())
                {
                    panic!("tenant '{}': {}", t.name, e.0);
                }
            }
            let elastic = t.needs_elastic();
            assert!(
                !elastic || t.policy == PolicyId::NoPfs,
                "tenant '{}': crash/churn/cloud fault plans need the \
                 elastic NoPFS runtime; {} tenants support stragglers \
                 and read errors only",
                t.name,
                t.policy
            );
            // The elastic path runs without drop_last (churn must keep
            // the epoch length); the steady path trims for allreduce.
            let spec = ShuffleSpec::new(
                t.seed,
                t.profile.num_samples,
                t.system.workers,
                t.batch,
                !elastic,
            );
            if let Err(e) = t.fault_plan.validate(&spec, t.epochs) {
                panic!("tenant '{}': {}", t.name, e.0);
            }
        }
    }

    /// Each tenant's namespace offset on the shared PFS: tenant `i`'s
    /// sample ids `0..F_i` live at `base_i..base_i + F_i`, with bases
    /// the prefix sums of dataset sizes (no gaps, no collisions).
    pub fn namespace_bases(&self) -> Vec<u64> {
        let mut bases = Vec::with_capacity(self.tenants.len());
        let mut next = 0u64;
        for t in &self.tenants {
            bases.push(next);
            next = next
                .checked_add(t.profile.num_samples)
                .expect("combined datasets overflow the object id space");
        }
        bases
    }

    /// Tenant `i`'s effective system: its own spec, with the
    /// interconnect budget applied when partitioning is enabled.
    pub fn tenant_system(&self, i: usize) -> SystemSpec {
        let mut system = self.tenants[i].system.clone();
        if let Some(total) = self.interconnect_total {
            let share = system.workers as f64 / self.total_workers() as f64;
            system.interconnect = (total * share).max(1.0);
        }
        // The shared curve is authoritative; keep each tenant's copy in
        // sync so anything reading `system.pfs_read` (e.g. perf-model
        // source selection) prices PFS fetches on the real curve.
        system.pfs_read = self.pfs_read.clone();
        system
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::fig8_small_cluster;

    fn profile(n: u64) -> DatasetProfile {
        DatasetProfile::new("t", n, 1_000.0, 0.0, 4, 7)
    }

    fn tenant(name: &str, workers: usize, samples: u64) -> TenantSpec {
        let mut sys = fig8_small_cluster();
        sys.workers = workers;
        TenantSpec::new(name, PolicyId::Naive, sys, profile(samples), 2, 4, 1)
    }

    fn spec() -> ClusterSpec {
        ClusterSpec::new(ThroughputCurve::flat(1e9), TimeScale::new(1e-6))
    }

    #[test]
    fn namespace_bases_are_prefix_sums() {
        let s = spec()
            .tenant(tenant("a", 2, 100))
            .tenant(tenant("b", 2, 250))
            .tenant(tenant("c", 4, 30));
        assert_eq!(s.namespace_bases(), vec![0, 100, 350]);
        assert_eq!(s.total_workers(), 8);
    }

    #[test]
    fn interconnect_partition_follows_worker_share() {
        let s = spec()
            .tenant(tenant("a", 2, 10))
            .tenant(tenant("b", 6, 10))
            .partitioned_interconnect(8.0e9);
        assert!((s.tenant_system(0).interconnect - 2.0e9).abs() < 1.0);
        assert!((s.tenant_system(1).interconnect - 6.0e9).abs() < 1.0);
        // Without partitioning, face value survives.
        let s2 = spec().tenant(tenant("a", 2, 10));
        assert_eq!(
            s2.tenant_system(0).interconnect,
            s2.tenants[0].system.interconnect
        );
    }

    #[test]
    fn tenant_system_carries_the_shared_curve() {
        let s = spec().tenant(tenant("a", 2, 10));
        assert_eq!(s.tenant_system(0).pfs_read.at(1.0), 1e9);
    }

    #[test]
    #[should_panic(expected = "needs tenants")]
    fn empty_cluster_rejected() {
        spec().validate();
    }

    #[test]
    #[should_panic(expected = "aggregate worker memory")]
    fn infeasible_lbann_tenant_rejected() {
        let mut t = tenant("lbann", 2, 1_000_000);
        t.policy = PolicyId::LbannDynamic;
        t.system.classes[0].capacity = 1_000;
        spec().tenant(t).validate();
    }
}
