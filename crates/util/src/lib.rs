//! Foundation utilities for the NoPFS reproduction.
//!
//! This crate deliberately has no external dependencies beyond
//! `parking_lot`. In particular it implements its own pseudorandom number
//! generator: clairvoyance (the paper's key idea) requires that the random
//! access stream be *exactly* reproducible from a seed, forever, on every
//! platform. `rand`'s `StdRng` is documented as not portable across
//! versions, so we implement splitmix64 and xoshiro256++ from their
//! published reference specifications instead.
//!
//! Modules:
//! - [`rng`] — deterministic PRNG, Fisher–Yates shuffling, normal deviates.
//! - [`stats`] — summary statistics, percentiles, histograms.
//! - [`rate`] — token-bucket rate limiting for bandwidth-throttled backends.
//! - [`timing`] — time scaling and precise waits for runtime experiments.
//! - [`units`] — byte-size constants and formatting.

pub mod rate;
pub mod rng;
pub mod stats;
pub mod timing;
pub mod units;

pub use rate::TokenBucket;
pub use rng::Xoshiro256pp;
pub use stats::Summary;
pub use timing::TimeScale;
