//! Token-bucket rate limiting.
//!
//! The runtime substrates (synthetic PFS, throttled storage backends,
//! modelled NICs) make real byte movement take *realistic* time by pacing
//! it through token buckets whose refill rates follow the performance
//! model's throughput curves. A bucket is shared by all threads using a
//! device, so aggregate throughput — not per-thread throughput — is what
//! is limited, matching the paper's aggregate `r_j(p)`, `w_j(p)`, and
//! `t(γ)` quantities.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

use crate::timing::precise_wait;

#[derive(Debug)]
struct BucketState {
    /// Tokens currently available, in bytes.
    tokens: f64,
    /// Refill rate, bytes per wall second.
    rate: f64,
    /// Maximum token accumulation (burst), bytes.
    burst: f64,
    last_refill: Instant,
}

/// A thread-safe token bucket metering bytes per second.
///
/// `acquire(n)` blocks the calling thread until `n` bytes worth of tokens
/// are available, enforcing the configured aggregate rate across all
/// callers. Rates may be changed at runtime (`set_rate`), which is how the
/// synthetic PFS applies its reader-count-dependent `t(γ)` curve.
#[derive(Debug)]
pub struct TokenBucket {
    state: Mutex<BucketState>,
}

impl TokenBucket {
    /// Creates a bucket with the given rate (bytes/second) and burst
    /// capacity (bytes). The bucket starts full.
    ///
    /// # Panics
    /// Panics if `rate` or `burst` is not finite and positive.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        assert!(burst.is_finite() && burst > 0.0, "burst must be positive");
        Self {
            state: Mutex::new(BucketState {
                tokens: burst,
                rate,
                burst,
                last_refill: Instant::now(),
            }),
        }
    }

    /// Convenience constructor: burst sized to `burst_seconds` of rate.
    pub fn with_burst_window(rate: f64, burst_seconds: f64) -> Self {
        Self::new(rate, (rate * burst_seconds).max(1.0))
    }

    /// Changes the refill rate (bytes/second), effective immediately.
    /// Outstanding waiters recompute their wait on wakeup.
    ///
    /// # Panics
    /// Panics if `rate` is not finite and positive.
    pub fn set_rate(&self, rate: f64) {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        let mut s = self.state.lock();
        Self::refill(&mut s);
        s.rate = rate;
    }

    /// Current refill rate in bytes per second.
    pub fn rate(&self) -> f64 {
        self.state.lock().rate
    }

    fn refill(s: &mut BucketState) {
        let now = Instant::now();
        let dt = now.duration_since(s.last_refill).as_secs_f64();
        s.tokens = (s.tokens + dt * s.rate).min(s.burst);
        s.last_refill = now;
    }

    /// Blocks until `bytes` tokens are available, then consumes them.
    ///
    /// Uses debt-based pacing: tokens are consumed immediately (the
    /// balance may go negative) and the caller then waits until its own
    /// debt is repaid by the refill rate. Because debts queue up in lock
    /// order, concurrent callers are served FIFO at the aggregate rate,
    /// and requests larger than the burst capacity cannot deadlock.
    ///
    /// A rate change made while a caller is already waiting does not
    /// retroactively shorten or lengthen that caller's wait; this
    /// approximation is fine for the gradual `t(γ)` adjustments the PFS
    /// regulator makes.
    pub fn acquire(&self, bytes: u64) {
        let bytes = bytes as f64;
        let wait = {
            let mut s = self.state.lock();
            Self::refill(&mut s);
            s.tokens -= bytes;
            if s.tokens >= 0.0 {
                None
            } else {
                Some(Duration::from_secs_f64(-s.tokens / s.rate))
            }
        };
        if let Some(d) = wait {
            precise_wait(d);
        }
    }

    /// Non-blocking attempt to take `bytes` tokens; returns whether the
    /// tokens were consumed.
    pub fn try_acquire(&self, bytes: u64) -> bool {
        let mut s = self.state.lock();
        Self::refill(&mut s);
        if s.tokens >= bytes as f64 {
            s.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn burst_is_instant() {
        let tb = TokenBucket::new(1_000_000.0, 1_000_000.0);
        let t0 = Instant::now();
        tb.acquire(500_000);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn rate_is_enforced() {
        // 10 MB/s, tiny burst; moving 1 MB should take ~100 ms.
        let tb = TokenBucket::new(10_000_000.0, 10_000.0);
        // Drain the initial burst.
        tb.acquire(10_000);
        let t0 = Instant::now();
        for _ in 0..10 {
            tb.acquire(100_000);
        }
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.07, "finished too fast: {dt}s");
        assert!(dt < 0.4, "finished too slow: {dt}s");
    }

    #[test]
    fn oversized_request_does_not_deadlock() {
        let tb = TokenBucket::new(10_000_000.0, 1_000.0);
        let t0 = Instant::now();
        tb.acquire(1_000_000); // 1000x the burst; ~100 ms at 10 MB/s
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.05, "oversized transfer unrealistically fast: {dt}s");
        assert!(dt < 0.5);
    }

    #[test]
    fn aggregate_rate_across_threads() {
        let tb = Arc::new(TokenBucket::new(20_000_000.0, 10_000.0));
        tb.acquire(10_000);
        let t0 = Instant::now();
        let mut handles = vec![];
        for _ in 0..4 {
            let tb = Arc::clone(&tb);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    tb.acquire(100_000);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 4 threads * 5 * 100 KB = 2 MB at 20 MB/s => ~100 ms aggregate.
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.07, "aggregate pacing violated: {dt}s");
        assert!(dt < 0.5);
    }

    #[test]
    fn set_rate_takes_effect() {
        let tb = TokenBucket::new(1_000.0, 100.0);
        tb.acquire(100);
        tb.set_rate(10_000_000.0);
        let t0 = Instant::now();
        tb.acquire(1_000_000);
        assert!(t0.elapsed() < Duration::from_millis(400));
        assert_eq!(tb.rate(), 10_000_000.0);
    }

    #[test]
    fn try_acquire_semantics() {
        let tb = TokenBucket::new(1_000.0, 500.0);
        assert!(tb.try_acquire(400));
        assert!(!tb.try_acquire(400));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        TokenBucket::new(0.0, 1.0);
    }
}
