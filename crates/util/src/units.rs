//! Byte-size units and formatting.
//!
//! The paper expresses all sizes and rates in decimal megabytes (Table 2:
//! MB, MB/s); this module fixes those conventions in one place so every
//! crate agrees on what "135 GB dataset" means.

/// One kilobyte (decimal), in bytes.
pub const KB: f64 = 1_000.0;
/// One megabyte (decimal), in bytes.
pub const MB: f64 = 1_000_000.0;
/// One gigabyte (decimal), in bytes.
pub const GB: f64 = 1_000_000_000.0;
/// One terabyte (decimal), in bytes.
pub const TB: f64 = 1_000_000_000_000.0;

/// Formats a byte count with an adaptive decimal unit, e.g. `1.35 GB`.
pub fn format_bytes(bytes: f64) -> String {
    let abs = bytes.abs();
    if abs >= TB {
        format!("{:.2} TB", bytes / TB)
    } else if abs >= GB {
        format!("{:.2} GB", bytes / GB)
    } else if abs >= MB {
        format!("{:.2} MB", bytes / MB)
    } else if abs >= KB {
        format!("{:.2} KB", bytes / KB)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Formats a rate in bytes/second, e.g. `2.87 GB/s`.
pub fn format_rate(bytes_per_sec: f64) -> String {
    format!("{}/s", format_bytes(bytes_per_sec))
}

/// Formats a duration in seconds adaptively (`ms`, `s`, `min`, `hrs`),
/// matching the mixed units in the paper's figures.
pub fn format_seconds(secs: f64) -> String {
    let abs = secs.abs();
    if abs >= 3_600.0 {
        format!("{:.2} hrs", secs / 3_600.0)
    } else if abs >= 60.0 {
        format!("{:.2} min", secs / 60.0)
    } else if abs >= 1.0 {
        format!("{secs:.2} s")
    } else {
        format!("{:.2} ms", secs * 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_decimal() {
        assert_eq!(MB, 1e6);
        assert_eq!(GB, 1e9);
        assert_eq!(KB * 1000.0, MB);
        assert_eq!(MB * 1000.0, GB);
        assert_eq!(GB * 1000.0, TB);
    }

    #[test]
    fn formats_bytes_adaptively() {
        assert_eq!(format_bytes(512.0), "512 B");
        assert_eq!(format_bytes(1_350.0), "1.35 KB");
        assert_eq!(format_bytes(135.0 * GB), "135.00 GB");
        assert_eq!(format_bytes(4.0 * TB), "4.00 TB");
    }

    #[test]
    fn formats_rates() {
        assert_eq!(format_rate(2_870.0 * MB), "2.87 GB/s");
    }

    #[test]
    fn formats_seconds_adaptively() {
        assert_eq!(format_seconds(0.5), "500.00 ms");
        assert_eq!(format_seconds(42.0), "42.00 s");
        assert_eq!(format_seconds(90.0), "1.50 min");
        assert_eq!(format_seconds(4.72 * 3600.0), "4.72 hrs");
    }
}
