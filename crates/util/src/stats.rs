//! Summary statistics, percentiles, and histograms.
//!
//! The paper reports median epoch times with 95% confidence intervals and
//! violin plots of per-batch times (Figs. 10–15); this module provides the
//! numeric machinery those reproductions print: order statistics computed
//! by full sort (the sample counts here are small enough that selection
//! algorithms would be over-engineering), a distribution-free binomial
//! confidence interval on the median, and fixed-width histograms used for
//! Fig. 3's access-frequency plot.

/// Summary statistics over a sample of `f64` observations.
///
/// Construction sorts a copy of the data once; all accessors are O(1)
/// afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    std_dev: f64,
}

impl Summary {
    /// Builds a summary from the observations.
    ///
    /// # Panics
    /// Panics if `data` is empty or contains NaN.
    pub fn new(data: &[f64]) -> Self {
        assert!(
            !data.is_empty(),
            "Summary requires at least one observation"
        );
        assert!(
            data.iter().all(|x| !x.is_nan()),
            "Summary observations must not be NaN"
        );
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN checked above"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let var = if sorted.len() > 1 {
            sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Self {
            sorted,
            mean,
            std_dev: var.sqrt(),
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the summary holds exactly one observation — kept for
    /// clippy symmetry with [`Self::len`]; a `Summary` is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (Bessel-corrected; 0 for a single point).
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Linear-interpolated percentile, `p` in `[0, 100]`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Distribution-free ~95% confidence interval for the median, from the
    /// binomial order-statistic bound (the interval between order
    /// statistics `n/2 ± 1.96·√n/2`). Degenerates to `(min, max)` for very
    /// small samples — matching how the paper's error bars behave with 3
    /// to 10 epochs per point.
    pub fn median_ci95(&self) -> (f64, f64) {
        let n = self.sorted.len();
        if n < 3 {
            return (self.min(), self.max());
        }
        let nf = n as f64;
        let half_width = 1.96 * nf.sqrt() / 2.0;
        let lo = ((nf / 2.0 - half_width).floor().max(0.0)) as usize;
        let hi = (((nf / 2.0 + half_width).ceil()) as usize).min(n - 1);
        (self.sorted[lo], self.sorted[hi])
    }

    /// The sorted observations.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// A fixed-width histogram over `u64` values, used for the Fig. 3
/// access-frequency distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    bucket_width: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each;
    /// values at or beyond the last edge are clamped into the final
    /// bucket so no observation is ever lost.
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `bucket_width == 0`.
    pub fn new(buckets: usize, bucket_width: u64) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(bucket_width > 0, "bucket width must be positive");
        Self {
            counts: vec![0; buckets],
            bucket_width,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = ((value / self.bucket_width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Inclusive lower edge of bucket `i`.
    pub fn bucket_start(&self, i: usize) -> u64 {
        i as u64 * self.bucket_width
    }
}

/// Ordinary least-squares fit `y ≈ a + b·x`.
///
/// The paper infers unmeasured performance-model parameters (e.g. PFS
/// bandwidth at an unmeasured client count) "using linear regression";
/// this is that regression.
///
/// Returns `(intercept, slope)`.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or if all `x` are
/// identical (the slope would be undefined).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "mismatched regression inputs");
    assert!(!xs.is_empty(), "regression requires data");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
    }
    assert!(
        sxx > 0.0,
        "regression requires at least two distinct x values"
    );
    let slope = sxy / sxx;
    (mean_y - slope * mean_x, slope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s = Summary::new(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.std_dev() - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn summary_single_observation() {
        let s = Summary::new(&[7.5]);
        assert_eq!(s.median(), 7.5);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.percentile(99.0), 7.5);
        assert_eq!(s.median_ci95(), (7.5, 7.5));
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn summary_rejects_empty() {
        Summary::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn summary_rejects_nan() {
        Summary::new(&[1.0, f64::NAN]);
    }

    #[test]
    fn percentile_interpolates() {
        let s = Summary::new(&[0.0, 10.0]);
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(100.0), 10.0);
        assert!((s.percentile(50.0) - 5.0).abs() < 1e-12);
        assert!((s.percentile(25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn median_even_count() {
        let s = Summary::new(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.median() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn median_ci_contains_median() {
        let data: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let s = Summary::new(&data);
        let (lo, hi) = s.median_ci95();
        assert!(lo <= s.median() && s.median() <= hi);
        assert!(lo > s.min() && hi < s.max());
    }

    #[test]
    fn summary_unsorted_input() {
        let s = Summary::new(&[5.0, 1.0, 3.0]);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn histogram_records_and_clamps() {
        let mut h = Histogram::new(4, 10);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(39);
        h.record(40); // beyond last edge: clamped
        h.record(1_000_000);
        assert_eq!(h.counts(), &[2, 1, 0, 3]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.bucket_start(2), 20);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        Histogram::new(0, 1);
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_least_squares() {
        // Symmetric noise around y = x should fit slope ~1.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.1, 0.9, 2.1, 2.9];
        let (a, b) = linear_fit(&xs, &ys);
        assert!(b > 0.9 && b < 1.1, "slope {b}");
        assert!(a.abs() < 0.2, "intercept {a}");
    }

    #[test]
    #[should_panic(expected = "distinct x")]
    fn linear_fit_rejects_constant_x() {
        linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
    }
}
