//! Time scaling and precise waits for the runtime experiments.
//!
//! The paper's experiments span minutes to hours on 32–1024 GPUs; the
//! reproduction runs scaled-down versions in seconds on a handful of
//! threads. [`TimeScale`] maps *model seconds* (the performance model's
//! unit) to *wall time*, and [`precise_wait`] implements a hybrid
//! sleep/spin delay so that even sub-millisecond scaled durations keep
//! their correct relative magnitudes (plain `thread::sleep` has ~50 µs+
//! granularity and would flatten the distributions the violin plots in
//! Figs. 10–15 depend on).

use std::time::{Duration, Instant};

/// Threshold below which we spin instead of sleeping; OS sleep overshoot
/// is typically tens of microseconds, so sleeping for less than this is
/// mostly noise.
const SPIN_THRESHOLD: Duration = Duration::from_micros(200);

/// Waits for approximately `d`, combining `thread::sleep` for the bulk of
/// the interval with a spin loop for the final stretch.
///
/// Accuracy is a few microseconds, versus tens to hundreds for a bare
/// sleep. Zero-length waits return immediately.
pub fn precise_wait(d: Duration) {
    if d.is_zero() {
        return;
    }
    let deadline = Instant::now() + d;
    if d > SPIN_THRESHOLD {
        std::thread::sleep(d - SPIN_THRESHOLD);
    }
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Maps model time (the unit of the paper's performance model) to wall
/// time for the runtime experiments.
///
/// A scale of `1e-4` runs a modelled 1000-second epoch in 100 ms of wall
/// time. The mapping is linear, so ratios between policies — the
/// reproduction target — are preserved exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeScale {
    /// Wall seconds per model second.
    wall_per_model: f64,
}

impl TimeScale {
    /// Creates a scale with `wall_per_model` wall seconds per model second.
    ///
    /// # Panics
    /// Panics unless `wall_per_model` is finite and positive.
    pub fn new(wall_per_model: f64) -> Self {
        assert!(
            wall_per_model.is_finite() && wall_per_model > 0.0,
            "time scale must be positive"
        );
        Self { wall_per_model }
    }

    /// Identity scale: model seconds run in real time.
    pub fn realtime() -> Self {
        Self::new(1.0)
    }

    /// Wall seconds per model second.
    pub fn factor(&self) -> f64 {
        self.wall_per_model
    }

    /// Converts model seconds to a wall-clock duration.
    pub fn to_wall(&self, model_seconds: f64) -> Duration {
        debug_assert!(model_seconds >= 0.0, "negative model time");
        Duration::from_secs_f64((model_seconds * self.wall_per_model).max(0.0))
    }

    /// Converts an observed wall duration back to model seconds.
    pub fn to_model(&self, wall: Duration) -> f64 {
        wall.as_secs_f64() / self.wall_per_model
    }

    /// Scales a bandwidth given in model bytes/model-second into the
    /// equivalent wall bytes/wall-second (bandwidths shrink when time is
    /// compressed, because the same bytes must take fewer wall seconds...
    /// i.e. rates *grow* by `1/factor`).
    pub fn rate_to_wall(&self, model_bytes_per_sec: f64) -> f64 {
        model_bytes_per_sec / self.wall_per_model
    }

    /// Blocks for `model_seconds` of model time.
    pub fn wait(&self, model_seconds: f64) {
        precise_wait(self.to_wall(model_seconds));
    }
}

impl Default for TimeScale {
    fn default() -> Self {
        Self::realtime()
    }
}

/// A simple stopwatch measuring wall time, convertible to model time.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed wall time.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in model seconds under `scale`.
    pub fn elapsed_model(&self, scale: TimeScale) -> f64 {
        scale.to_model(self.elapsed())
    }

    /// Restarts the stopwatch, returning the elapsed wall time up to now.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_wait_zero_is_instant() {
        let t0 = Instant::now();
        precise_wait(Duration::ZERO);
        assert!(t0.elapsed() < Duration::from_millis(1));
    }

    #[test]
    fn precise_wait_accuracy_short() {
        // 100 µs wait should land within ~50 µs of target.
        let target = Duration::from_micros(100);
        let t0 = Instant::now();
        precise_wait(target);
        let e = t0.elapsed();
        assert!(e >= target, "returned early: {e:?}");
        assert!(e < target + Duration::from_micros(300), "overshoot: {e:?}");
    }

    #[test]
    fn precise_wait_accuracy_long() {
        let target = Duration::from_millis(20);
        let t0 = Instant::now();
        precise_wait(target);
        let e = t0.elapsed();
        assert!(e >= target);
        assert!(e < target + Duration::from_millis(10), "overshoot: {e:?}");
    }

    #[test]
    fn timescale_roundtrip() {
        let ts = TimeScale::new(1e-3);
        let wall = ts.to_wall(5.0);
        assert_eq!(wall, Duration::from_secs_f64(0.005));
        assert!((ts.to_model(wall) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn timescale_rate_conversion() {
        // Compressing time 1000x means rates must be 1000x faster on the
        // wall clock to move the same bytes per model second.
        let ts = TimeScale::new(1e-3);
        assert!((ts.rate_to_wall(10.0) - 10_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn timescale_rejects_zero() {
        TimeScale::new(0.0);
    }

    #[test]
    fn stopwatch_laps() {
        let mut sw = Stopwatch::start();
        precise_wait(Duration::from_millis(2));
        let lap = sw.lap();
        assert!(lap >= Duration::from_millis(2));
        let after = sw.elapsed();
        assert!(after < lap, "lap should reset the stopwatch");
    }

    #[test]
    fn default_is_realtime() {
        assert_eq!(TimeScale::default().factor(), 1.0);
    }
}
