//! Deterministic pseudorandom number generation.
//!
//! The paper's clairvoyance property (Sec. 2) rests on one fact: given the
//! seed used to shuffle sample indices, the entire access stream of every
//! worker can be recomputed exactly, arbitrarily far into the future. That
//! only holds if the PRNG stream is stable across library versions and
//! platforms, so this module implements two published, frozen algorithms:
//!
//! - **splitmix64** (Steele, Lea, Flood 2014) — used to expand a `u64` seed
//!   into the 256-bit state of the main generator, and for cheap stateless
//!   hashing of `(seed, epoch)` pairs.
//! - **xoshiro256++** (Blackman & Vigna 2019) — the main generator; fast,
//!   high quality, and trivially reproducible from its reference C code.
//!
//! On top of these we provide bias-free bounded integers (Lemire's
//! multiply-shift rejection method), Fisher–Yates shuffling, and
//! Box–Muller normal deviates for the synthetic dataset size distributions.

/// One step of the splitmix64 sequence; returns the output for state `x`
/// after advancing it by the golden-gamma increment.
///
/// This is the reference algorithm from Vigna's `splitmix64.c`, used both
/// for seeding [`Xoshiro256pp`] and as a stateless mixing function.
#[inline]
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// The output function of splitmix64 for a given (already advanced) state.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless mix of two 64-bit values into one, built from splitmix64.
///
/// Used to derive per-epoch shuffle seeds as `mix64(job_seed, epoch)` so
/// that every epoch gets an independent, reproducible permutation.
#[inline]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut s = a ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(b.wrapping_add(1));
    splitmix64(&mut s);
    let x = splitmix64_mix(s);
    splitmix64(&mut s);
    x ^ splitmix64_mix(s).rotate_left(23)
}

/// xoshiro256++ deterministic pseudorandom number generator.
///
/// Implemented from the reference C source (Blackman & Vigna, 2019,
/// public domain). The stream produced by a given seed is part of this
/// crate's stability guarantee: it will never change, because the paper's
/// clairvoyant prefetching derives every worker's future access sequence
/// from it.
///
/// ```
/// use nopfs_util::rng::Xoshiro256pp;
/// let mut a = Xoshiro256pp::seed_from_u64(42);
/// let mut b = Xoshiro256pp::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator by expanding `seed` with splitmix64, as
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            splitmix64(&mut state);
            *slot = splitmix64_mix(state);
        }
        // The all-zero state is invalid (the generator would be stuck);
        // splitmix64 cannot produce four zero outputs in a row, but guard
        // anyway so the invariant is locally evident.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Creates a generator from a full 256-bit state.
    ///
    /// Returns `None` for the all-zero state, which is the one invalid
    /// state of xoshiro256++.
    pub fn from_state(s: [u64; 4]) -> Option<Self> {
        if s == [0, 0, 0, 0] {
            None
        } else {
            Some(Self { s })
        }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly distributed bits (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)` without modulo bias, via Lemire's
    /// multiply-shift method with rejection.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            // threshold = 2^64 mod bound
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the half-open interval `(0, 1]`; never returns 0,
    /// which makes it safe as the argument of `ln` in Box–Muller.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A standard normal deviate via the Box–Muller transform.
    ///
    /// The second deviate of each pair is intentionally discarded to keep
    /// the generator stateless beyond its 256-bit core state (carrying a
    /// cached deviate would complicate cloning and reproducibility
    /// reasoning for marginal speedup in our workloads).
    pub fn next_standard_normal(&mut self) -> f64 {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal deviate with the given mean and standard deviation.
    pub fn next_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_standard_normal()
    }

    /// In-place Fisher–Yates shuffle.
    ///
    /// This is the "shuffle the indices each epoch" step of mini-batch SGD
    /// (paper Sec. 2); its output for a given seed is the foundation of
    /// clairvoyance.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        for i in (1..n).rev() {
            let j = self.next_below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Returns a shuffled permutation of `0..n` (as `u64` sample indices).
    pub fn permutation(&mut self, n: u64) -> Vec<u64> {
        let mut v = Vec::new();
        self.permutation_into(n, &mut v);
        v
    }

    /// Fills `out` with a shuffled permutation of `0..n`, reusing the
    /// buffer's existing allocation. Draws the same PRNG stream as
    /// [`Xoshiro256pp::permutation`], so the two produce identical
    /// permutations from identical generator states — callers in hot
    /// setup loops can reuse one buffer across epochs without changing
    /// any derived sequence.
    pub fn permutation_into(&mut self, n: u64, out: &mut Vec<u64>) {
        out.clear();
        out.extend(0..n);
        self.shuffle(out);
    }

    /// Samples `k` distinct values from `0..n` (partial Fisher–Yates).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_without_replacement(&mut self, n: u64, k: usize) -> Vec<u64> {
        assert!(k as u64 <= n, "cannot sample {k} items from a pool of {n}");
        // For small k relative to n use Floyd's algorithm to avoid
        // materializing the pool.
        if (k as u64) * 8 < n {
            let mut chosen = std::collections::HashSet::with_capacity(k);
            let mut out = Vec::with_capacity(k);
            for j in (n - k as u64)..n {
                let t = self.next_below(j + 1);
                let pick = if chosen.contains(&t) { j } else { t };
                chosen.insert(pick);
                out.push(pick);
            }
            out
        } else {
            let mut v: Vec<u64> = (0..n).collect();
            for i in 0..k {
                let j = i as u64 + self.next_below(n - i as u64);
                v.swap(i, j as usize);
            }
            v.truncate(k);
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs from the xoshiro256++ C code seeded with the
    /// state {1, 2, 3, 4} — guards against accidental algorithm drift.
    #[test]
    fn xoshiro_reference_vector() {
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]).unwrap();
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(0xDEAD_BEEF);
        let mut b = Xoshiro256pp::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_state_rejected() {
        assert!(Xoshiro256pp::from_state([0; 4]).is_none());
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn next_below_zero_panics() {
        Xoshiro256pp::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let mut counts = [0u32; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[rng.next_below(8) as usize] += 1;
        }
        let expect = draws as f64 / 8.0;
        for c in counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = rng.next_normal(5.0, 2.0);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 5.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.15, "variance was {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let mut v: Vec<u64> = (0..1000).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        // And it actually moved things (astronomically unlikely to be id).
        assert_ne!(v, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_deterministic_across_instances() {
        let mut a = Xoshiro256pp::seed_from_u64(5);
        let mut b = Xoshiro256pp::seed_from_u64(5);
        let mut va: Vec<u32> = (0..257).collect();
        let mut vb: Vec<u32> = (0..257).collect();
        a.shuffle(&mut va);
        b.shuffle(&mut vb);
        assert_eq!(va, vb);
    }

    #[test]
    fn shuffle_handles_degenerate_sizes() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut empty: Vec<u8> = vec![];
        rng.shuffle(&mut empty);
        let mut one = vec![42u8];
        rng.shuffle(&mut one);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        for (n, k) in [(100u64, 10usize), (100, 100), (1_000_000, 5), (10, 0)] {
            let s = rng.sample_without_replacement(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn mix64_depends_on_both_inputs() {
        assert_ne!(mix64(1, 2), mix64(2, 1));
        assert_ne!(mix64(0, 0), mix64(0, 1));
        assert_ne!(mix64(0, 0), mix64(1, 0));
        // Stateless: same inputs, same output.
        assert_eq!(mix64(123, 456), mix64(123, 456));
    }

    #[test]
    fn permutation_into_matches_permutation() {
        let mut a = Xoshiro256pp::seed_from_u64(33);
        let mut b = Xoshiro256pp::seed_from_u64(33);
        let mut buf = vec![9u64; 7]; // stale contents must not leak through
        for n in [0u64, 1, 50, 257] {
            b.permutation_into(n, &mut buf);
            assert_eq!(a.permutation(n), buf, "n={n}");
        }
    }

    #[test]
    fn permutation_covers_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let p = rng.permutation(50);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
