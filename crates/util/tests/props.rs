//! Property-based tests for the foundation utilities.

use nopfs_util::rng::{mix64, Xoshiro256pp};
use nopfs_util::stats::{linear_fit, Histogram, Summary};
use proptest::prelude::*;

proptest! {
    /// Bounded draws always land in range, for any seed and bound.
    #[test]
    fn next_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Shuffling any vector yields a permutation of it.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), n in 0usize..300) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// The PRNG stream is a pure function of the seed.
    #[test]
    fn stream_reproducible(seed in any::<u64>()) {
        let mut a = Xoshiro256pp::seed_from_u64(seed);
        let mut b = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// f64 draws stay in [0, 1) and open draws in (0, 1].
    #[test]
    fn unit_interval_draws(seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..100 {
            let x = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            prop_assert!(y > 0.0 && y <= 1.0);
        }
    }

    /// mix64 is deterministic and (statistically) input-sensitive.
    #[test]
    fn mix64_deterministic(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(mix64(a, b), mix64(a, b));
        prop_assert_ne!(mix64(a, b), mix64(a, b.wrapping_add(1)));
    }

    /// Summary order statistics are consistent: min <= p25 <= median <=
    /// p75 <= max, and the mean lies within [min, max].
    #[test]
    fn summary_order_statistics(data in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let s = Summary::new(&data);
        prop_assert!(s.min() <= s.percentile(25.0) + 1e-9);
        prop_assert!(s.percentile(25.0) <= s.median() + 1e-9);
        prop_assert!(s.median() <= s.percentile(75.0) + 1e-9);
        prop_assert!(s.percentile(75.0) <= s.max() + 1e-9);
        prop_assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
        let (lo, hi) = s.median_ci95();
        prop_assert!(lo <= s.median() + 1e-9 && s.median() <= hi + 1e-9);
    }

    /// Histograms never lose observations, whatever the values.
    #[test]
    fn histogram_conserves_counts(
        values in prop::collection::vec(any::<u64>(), 0..200),
        buckets in 1usize..20,
        width in 1u64..1000,
    ) {
        let mut h = Histogram::new(buckets, width);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
    }

    /// Linear regression exactly recovers noiseless lines.
    #[test]
    fn linear_fit_recovers_lines(
        a in -100.0f64..100.0,
        b in -100.0f64..100.0,
        n in 2usize..20,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
        let (ia, ib) = linear_fit(&xs, &ys);
        prop_assert!((ia - a).abs() < 1e-6 * (1.0 + a.abs()));
        prop_assert!((ib - b).abs() < 1e-6 * (1.0 + b.abs()));
    }
}
