//! The "No I/O" lower bound (paper Sec. 7, "Synthetic data lower
//! bound"): samples are pregenerated in RAM, so the loader never touches
//! the PFS or the network, and preprocessing (which parallel loader
//! workers fully overlap) never binds — the bound reflects pure
//! training-side consumption.

use crate::DataLoader;
use bytes::Bytes;
use nopfs_clairvoyance::engine::materialize_all_streams;
use nopfs_core::stats::{StatsCollector, WorkerStats};
use nopfs_core::{JobConfig, SampleId};
use nopfs_util::rng::Xoshiro256pp;
use std::sync::Arc;

/// Launches no-I/O loaders, one per worker thread.
pub struct NoIoRunner {
    config: JobConfig,
    sizes: Arc<Vec<u64>>,
}

impl NoIoRunner {
    /// Creates the runner for a dataset described by `sizes`.
    pub fn new(config: JobConfig, sizes: Arc<Vec<u64>>) -> Self {
        assert!(!sizes.is_empty(), "dataset must contain samples");
        Self { config, sizes }
    }

    /// Builds every rank's loader (shared with the registry factory).
    pub(crate) fn launch_all(&self) -> Vec<NoIoLoader> {
        let n = self.config.system.workers;
        let spec = self.config.shuffle_spec(self.sizes.len() as u64);
        // One engine pass materializes every rank's stream (O(E) shuffle
        // generations total instead of O(N·E) across the rank threads).
        let streams = materialize_all_streams(&spec, self.config.epochs);
        (0..n)
            .map(|rank| {
                let sizes = Arc::clone(&self.sizes);
                let config = self.config.clone();
                // "We pregenerate random samples in RAM of the
                // appropriate size": one random pool, sliced zero-copy
                // per sample.
                let max = sizes.iter().copied().max().unwrap_or(0) as usize;
                let mut rng = Xoshiro256pp::seed_from_u64(config.seed ^ rank as u64);
                let mut pool = vec![0u8; max.max(1)];
                for b in pool.iter_mut() {
                    *b = (rng.next_u64() & 0xFF) as u8;
                }
                let obs = config.obs.scoped([("rank", rank.to_string())]);
                NoIoLoader {
                    rank,
                    config,
                    sizes,
                    stream: Arc::clone(&streams[rank]),
                    pool: Bytes::from(pool),
                    stats: Arc::new(StatsCollector::in_registry(&obs.registry)),
                    consumed: 0,
                    epoch_len: spec.worker_epoch_len(rank),
                }
            })
            .collect()
    }

    /// Runs `f` once per worker with that worker's loader.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut dyn DataLoader) -> R + Sync,
    {
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .launch_all()
                .into_iter()
                .map(|mut loader| s.spawn(move || f(&mut loader)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    }
}

pub(crate) struct NoIoLoader {
    rank: usize,
    config: JobConfig,
    sizes: Arc<Vec<u64>>,
    stream: Arc<Vec<SampleId>>,
    pool: Bytes,
    stats: Arc<StatsCollector>,
    consumed: u64,
    epoch_len: u64,
}

impl DataLoader for NoIoLoader {
    fn rank(&self) -> usize {
        self.rank
    }

    fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    fn total_len(&self) -> u64 {
        self.stream.len() as u64
    }

    fn batch_size(&self) -> usize {
        self.config.batch_size
    }

    fn next_sample(&mut self) -> Option<(SampleId, Bytes)> {
        if self.consumed >= self.stream.len() as u64 {
            return None;
        }
        let k = self.stream[self.consumed as usize];
        let size = self.sizes[k as usize] as usize;
        let data = self.pool.slice(0..size);
        // Preprocessing runs on the loader workers and is fully
        // overlapped with compute, exactly as in the prefetching
        // loaders; with data already in RAM it never becomes the
        // bottleneck, so the bound reflects pure consumption.
        self.stats.count_consumed();
        self.consumed += 1;
        Some((k, data))
    }

    fn stats(&self) -> WorkerStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::fig8_small_cluster;
    use nopfs_util::timing::TimeScale;

    #[test]
    fn yields_full_stream_without_io() {
        let config = JobConfig::new(3, 2, 4, fig8_small_cluster(), TimeScale::new(1e-6));
        let sizes = Arc::new(vec![512u64; 40]);
        let runner = NoIoRunner::new(config, sizes);
        let counts = runner.run(|loader| {
            let mut n = 0u64;
            while let Some((id, data)) = loader.next_sample() {
                assert!(id < 40);
                assert_eq!(data.len(), 512);
                n += 1;
            }
            let s = loader.stats();
            assert_eq!(s.total_fetches(), 0, "no-I/O must not fetch");
            n
        });
        // 40 samples x 2 epochs across 4 workers.
        assert_eq!(counts.iter().sum::<u64>(), 80);
    }

    #[test]
    fn batches_work_through_the_trait() {
        let config = JobConfig::new(3, 1, 4, fig8_small_cluster(), TimeScale::new(1e-6));
        let sizes = Arc::new(vec![100u64; 16]);
        let runner = NoIoRunner::new(config, sizes);
        let shapes = runner.run(|loader| {
            let mut shapes = vec![];
            while let Some(b) = loader.next_batch() {
                shapes.push(b.len());
            }
            shapes
        });
        for s in shapes {
            assert_eq!(s, vec![4]); // 4 samples per worker, one batch
        }
    }
}
