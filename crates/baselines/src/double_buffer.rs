//! The double-buffering loader: PyTorch's `DataLoader` and NVIDIA DALI.
//!
//! PyTorch's built-in loader overlaps fetching the next mini-batches
//! with computation using a pool of prefetch workers with bounded
//! lookahead; every fetch still goes to the PFS, which is exactly why
//! it stops scaling once the PFS saturates (paper Secs. 2.2, 7.1). DALI
//! is the same loading policy with part of the preprocessing offloaded
//! to the GPU, modelled here by a configurable preprocessing speedup
//! (the paper found DALI "a relatively small performance improvement
//! over the default PyTorch DataLoader" on Piz Daint because the
//! baseline's augmentation was already well optimized).

use crate::DataLoader;
use bytes::Bytes;
use nopfs_clairvoyance::engine::materialize_all_streams;
use nopfs_core::stats::{StatsCollector, WorkerStats};
use nopfs_core::{JobConfig, SampleId};
use nopfs_pfs::Pfs;
use nopfs_storage::{ReorderStage, SourceError, TierStack};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Launches double-buffering loaders, one per worker thread.
pub struct DoubleBufferRunner {
    config: JobConfig,
    sizes: Arc<Vec<u64>>,
    /// Multiplier on preprocessing time: 1.0 models PyTorch, < 1.0
    /// models DALI's GPU offload.
    preprocess_factor: f64,
}

impl DoubleBufferRunner {
    /// A PyTorch-`DataLoader`-like runner (full preprocessing cost).
    pub fn pytorch_like(config: JobConfig, sizes: Arc<Vec<u64>>) -> Self {
        Self::with_preprocess_factor(config, sizes, 1.0)
    }

    /// A DALI-like runner: same loading policy, preprocessing partially
    /// offloaded to the accelerator.
    pub fn dali_like(config: JobConfig, sizes: Arc<Vec<u64>>) -> Self {
        Self::with_preprocess_factor(config, sizes, 0.4)
    }

    /// General constructor.
    ///
    /// # Panics
    /// Panics unless `0.0 < preprocess_factor <= 1.0`.
    pub fn with_preprocess_factor(
        config: JobConfig,
        sizes: Arc<Vec<u64>>,
        preprocess_factor: f64,
    ) -> Self {
        assert!(!sizes.is_empty(), "dataset must contain samples");
        assert!(
            preprocess_factor > 0.0 && preprocess_factor <= 1.0,
            "preprocess factor must be in (0, 1]"
        );
        Self {
            config,
            sizes,
            preprocess_factor,
        }
    }

    /// Launches every rank's loader (shared with the registry factory).
    pub(crate) fn launch_all(&self, pfs: &Pfs) -> Vec<DoubleBufferLoader> {
        let n = self.config.system.workers;
        let spec = self.config.shuffle_spec(self.sizes.len() as u64);
        // One engine pass materializes every rank's stream (O(E) shuffle
        // generations total instead of O(N·E) across the rank threads).
        let streams = materialize_all_streams(&spec, self.config.epochs);
        (0..n)
            .map(|rank| {
                DoubleBufferLoader::launch(
                    rank,
                    self.config.clone(),
                    pfs.clone(),
                    spec,
                    Arc::clone(&streams[rank]),
                    self.preprocess_factor,
                )
            })
            .collect()
    }

    /// Runs `f` once per worker.
    pub fn run<R, F>(&self, pfs: &Pfs, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut dyn DataLoader) -> R + Sync,
    {
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .launch_all(pfs)
                .into_iter()
                .map(|mut loader| {
                    s.spawn(move || {
                        let result = f(&mut loader);
                        loader.shutdown();
                        result
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    }
}

pub(crate) struct DoubleBufferLoader {
    rank: usize,
    batch_size: usize,
    stage: ReorderStage,
    stats: Arc<StatsCollector>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    total: u64,
    consumed: u64,
    epoch_len: u64,
}

impl DoubleBufferLoader {
    fn launch(
        rank: usize,
        config: JobConfig,
        pfs: Pfs,
        spec: nopfs_clairvoyance::sampler::ShuffleSpec,
        stream: Arc<Vec<SampleId>>,
        preprocess_factor: f64,
    ) -> Self {
        // Lookahead bounded by the staging-buffer capacity, the analogue
        // of PyTorch's prefetch_factor x num_workers batches in flight.
        let obs = config.obs.scoped([("rank", rank.to_string())]);
        let stage = ReorderStage::new_in_registry(config.system.staging.capacity, &obs.registry);
        let stats = Arc::new(StatsCollector::in_registry(&obs.registry));
        let stop = Arc::new(AtomicBool::new(false));
        let position = Arc::new(AtomicU64::new(0));
        // A cache-less hierarchy: double buffering prefetches but never
        // caches, so every read bottoms out in the PFS origin.
        let tiers = TierStack::origin_only_in_registry(Arc::new(pfs), &obs.registry);
        let mut threads = Vec::new();
        for _ in 0..config.system.staging.threads.max(1) {
            let stream = Arc::clone(&stream);
            let stage = stage.clone();
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let position = Arc::clone(&position);
            let tiers = tiers.clone();
            let config = config.clone();
            threads.push(std::thread::spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let pos = position.fetch_add(1, Ordering::SeqCst);
                if pos >= stream.len() as u64 {
                    break;
                }
                let k = stream[pos as usize];
                let data = loop {
                    match tiers.read(k) {
                        Ok(d) => break d,
                        Err(SourceError::NotFound(_)) => {
                            panic!("sample {k} missing from the PFS")
                        }
                        Err(_) => stats.count_pfs_error(),
                    }
                };
                stats.count_pfs();
                let wt = config.system.write_time(data.len() as u64) * preprocess_factor;
                config.scale.wait(wt);
                if !stage.push(pos, k, data) {
                    break;
                }
            }));
        }
        Self {
            rank,
            batch_size: config.batch_size,
            stage,
            stats,
            stop,
            threads,
            total: stream.len() as u64,
            consumed: 0,
            epoch_len: spec.worker_epoch_len(rank),
        }
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.stage.close();
        for t in self.threads.drain(..) {
            t.join().expect("prefetch thread panicked");
        }
    }
}

impl DataLoader for DoubleBufferLoader {
    fn rank(&self) -> usize {
        self.rank
    }

    fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    fn total_len(&self) -> u64 {
        self.total
    }

    fn batch_size(&self) -> usize {
        self.batch_size
    }

    fn next_sample(&mut self) -> Option<(SampleId, Bytes)> {
        if self.consumed >= self.total {
            return None;
        }
        let t0 = Instant::now();
        let item = self.stage.pop()?;
        self.stats.add_stall(t0.elapsed());
        self.stats.count_consumed();
        self.consumed += 1;
        Some(item)
    }

    fn stats(&self) -> WorkerStats {
        self.stats.snapshot()
    }

    fn shutdown(&mut self) {
        DoubleBufferLoader::shutdown(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_clairvoyance::stream::AccessStream;
    use nopfs_perfmodel::presets::fig8_small_cluster;
    use nopfs_perfmodel::ThroughputCurve;
    use nopfs_util::timing::TimeScale;

    fn setup(n_samples: u64) -> (JobConfig, Arc<Vec<u64>>, Pfs) {
        let mut sys = fig8_small_cluster();
        sys.staging.capacity = 8_192;
        let config = JobConfig::new(21, 2, 4, sys, TimeScale::new(1e-6));
        let sizes = Arc::new(vec![512u64; n_samples as usize]);
        let pfs = Pfs::in_memory(ThroughputCurve::flat(1e12), TimeScale::new(1e-6));
        for id in 0..n_samples {
            pfs.put(id, Bytes::from(vec![(id % 256) as u8; 512]));
        }
        (config, sizes, pfs)
    }

    #[test]
    fn delivers_stream_in_order_all_from_pfs() {
        let (config, sizes, pfs) = setup(48);
        let spec = config.shuffle_spec(48);
        let runner = DoubleBufferRunner::pytorch_like(config, sizes);
        let streams = runner.run(&pfs, |l| {
            let mut got = vec![];
            while let Some((id, data)) = l.next_sample() {
                assert_eq!(data[0], (id % 256) as u8);
                got.push(id);
            }
            (l.rank(), got, l.stats())
        });
        for (rank, got, stats) in streams {
            let expect = AccessStream::new(spec, rank, 2).materialize();
            assert_eq!(got, expect, "worker {rank} order");
            assert_eq!(stats.pfs_fetches, expect.len() as u64);
            assert_eq!(stats.local_fetches + stats.remote_fetches, 0);
        }
    }

    #[test]
    fn early_stop_is_clean() {
        let (config, sizes, pfs) = setup(400);
        let runner = DoubleBufferRunner::pytorch_like(config, sizes);
        let counts = runner.run(&pfs, |l| {
            let mut n = 0;
            for _ in 0..5 {
                if l.next_sample().is_none() {
                    break;
                }
                n += 1;
            }
            n
        });
        assert!(counts.iter().all(|&c| c == 5));
    }

    #[test]
    fn dali_factor_is_validated() {
        let (config, sizes, _) = setup(8);
        let r = DoubleBufferRunner::dali_like(config, sizes);
        assert!(r.preprocess_factor < 1.0);
    }

    #[test]
    #[should_panic(expected = "preprocess factor")]
    fn zero_factor_rejected() {
        let (config, sizes, _) = setup(8);
        DoubleBufferRunner::with_preprocess_factor(config, sizes, 0.0);
    }
}
