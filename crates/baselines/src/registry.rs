//! The runtime loader factory: one dispatch point from [`PolicyId`] to
//! a working loader stack, used by the solo runtime, the benches, and
//! the multi-tenant cluster.
//!
//! Every entry of `PolicyId::ALL` constructs here:
//!
//! | policy                  | runtime implementation                    |
//! |-------------------------|-------------------------------------------|
//! | `Perfect`               | [`NoIoRunner`] (pregenerated RAM data)    |
//! | `Naive`                 | [`NaiveRunner`] (synchronous PFS reads)   |
//! | `StagingBuffer`         | [`DoubleBufferRunner`] (PyTorch-like)     |
//! | `NoPfs`                 | `nopfs_core::Job`                         |
//! | every other baseline    | [`PlanRunner`] over its shared core       |
//!
//! [`run_policy`] is the closure-style harness entry point;
//! [`build_loaders`] / [`build_loader`] are the object-safe factory
//! returning `Box<dyn DataLoader>` values for callers that want to own
//! the iteration themselves.

use crate::plan_loader::PlanRunner;
use crate::{DataLoader, DoubleBufferRunner, NaiveRunner, NoIoRunner};
use nopfs_core::stats::SetupStats;
use nopfs_core::{Job, JobConfig};
use nopfs_pfs::Pfs;
use nopfs_policy::{PolicyId, Unsupported};
use std::sync::Arc;

/// What one registry-dispatched run produced.
pub struct PolicyOutcome<R> {
    /// Per-worker results of the harness closure, rank order.
    pub per_worker: Vec<R>,
    /// Clairvoyant setup statistics (NoPFS only).
    pub setup: Option<SetupStats>,
}

/// Runs `policy` on the given configuration: launches the full worker
/// set, calls `f` once per rank with that rank's loader, and returns
/// the per-rank results.
///
/// This is the single dispatch point all harnesses share — the solo
/// runtime benches, the multi-tenant cluster, and the examples.
///
/// # Errors
/// [`Unsupported`] when the policy cannot run the configuration (the
/// LBANN modes with a dataset exceeding aggregate worker memory).
pub fn run_policy<R, F>(
    policy: PolicyId,
    config: JobConfig,
    sizes: Arc<Vec<u64>>,
    pfs: &Pfs,
    f: F,
) -> Result<PolicyOutcome<R>, Unsupported>
where
    R: Send,
    F: Fn(&mut dyn DataLoader) -> R + Sync,
{
    Ok(match policy {
        PolicyId::Perfect => PolicyOutcome {
            per_worker: NoIoRunner::new(config, sizes).run(f),
            setup: None,
        },
        PolicyId::Naive => PolicyOutcome {
            per_worker: NaiveRunner::new(config, sizes).run(pfs, f),
            setup: None,
        },
        PolicyId::StagingBuffer => PolicyOutcome {
            per_worker: DoubleBufferRunner::pytorch_like(config, sizes).run(pfs, f),
            setup: None,
        },
        PolicyId::NoPfs => {
            let job = Job::new(config, sizes);
            let setup = Some(job.setup_stats().clone());
            PolicyOutcome {
                per_worker: job.run(pfs, |w| f(w)),
                setup,
            }
        }
        _ => PolicyOutcome {
            per_worker: PlanRunner::new(policy, config, sizes)?.run(pfs, f),
            setup: None,
        },
    })
}

/// A full worker set of loaders for one policy, rank order.
///
/// Dropping the set shuts every loader down **concurrently** (one
/// thread per loader) — required because peer-coupled loaders barrier
/// with their siblings during shutdown.
pub struct LoaderSet {
    loaders: Vec<Option<Box<dyn DataLoader>>>,
}

impl LoaderSet {
    fn new(loaders: Vec<Box<dyn DataLoader>>) -> Self {
        Self {
            loaders: loaders.into_iter().map(Some).collect(),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.loaders.len()
    }

    /// Whether the set is empty (only after `take`-ing every loader).
    pub fn is_empty(&self) -> bool {
        self.loaders.iter().all(Option::is_none)
    }

    /// Mutable access to rank `rank`'s loader.
    ///
    /// # Panics
    /// Panics when the rank is out of range or already taken.
    pub fn get_mut(&mut self, rank: usize) -> &mut dyn DataLoader {
        self.loaders[rank]
            .as_deref_mut()
            .expect("loader already taken")
    }

    /// Iterates over the remaining loaders in rank order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut dyn DataLoader> {
        self.loaders
            .iter_mut()
            .filter_map(|l| l.as_deref_mut().map(|l| l as &mut dyn DataLoader))
    }
}

impl Drop for LoaderSet {
    fn drop(&mut self) {
        let loaders: Vec<Box<dyn DataLoader>> =
            self.loaders.iter_mut().filter_map(Option::take).collect();
        std::thread::scope(|s| {
            for mut loader in loaders {
                s.spawn(move || loader.shutdown());
            }
        });
    }
}

/// The object-safe loader factory: builds the complete worker set for
/// `policy` as boxed [`DataLoader`]s — one per rank of
/// `config.system.workers` — ready to be driven from any threads.
///
/// The dataset described by `sizes` must already be materialized in
/// `pfs` (except for `Perfect`, which synthesizes its data).
///
/// # Errors
/// [`Unsupported`] when the policy cannot run the configuration.
pub fn build_loaders(
    policy: PolicyId,
    config: JobConfig,
    sizes: Arc<Vec<u64>>,
    pfs: &Pfs,
) -> Result<LoaderSet, Unsupported> {
    let loaders: Vec<Box<dyn DataLoader>> = match policy {
        PolicyId::Perfect => NoIoRunner::new(config, sizes)
            .launch_all()
            .into_iter()
            .map(|l| Box::new(l) as Box<dyn DataLoader>)
            .collect(),
        PolicyId::Naive => NaiveRunner::new(config, sizes)
            .launch_all(pfs)
            .into_iter()
            .map(|l| Box::new(l) as Box<dyn DataLoader>)
            .collect(),
        PolicyId::StagingBuffer => DoubleBufferRunner::pytorch_like(config, sizes)
            .launch_all(pfs)
            .into_iter()
            .map(|l| Box::new(l) as Box<dyn DataLoader>)
            .collect(),
        PolicyId::NoPfs => Job::new(config, sizes)
            .launch_workers(pfs)
            .into_iter()
            .map(|l| Box::new(l) as Box<dyn DataLoader>)
            .collect(),
        _ => PlanRunner::new(policy, config, sizes)?
            .launch_all(pfs)
            .into_iter()
            .map(|l| Box::new(l) as Box<dyn DataLoader>)
            .collect(),
    };
    Ok(LoaderSet::new(loaders))
}

/// The single-worker convenience of [`build_loaders`]: one policy, one
/// rank, one `Box<dyn DataLoader>` that cleans up after itself on drop.
///
/// # Errors
/// [`Unsupported`] when the policy cannot run the configuration.
///
/// # Panics
/// Panics unless `config.system.workers == 1` (a lone boxed loader
/// cannot coordinate the concurrent multi-rank shutdown; use
/// [`build_loaders`] for clusters).
pub fn build_loader(
    policy: PolicyId,
    config: JobConfig,
    sizes: Arc<Vec<u64>>,
    pfs: &Pfs,
) -> Result<Box<dyn DataLoader>, Unsupported> {
    assert_eq!(
        config.system.workers, 1,
        "build_loader is the single-worker factory; use build_loaders for clusters"
    );
    let mut set = build_loaders(policy, config, sizes, pfs)?;
    let inner = set.loaders[0].take().expect("factory built one loader");
    Ok(Box::new(SoloLoader { inner: Some(inner) }))
}

/// Shutdown-on-drop wrapper for single-worker loaders.
struct SoloLoader {
    inner: Option<Box<dyn DataLoader>>,
}

impl SoloLoader {
    fn get(&self) -> &dyn DataLoader {
        self.inner.as_deref().expect("present until drop")
    }

    fn get_mut(&mut self) -> &mut dyn DataLoader {
        self.inner.as_deref_mut().expect("present until drop")
    }
}

impl DataLoader for SoloLoader {
    fn rank(&self) -> usize {
        self.get().rank()
    }

    fn epoch_len(&self) -> u64 {
        self.get().epoch_len()
    }

    fn total_len(&self) -> u64 {
        self.get().total_len()
    }

    fn batch_size(&self) -> usize {
        self.get().batch_size()
    }

    fn next_sample(&mut self) -> Option<(nopfs_core::SampleId, bytes::Bytes)> {
        self.get_mut().next_sample()
    }

    fn next_batch(&mut self) -> Option<Vec<(nopfs_core::SampleId, bytes::Bytes)>> {
        self.get_mut().next_batch()
    }

    fn stats(&self) -> nopfs_core::stats::WorkerStats {
        self.get().stats()
    }

    fn shutdown(&mut self) {
        self.get_mut().shutdown();
    }
}

impl Drop for SoloLoader {
    fn drop(&mut self) {
        if let Some(mut inner) = self.inner.take() {
            // World size 1: the shutdown barrier is trivially safe.
            inner.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use nopfs_perfmodel::presets::fig8_small_cluster;
    use nopfs_perfmodel::{SystemSpec, ThroughputCurve};
    use nopfs_util::timing::TimeScale;

    fn system(workers: usize) -> SystemSpec {
        let mut sys = fig8_small_cluster();
        sys.workers = workers;
        sys.staging.capacity = 64_000;
        sys.staging.threads = 2;
        sys.classes[0].capacity = 40_000;
        sys.classes[1].capacity = 80_000;
        sys
    }

    fn setup(workers: usize, samples: u64) -> (JobConfig, Arc<Vec<u64>>, Pfs) {
        let config = JobConfig::new(23, 2, 4, system(workers), TimeScale::new(1e-6));
        let sizes = Arc::new(vec![500u64; samples as usize]);
        let pfs = Pfs::in_memory(ThroughputCurve::flat(1e12), TimeScale::new(1e-6));
        for id in 0..samples {
            pfs.put(id, Bytes::from(vec![(id % 256) as u8; 500]));
        }
        (config, sizes, pfs)
    }

    #[test]
    fn every_policy_runs_through_the_registry() {
        for policy in PolicyId::ALL {
            let (config, sizes, pfs) = setup(2, 32);
            let outcome = run_policy(policy, config, sizes, &pfs, |l| {
                let mut n = 0u64;
                while l.next_sample().is_some() {
                    n += 1;
                }
                n
            })
            .unwrap_or_else(|e| panic!("{policy}: {e}"));
            let total: u64 = outcome.per_worker.iter().sum();
            assert_eq!(total, 64, "{policy} must deliver F*E samples");
            assert_eq!(outcome.setup.is_some(), policy == PolicyId::NoPfs);
        }
    }

    #[test]
    fn build_loader_constructs_all_ten_policies_solo() {
        for policy in PolicyId::ALL {
            let (config, sizes, pfs) = setup(1, 16);
            let mut loader = build_loader(policy, config, sizes, &pfs)
                .unwrap_or_else(|e| panic!("{policy}: {e}"));
            assert_eq!(loader.rank(), 0);
            assert_eq!(loader.total_len(), 32);
            let mut n = 0u64;
            while loader.next_sample().is_some() {
                n += 1;
            }
            assert_eq!(n, 32, "{policy}");
        }
    }

    #[test]
    fn loader_set_drives_a_multi_worker_cluster() {
        for policy in [
            PolicyId::NoPfs,
            PolicyId::LbannDynamic,
            PolicyId::DeepIoOrdered,
        ] {
            let (config, sizes, pfs) = setup(2, 32);
            let mut set = build_loaders(policy, config, sizes, &pfs).expect("supported");
            assert_eq!(set.len(), 2);
            // Drive both ranks concurrently (as a harness would).
            let counts: Vec<u64> = std::thread::scope(|s| {
                set.iter_mut()
                    .map(|loader| {
                        s.spawn(move || {
                            let mut n = 0u64;
                            while loader.next_sample().is_some() {
                                n += 1;
                            }
                            n
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().expect("rank panicked"))
                    .collect()
            });
            assert_eq!(counts.iter().sum::<u64>(), 64, "{policy}");
            drop(set); // concurrent shutdown must not deadlock
        }
    }

    #[test]
    fn unsupported_configurations_are_errors_not_panics() {
        // 64 x 500 B = 32 KB > 2 x 4 KB of aggregate RAM.
        let (mut config, sizes, pfs) = setup(2, 64);
        config.system.classes[0].capacity = 4_000;
        let err = run_policy(PolicyId::LbannDynamic, config, sizes, &pfs, |_| ()).err();
        assert!(err.expect("infeasible").0.contains("aggregate"));
    }

    #[test]
    fn batches_flow_through_boxed_loaders() {
        let (config, sizes, pfs) = setup(1, 16);
        let mut loader = build_loader(PolicyId::StagingBuffer, config, sizes, &pfs).unwrap();
        let mut shapes = vec![];
        while let Some(b) = loader.next_batch() {
            shapes.push(b.len());
        }
        // 16 samples x 2 epochs, epoch len 16, batch 4.
        assert_eq!(shapes, vec![4; 8]);
    }
}
