//! Runtime baseline data loaders (the paper's Sec. 7 comparison points).
//!
//! The evaluation compares NoPFS against PyTorch's built-in
//! `DataLoader` (double buffering with prefetch workers), DALI
//! (double buffering with GPU-offloaded preprocessing), the LBANN data
//! store (first-touch in-memory caching with owner-served remote
//! fetches), and a synthetic-data "No I/O" lower bound. This crate
//! implements each of those loaders **on the same substrates NoPFS
//! uses** — the synthetic PFS, the modelled interconnect, the throttled
//! storage backends — so that runtime comparisons isolate the policy,
//! exactly as the paper's head-to-head experiments do.
//!
//! All loaders implement [`DataLoader`], and so does
//! `nopfs_core::WorkerHandle`, so training loops and benches are
//! generic over the policy.

pub mod double_buffer;
pub mod lbann;
pub mod naive;
pub mod noio;
pub mod plan_loader;
pub mod registry;

use bytes::Bytes;
use nopfs_core::stats::WorkerStats;
use nopfs_core::SampleId;

pub use double_buffer::DoubleBufferRunner;
pub use lbann::LbannRunner;
pub use naive::NaiveRunner;
pub use noio::NoIoRunner;
pub use plan_loader::PlanRunner;
pub use registry::{build_loader, build_loaders, run_policy, LoaderSet, PolicyOutcome};

/// The common loader interface: iterator-style access to `(id, bytes)`
/// pairs in the loader's delivery order, plus statistics.
pub trait DataLoader: Send {
    /// This worker's rank.
    fn rank(&self) -> usize;

    /// Samples per epoch for this worker.
    fn epoch_len(&self) -> u64;

    /// Total samples the loader will yield.
    fn total_len(&self) -> u64;

    /// Per-worker mini-batch size.
    fn batch_size(&self) -> usize;

    /// Next sample, blocking on I/O; `None` when exhausted.
    fn next_sample(&mut self) -> Option<(SampleId, Bytes)>;

    /// I/O statistics so far.
    fn stats(&self) -> WorkerStats;

    /// Next mini-batch (never crosses an epoch boundary). Epoch
    /// semantics come from the workspace-shared
    /// [`nopfs_core::next_batch_len`] — the same function
    /// `WorkerHandle::next_batch` uses, so batching cannot diverge
    /// between NoPFS and the baselines.
    fn next_batch(&mut self) -> Option<Vec<(SampleId, Bytes)>> {
        let want = nopfs_core::next_batch_len(
            self.stats().samples_consumed,
            self.total_len(),
            self.epoch_len(),
            self.batch_size(),
        );
        if want == 0 {
            return None;
        }
        let mut batch = Vec::with_capacity(want);
        for _ in 0..want {
            match self.next_sample() {
                Some(item) => batch.push(item),
                None => break,
            }
        }
        if batch.is_empty() {
            None
        } else {
            Some(batch)
        }
    }

    /// Releases the loader's resources: stops prefetch threads and
    /// synchronizes with peer loaders of the same run. Idempotent;
    /// default is a no-op for loaders without background threads.
    ///
    /// Loaders of a peer-coupled policy (NoPFS, LBANN, DeepIO, …)
    /// barrier with their siblings here, so a multi-worker set must be
    /// shut down **concurrently** — one thread per loader, as
    /// [`registry::LoaderSet`] does on drop.
    fn shutdown(&mut self) {}
}

impl DataLoader for nopfs_core::WorkerHandle {
    fn rank(&self) -> usize {
        nopfs_core::WorkerHandle::rank(self)
    }

    fn epoch_len(&self) -> u64 {
        nopfs_core::WorkerHandle::epoch_len(self)
    }

    fn total_len(&self) -> u64 {
        self.len()
    }

    fn batch_size(&self) -> usize {
        nopfs_core::WorkerHandle::batch_size(self)
    }

    fn next_sample(&mut self) -> Option<(SampleId, Bytes)> {
        nopfs_core::WorkerHandle::next_sample(self)
    }

    fn stats(&self) -> WorkerStats {
        nopfs_core::WorkerHandle::stats(self)
    }

    fn next_batch(&mut self) -> Option<Vec<(SampleId, Bytes)>> {
        nopfs_core::WorkerHandle::next_batch(self)
    }

    fn shutdown(&mut self) {
        nopfs_core::WorkerHandle::shutdown(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait's default `next_batch` respects epoch boundaries.
    struct Fake {
        yielded: u64,
    }

    impl DataLoader for Fake {
        fn rank(&self) -> usize {
            0
        }
        fn epoch_len(&self) -> u64 {
            5
        }
        fn total_len(&self) -> u64 {
            10
        }
        fn batch_size(&self) -> usize {
            3
        }
        fn next_sample(&mut self) -> Option<(SampleId, Bytes)> {
            if self.yielded >= 10 {
                return None;
            }
            self.yielded += 1;
            Some((self.yielded - 1, Bytes::from_static(b"x")))
        }
        fn stats(&self) -> WorkerStats {
            WorkerStats {
                local_fetches: 0,
                remote_fetches: 0,
                pfs_fetches: 0,
                prestage_fetches: 0,
                false_positives: 0,
                heuristic_skips: 0,
                pfs_errors: 0,
                stall_time: std::time::Duration::ZERO,
                samples_consumed: self.yielded,
            }
        }
    }

    #[test]
    fn default_next_batch_respects_epochs() {
        let mut f = Fake { yielded: 0 };
        let sizes: Vec<usize> = std::iter::from_fn(|| f.next_batch().map(|b| b.len())).collect();
        // Epoch of 5 with batch 3: 3+2, twice.
        assert_eq!(sizes, vec![3, 2, 3, 2]);
    }
}
