//! The core-driven runtime loader: executes a shared
//! [`nopfs_policy::PolicyCore`] with real threads, caches, and bytes.
//!
//! This is the runtime half of the workspace policy layer. The
//! discrete-event simulator adapts a core into its event loop; this
//! loader drives the *same object* through the threaded substrates:
//!
//! - a **prestage thread** loads the core's prestage list from the PFS
//!   into the class backends, then barriers with its peers (the
//!   non-overlapped prestaging phase of DeepIO / ParallelStaging /
//!   LBANN-preloading);
//! - **staging prefetch threads** walk the core-transformed access
//!   stream and serve each access from the source the core decides —
//!   local class backend, a peer over the modelled interconnect, or
//!   the PFS (caching first-touch fills where the core says so);
//! - a **serving loop** answers peers' sample requests from the local
//!   backends, paying the modelled wire cost.
//!
//! One implementation therefore covers every core-backed policy; the
//! policies differ only in the decisions their cores return.

use crate::DataLoader;
use bytes::Bytes;
use nopfs_core::msg::{Msg, RemoteReply};
use nopfs_core::stats::{StatsCollector, WorkerStats};
use nopfs_core::{JobConfig, SampleId};
use nopfs_net::{cluster, Endpoint, NetConfig};
use nopfs_pfs::Pfs;
use nopfs_policy::{build_core, PolicyCore, PolicyId, Source, Unsupported};
use nopfs_storage::{ReorderStage, SourceError, TierStack};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Launches core-driven loaders, one per worker thread, for any policy
/// with a shared decision core.
pub struct PlanRunner {
    config: JobConfig,
    sizes: Arc<Vec<u64>>,
    core: Arc<dyn PolicyCore>,
}

impl PlanRunner {
    /// Builds the runner: derives the policy's shared decision core
    /// from the seed and system description.
    ///
    /// # Errors
    /// [`Unsupported`] when the policy cannot run the configuration
    /// (e.g. the LBANN data store with an over-sized dataset) or has no
    /// shared core (`NoPfs`, `Perfect` — use `Job` / `NoIoRunner`).
    pub fn new(
        policy: PolicyId,
        config: JobConfig,
        sizes: Arc<Vec<u64>>,
    ) -> Result<Self, Unsupported> {
        assert!(!sizes.is_empty(), "dataset must contain samples");
        let spec = config.shuffle_spec(sizes.len() as u64);
        let core = build_core(policy, &config.system, &sizes, &spec)?.ok_or_else(|| {
            Unsupported(format!(
                "{policy} has no shared decision core; use its dedicated runner"
            ))
        })?;
        let core: Arc<dyn PolicyCore> = Arc::from(core);
        if !core.overlapped() {
            return Err(Unsupported(format!(
                "{policy} is synchronous; PlanRunner drives prefetch threads — use NaiveRunner"
            )));
        }
        Ok(Self {
            config,
            sizes,
            core,
        })
    }

    /// Runs `f` once per worker.
    pub fn run<R, F>(&self, pfs: &Pfs, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut dyn DataLoader) -> R + Sync,
    {
        let loaders = self.launch_all(pfs);
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = loaders
                .into_iter()
                .map(|mut loader| {
                    s.spawn(move || {
                        let result = f(&mut loader);
                        loader.shutdown();
                        result
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    }

    /// Launches every rank's loader (prestaging runs in the background;
    /// the first `next_sample` blocks until it completes cluster-wide).
    pub(crate) fn launch_all(&self, pfs: &Pfs) -> Vec<PlanLoader> {
        let n = self.config.system.workers;
        let spec = self.config.shuffle_spec(self.sizes.len() as u64);
        // The core's transformed streams: the one derivation shared
        // with the simulator's per-epoch transform calls.
        let streams: Vec<Arc<Vec<SampleId>>> =
            nopfs_policy::transformed_streams(Some(self.core.as_ref()), &spec, self.config.epochs)
                .into_iter()
                .map(Arc::new)
                .collect();
        let endpoints = cluster::<Msg>(
            n,
            NetConfig::new(self.config.system.interconnect, self.config.scale),
        );
        // One fill board per rank, visible to every loader for the
        // fill-progress checks. Each board owns its rank's storage
        // hierarchy (class tiers over the shared PFS origin).
        let boards: Vec<Arc<FillBoard>> = (0..n)
            .map(|rank| {
                let obs = self.config.obs.scoped([("rank", rank.to_string())]);
                Arc::new(FillBoard::new(nopfs_core::class_tier_stack_in_registry(
                    &self.config.system,
                    self.config.scale,
                    Arc::new(pfs.clone()),
                    &obs.registry,
                )))
            })
            .collect();
        endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, endpoint)| {
                PlanLoader::launch(
                    rank,
                    self.config.clone(),
                    Arc::clone(&self.sizes),
                    Arc::clone(&self.core),
                    Arc::clone(&streams[rank]),
                    spec.worker_epoch_len(rank),
                    endpoint,
                    boards.clone(),
                )
            })
            .collect()
    }
}

/// "Prestage finished" latch: flips once the prestage thread has loaded
/// its list and barriered with every peer.
struct ReadyLatch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl ReadyLatch {
    fn new() -> Self {
        Self {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn set(&self) {
        *self.done.lock().expect("latch poisoned") = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("latch poisoned");
        while !*done {
            done = self.cv.wait(done).expect("latch poisoned");
        }
    }
}

/// How long a fetch waits for a *planned* cache fill (a peer's or its
/// own first-touch insert) before falling back to the PFS. Real LBANN
/// and locality-aware deployments synchronize epochs, so a sample's
/// epoch-0 reader has always cached it before anyone asks in epoch 1;
/// our raw-consumption harnesses have no such barrier, so the loader
/// waits out scheduling skew itself. Fills that *failed* (store-full
/// inserts) are marked on the owner's board and never waited for; the
/// deadline is only the safety net for peers that stopped early.
const FILL_GRACE: std::time::Duration = std::time::Duration::from_millis(500);

/// One rank's fill progress, shared with every peer: the rank's tier
/// stack (whose catalog the rank's server answers from) and which
/// planned fills permanently failed, so waiters fall back to the PFS
/// immediately instead of burning the grace period.
pub(crate) struct FillBoard {
    tiers: TierStack,
    failed: Mutex<std::collections::HashSet<SampleId>>,
}

impl FillBoard {
    fn new(tiers: TierStack) -> Self {
        Self {
            tiers,
            failed: Mutex::new(std::collections::HashSet::new()),
        }
    }

    fn mark_failed(&self, k: SampleId) {
        self.failed.lock().expect("board poisoned").insert(k);
    }

    fn has_failed(&self, k: SampleId) -> bool {
        self.failed.lock().expect("board poisoned").contains(&k)
    }
}

struct PlanCtx {
    rank: usize,
    config: JobConfig,
    core: Arc<dyn PolicyCore>,
    endpoint: Arc<Endpoint<Msg>>,
    /// This rank's storage hierarchy (class tiers over the shared PFS
    /// origin), shared with peers via its fill board.
    tiers: TierStack,
    /// Every rank's fill board, for fill-progress checks (an
    /// in-process stand-in for the epoch synchronization real
    /// first-touch stores rely on; the data itself still moves through
    /// the modelled interconnect).
    boards: Vec<Arc<FillBoard>>,
    stats: Arc<StatsCollector>,
    stop: Arc<AtomicBool>,
    stage: ReorderStage,
    epoch_len: u64,
    ready: Arc<ReadyLatch>,
}

impl PlanCtx {
    /// Waits (bounded) until `owner` has cached `k`, returning whether
    /// it did. Immediate when already cached or when the owner's fill
    /// permanently failed; bails on shutdown.
    fn wait_for_fill(&self, owner: usize, k: SampleId) -> bool {
        let board = &self.boards[owner];
        let deadline = Instant::now() + FILL_GRACE;
        loop {
            if board.tiers.locate(k).is_some() {
                return true;
            }
            if board.has_failed(k)
                || self.stop.load(Ordering::Relaxed)
                || Instant::now() >= deadline
            {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }

    fn pfs_read(&self, k: SampleId) -> Bytes {
        loop {
            match self.tiers.read_origin(k) {
                Ok(d) => return d,
                Err(SourceError::NotFound(_)) => panic!("sample {k} missing from the PFS"),
                Err(_) => self.stats.count_pfs_error(),
            }
        }
    }

    /// Vectored [`Self::pfs_read`]: the whole group goes down to the
    /// origin as one batched read (one reader registration, coalesced
    /// adjacent ranges); transient per-sample failures fall back to the
    /// patient single-read loop. Bytes come back in input order.
    fn pfs_read_many(&self, ks: &[SampleId]) -> Vec<Bytes> {
        self.tiers
            .read_origin_many(ks)
            .into_iter()
            .zip(ks)
            .map(|(r, &k)| match r {
                Ok(d) => d,
                Err(SourceError::NotFound(_)) => panic!("sample {k} missing from the PFS"),
                Err(_) => {
                    self.stats.count_pfs_error();
                    self.pfs_read(k)
                }
            })
            .collect()
    }

    /// Serves one access from the source the core decides, with PFS
    /// fallback when a cache or peer does not actually hold the sample
    /// (store-full inserts, epoch races).
    fn fetch(&self, k: SampleId, epoch: u64) -> Bytes {
        match self.core.source(self.rank, k, epoch) {
            Source::Local(_) => {
                if self.wait_for_fill(self.rank, k) {
                    if let Some(data) = self.tiers.get_cached(k) {
                        self.stats.count_local();
                        return data;
                    }
                }
                // The planned fill failed (store full): the PFS always
                // works.
                self.pfs_fallback(k, epoch)
            }
            Source::Remote { owner, .. } => {
                if self.wait_for_fill(owner as usize, k) {
                    let (tx, rx) = crossbeam::channel::bounded::<RemoteReply>(1);
                    if self
                        .endpoint
                        .send(
                            owner as usize,
                            Msg::Request {
                                sample: k,
                                reply: tx,
                            },
                        )
                        .is_ok()
                    {
                        if let Ok(reply) = rx.recv() {
                            if let Some(data) = reply.data {
                                self.stats.count_remote();
                                return data;
                            }
                        }
                    }
                }
                self.pfs_fallback(k, epoch)
            }
            Source::Pfs => self.pfs_fallback(k, epoch),
        }
    }

    fn pfs_fallback(&self, k: SampleId, epoch: u64) -> Bytes {
        let data = self.pfs_read(k);
        self.stats.count_pfs();
        // First-touch caching where the core plans it (LBANN dynamic,
        // locality-aware epoch 0). A failed fill (tier full) is
        // published so peers stop waiting for it.
        if let Some(c) = self.core.cache_class(self.rank, k, epoch) {
            if self.tiers.locate(k).is_none()
                && self.tiers.fill(c as usize, k, data.clone()).is_err()
            {
                self.boards[self.rank].mark_failed(k);
            }
        }
        data
    }
}

/// One worker's core-driven loader (created by [`PlanRunner`]).
pub struct PlanLoader {
    ctx: Arc<PlanCtx>,
    threads: Vec<JoinHandle<()>>,
    server: Option<JoinHandle<()>>,
    total: u64,
    consumed: u64,
    batch_size: usize,
    finished: bool,
}

impl PlanLoader {
    #[allow(clippy::too_many_arguments)]
    fn launch(
        rank: usize,
        config: JobConfig,
        sizes: Arc<Vec<u64>>,
        core: Arc<dyn PolicyCore>,
        stream: Arc<Vec<SampleId>>,
        epoch_len: u64,
        endpoint: Endpoint<Msg>,
        boards: Vec<Arc<FillBoard>>,
    ) -> Self {
        let obs = config.obs.scoped([("rank", rank.to_string())]);
        let stage = ReorderStage::new_in_registry(config.system.staging.capacity, &obs.registry);
        let ctx = Arc::new(PlanCtx {
            rank,
            config: config.clone(),
            core,
            endpoint: Arc::new(endpoint),
            tiers: boards[rank].tiers.clone(),
            boards,
            stats: Arc::new(StatsCollector::in_registry(&obs.registry)),
            stop: Arc::new(AtomicBool::new(false)),
            stage,
            epoch_len,
            ready: Arc::new(ReadyLatch::new()),
        });

        let mut threads = Vec::new();

        // The prestage thread: bulk-load this worker's plan in vectored
        // chunks (the prestage list is placement-ordered, so adjacent
        // ids coalesce well at the origin), then barrier so no rank
        // trains before the cluster's caches are staged (the
        // simulator's non-overlapped prestage phase).
        {
            const PRESTAGE_BATCH: usize = 16;
            let ctx = Arc::clone(&ctx);
            threads.push(std::thread::spawn(move || {
                for chunk in ctx.core.prestage_list(ctx.rank).chunks(PRESTAGE_BATCH) {
                    if ctx.stop.load(Ordering::Relaxed) {
                        break; // peers still get the barrier below
                    }
                    let missing: Vec<(SampleId, u8)> = chunk
                        .iter()
                        .copied()
                        .filter(|&(k, _)| ctx.tiers.locate(k).is_none())
                        .collect();
                    if missing.is_empty() {
                        continue;
                    }
                    let ids: Vec<SampleId> = missing.iter().map(|&(k, _)| k).collect();
                    let datas = ctx.pfs_read_many(&ids);
                    for ((k, c), data) in missing.into_iter().zip(datas) {
                        if ctx.tiers.fill(c as usize, k, data).is_ok() {
                            ctx.stats.count_prestage();
                        } else {
                            ctx.boards[ctx.rank].mark_failed(k);
                        }
                    }
                }
                ctx.endpoint.barrier();
                ctx.ready.set();
            }));
        }

        // Staging prefetch threads: claim stream positions once the
        // prestage latch opens.
        let position = Arc::new(AtomicU64::new(0));
        for _ in 0..config.system.staging.threads.max(1) {
            let ctx = Arc::clone(&ctx);
            let stream = Arc::clone(&stream);
            let sizes = Arc::clone(&sizes);
            let position = Arc::clone(&position);
            threads.push(std::thread::spawn(move || {
                ctx.ready.wait();
                loop {
                    if ctx.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let pos = position.fetch_add(1, Ordering::SeqCst);
                    if pos >= stream.len() as u64 {
                        break;
                    }
                    let k = stream[pos as usize];
                    let epoch = pos.checked_div(ctx.epoch_len).unwrap_or(0);
                    let data = ctx.fetch(k, epoch);
                    debug_assert_eq!(data.len() as u64, sizes[k as usize]);
                    // Preprocess-and-store: the model's write_i(k).
                    let wt = ctx.config.system.write_time(data.len() as u64);
                    ctx.config.scale.wait(wt);
                    if !ctx.stage.push(pos, k, data) {
                        break; // stage closed
                    }
                }
            }));
        }

        // Serving loop: answer peers' sample requests until shutdown.
        let server = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || {
                while let Ok(env) = ctx.endpoint.recv() {
                    match env.msg {
                        Msg::Request { sample, reply } => {
                            let data = ctx.tiers.get_cached(sample);
                            if let Some(d) = &data {
                                // Pay the wire cost of the payload.
                                ctx.endpoint.pace(d.len() as u64);
                            }
                            let _ = reply.send(RemoteReply { sample, data });
                        }
                        Msg::Shutdown => break,
                        Msg::Digest(_) => {}
                    }
                }
            })
        };

        Self {
            ctx,
            threads,
            server: Some(server),
            total: stream.len() as u64,
            consumed: 0,
            batch_size: config.batch_size,
            finished: false,
        }
    }

    fn shutdown_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.ctx.stop.store(true, Ordering::SeqCst);
        // The prestage barrier must resolve cluster-wide before this
        // rank's shutdown barrier, or the two would pair up wrongly.
        self.ctx.ready.wait();
        self.ctx.stage.close();
        for t in self.threads.drain(..) {
            t.join().expect("loader thread panicked");
        }
        self.ctx.endpoint.barrier();
        let _ = self.ctx.endpoint.send(self.ctx.rank, Msg::Shutdown);
        if let Some(s) = self.server.take() {
            s.join().expect("server thread panicked");
        }
    }
}

impl DataLoader for PlanLoader {
    fn rank(&self) -> usize {
        self.ctx.rank
    }

    fn epoch_len(&self) -> u64 {
        self.ctx.epoch_len
    }

    fn total_len(&self) -> u64 {
        self.total
    }

    fn batch_size(&self) -> usize {
        self.batch_size
    }

    fn next_sample(&mut self) -> Option<(SampleId, Bytes)> {
        if self.consumed >= self.total {
            return None;
        }
        let t0 = Instant::now();
        let item = self.ctx.stage.pop()?;
        self.ctx.stats.add_stall(t0.elapsed());
        self.ctx.stats.count_consumed();
        self.consumed += 1;
        Some(item)
    }

    fn stats(&self) -> WorkerStats {
        self.ctx.stats.snapshot()
    }

    fn shutdown(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::fig8_small_cluster;
    use nopfs_perfmodel::{SystemSpec, ThroughputCurve};
    use nopfs_util::timing::TimeScale;

    fn system(ram_samples: u64, ssd_samples: u64, sample_bytes: u64) -> SystemSpec {
        let mut sys = fig8_small_cluster();
        sys.staging.capacity = 64 * sample_bytes;
        sys.staging.threads = 2;
        sys.classes[0].capacity = ram_samples * sample_bytes;
        sys.classes[1].capacity = ssd_samples * sample_bytes;
        sys
    }

    fn setup(
        n_samples: u64,
        sample_bytes: u64,
        sys: SystemSpec,
        epochs: u64,
    ) -> (JobConfig, Arc<Vec<u64>>, Pfs) {
        let config = JobConfig::new(17, epochs, 4, sys, TimeScale::new(1e-6));
        let sizes = Arc::new(vec![sample_bytes; n_samples as usize]);
        let pfs = Pfs::in_memory(ThroughputCurve::flat(1e12), TimeScale::new(1e-6));
        for id in 0..n_samples {
            pfs.put(
                id,
                Bytes::from(vec![(id % 256) as u8; sample_bytes as usize]),
            );
        }
        (config, sizes, pfs)
    }

    #[test]
    fn deep_io_ordered_serves_shards_and_pfs() {
        // RAM holds 8 samples per worker => 32 of 64 cached.
        let (config, sizes, pfs) = setup(64, 1_000, system(8, 0, 1_000), 2);
        let runner = PlanRunner::new(PolicyId::DeepIoOrdered, config, sizes).unwrap();
        let stats = runner.run(&pfs, |l| {
            while let Some((id, data)) = l.next_sample() {
                assert_eq!(data[0], (id % 256) as u8);
            }
            l.stats()
        });
        let mut merged = stats[0].clone();
        for s in &stats[1..] {
            merged.merge(s);
        }
        assert_eq!(merged.samples_consumed, 128);
        assert_eq!(merged.prestage_fetches, 32, "shards prestaged once");
        // Cached halves come from caches, uncached from the PFS.
        assert_eq!(merged.local_fetches + merged.remote_fetches, 64);
        assert_eq!(merged.pfs_fetches, 64);
    }

    #[test]
    fn deep_io_opportunistic_never_reads_pfs_after_prestage() {
        let (config, sizes, pfs) = setup(64, 1_000, system(8, 0, 1_000), 2);
        let runner = PlanRunner::new(PolicyId::DeepIoOpportunistic, config, sizes).unwrap();
        let ids = runner.run(&pfs, |l| {
            let mut got = vec![];
            while let Some((id, _)) = l.next_sample() {
                got.push(id);
            }
            (got, l.stats())
        });
        let mut seen = std::collections::HashSet::new();
        let mut merged: Option<WorkerStats> = None;
        for (got, stats) in ids {
            seen.extend(got);
            match &mut merged {
                Some(m) => m.merge(&stats),
                None => merged = Some(stats),
            }
        }
        let merged = merged.unwrap();
        assert_eq!(merged.pfs_fetches, 0, "opportunistic mode avoids the PFS");
        assert!(
            (seen.len() as u64) < 64,
            "substitution shrinks coverage: {} of 64",
            seen.len()
        );
    }

    #[test]
    fn parallel_staging_full_copy_is_all_local() {
        let (config, sizes, pfs) = setup(40, 1_000, system(25, 25, 1_000), 2);
        let runner = PlanRunner::new(PolicyId::ParallelStaging, config, sizes).unwrap();
        let stats = runner.run(&pfs, |l| {
            while l.next_sample().is_some() {}
            l.stats()
        });
        for s in &stats {
            assert_eq!(s.pfs_fetches, 0);
            assert_eq!(s.remote_fetches, 0);
            assert_eq!(s.prestage_fetches, 40, "full dataset staged per worker");
        }
    }

    #[test]
    fn lbann_preloading_is_owner_served_from_epoch_zero() {
        let (config, sizes, pfs) = setup(64, 1_000, system(40, 0, 1_000), 2);
        let runner = PlanRunner::new(PolicyId::LbannPreloading, config, sizes).unwrap();
        let stats = runner.run(&pfs, |l| {
            while l.next_sample().is_some() {}
            l.stats()
        });
        let mut merged = stats[0].clone();
        for s in &stats[1..] {
            merged.merge(s);
        }
        assert_eq!(merged.prestage_fetches, 64, "store preloaded");
        assert_eq!(merged.pfs_fetches, 0, "epoch 0 already owner-served");
        assert_eq!(merged.local_fetches + merged.remote_fetches, 128);
    }

    #[test]
    fn locality_aware_caches_first_touch_then_goes_local() {
        let (config, sizes, pfs) = setup(64, 1_000, system(40, 40, 1_000), 3);
        let runner = PlanRunner::new(PolicyId::LocalityAware, config, sizes).unwrap();
        let stats = runner.run(&pfs, |l| {
            while l.next_sample().is_some() {}
            l.stats()
        });
        let mut merged = stats[0].clone();
        for s in &stats[1..] {
            merged.merge(s);
        }
        assert_eq!(merged.samples_consumed, 192);
        // Epoch 0 is all-PFS; afterwards the reassigned batches are
        // dominated by local hits.
        assert!(merged.pfs_fetches >= 64);
        assert!(
            merged.local_fetches > merged.remote_fetches,
            "reassignment should localize consumption: {merged:?}"
        );
    }

    #[test]
    fn early_stop_shuts_down_cleanly() {
        let (config, sizes, pfs) = setup(400, 1_000, system(50, 50, 1_000), 3);
        let runner = PlanRunner::new(PolicyId::DeepIoOrdered, config, sizes).unwrap();
        let counts = runner.run(&pfs, |l| {
            let mut n = 0;
            for _ in 0..5 {
                if l.next_sample().is_none() {
                    break;
                }
                n += 1;
            }
            n
        });
        assert!(counts.iter().all(|&c| c == 5));
    }

    #[test]
    fn nopfs_and_perfect_have_no_plan_runner() {
        let (config, sizes, _) = setup(16, 1_000, system(8, 8, 1_000), 1);
        assert!(PlanRunner::new(PolicyId::NoPfs, config.clone(), Arc::clone(&sizes)).is_err());
        assert!(PlanRunner::new(PolicyId::Perfect, config, sizes).is_err());
    }
}
