//! The LBANN data store in dynamic mode (paper Secs. 6, 7).
//!
//! "Each sample is cached in memory by the worker that reads it first"
//! — epoch 0 reads everything from the PFS and populates a per-worker
//! in-memory store; afterwards a sample lives on exactly one owner, so
//! ~1/N of accesses are local and the rest are remote fetches from the
//! owner. The store requires the dataset to fit in aggregate worker
//! memory, and its first-touch, single-copy placement is what NoPFS's
//! frequency-ranked multi-class placement beats at scale (Sec. 7.1:
//! "LBANN's data store uses a simple first-touch policy … many samples
//! need to be fetched from remote nodes").
//!
//! Since the policy-layer refactor this runner is a thin veneer over
//! [`PlanRunner`] executing the shared
//! [`nopfs_policy::core::LbannCore`] — the same ownership plan the
//! simulator's LBANN policy prices — and exists for its historical
//! panic-on-infeasible constructor contract. The preloading mode runs
//! through the registry (`PolicyId::LbannPreloading`) directly.

use crate::plan_loader::PlanRunner;
use crate::DataLoader;
use nopfs_core::JobConfig;
use nopfs_pfs::Pfs;
use nopfs_policy::PolicyId;
use std::sync::Arc;

/// Launches LBANN-data-store loaders (dynamic mode), one per worker
/// thread.
pub struct LbannRunner {
    inner: PlanRunner,
}

impl LbannRunner {
    /// Creates the runner.
    ///
    /// # Panics
    /// Panics when the dataset exceeds aggregate worker memory (the
    /// store's documented requirement) or the system has no RAM class.
    pub fn new(config: JobConfig, sizes: Arc<Vec<u64>>) -> Self {
        assert!(!sizes.is_empty(), "dataset must contain samples");
        assert!(
            !config.system.classes.is_empty(),
            "LBANN data store requires an in-memory storage class"
        );
        let inner = PlanRunner::new(PolicyId::LbannDynamic, config, sizes)
            .unwrap_or_else(|e| panic!("{}", e.0));
        Self { inner }
    }

    /// Runs `f` once per worker.
    pub fn run<R, F>(&self, pfs: &Pfs, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut dyn DataLoader) -> R + Sync,
    {
        self.inner.run(pfs, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use nopfs_perfmodel::presets::fig8_small_cluster;
    use nopfs_perfmodel::ThroughputCurve;
    use nopfs_util::timing::TimeScale;

    fn setup(n_samples: u64, ram_cap: u64) -> (JobConfig, Arc<Vec<u64>>, Pfs) {
        let mut sys = fig8_small_cluster();
        sys.staging.capacity = 8_192;
        sys.classes[0].capacity = ram_cap;
        let config = JobConfig::new(13, 3, 4, sys, TimeScale::new(1e-6));
        let sizes = Arc::new(vec![512u64; n_samples as usize]);
        let pfs = Pfs::in_memory(ThroughputCurve::flat(1e12), TimeScale::new(1e-6));
        for id in 0..n_samples {
            pfs.put(id, Bytes::from(vec![(id % 256) as u8; 512]));
        }
        (config, sizes, pfs)
    }

    #[test]
    fn epoch0_pfs_then_owner_served() {
        let (config, sizes, pfs) = setup(64, 40_000);
        let runner = LbannRunner::new(config, Arc::clone(&sizes));
        let stats = runner.run(&pfs, |l| {
            while let Some((id, data)) = l.next_sample() {
                assert_eq!(data[0], (id % 256) as u8);
            }
            l.stats()
        });
        let mut merged = stats[0].clone();
        for s in &stats[1..] {
            merged.merge(s);
        }
        // Epoch 0: all 64 from the PFS. Epochs 1-2: 128 owner-served.
        assert_eq!(merged.pfs_fetches, 64);
        assert_eq!(merged.local_fetches + merged.remote_fetches, 128);
        // First-touch means ~1/N local: remote must dominate at N=4.
        assert!(merged.remote_fetches > merged.local_fetches);
    }

    #[test]
    #[should_panic(expected = "aggregate worker memory")]
    fn oversized_dataset_rejected() {
        let (config, _, _) = setup(64, 40_000);
        // 64 x 512 B = 32 KB > 4 x 4 KB.
        let mut cfg = config;
        cfg.system.classes[0].capacity = 4_000;
        let sizes = Arc::new(vec![512u64; 64]);
        LbannRunner::new(cfg, sizes);
    }

    #[test]
    fn store_full_falls_back_to_pfs() {
        // Aggregate memory fits exactly, but worker shares are uneven
        // enough that some inserts fail: the loader must still deliver
        // everything via the PFS fallback.
        let (mut config, sizes, pfs) = setup(64, 8_320); // 16.25 samples/worker
        config.epochs = 2;
        let runner = LbannRunner::new(config, Arc::clone(&sizes));
        let counts = runner.run(&pfs, |l| std::iter::from_fn(|| l.next_sample()).count());
        assert_eq!(counts.iter().sum::<usize>(), 128);
    }
}
