//! The LBANN data store in dynamic mode (paper Secs. 6, 7).
//!
//! "Each sample is cached in memory by the worker that reads it first"
//! — epoch 0 reads everything from the PFS and populates a per-worker
//! in-memory store; afterwards a sample lives on exactly one owner, so
//! ~1/N of accesses are local and the rest are remote fetches from the
//! owner. The store requires the dataset to fit in aggregate worker
//! memory, and its first-touch, single-copy placement is what NoPFS's
//! frequency-ranked multi-class placement beats at scale (Sec. 7.1:
//! "LBANN's data store uses a simple first-touch policy … many samples
//! need to be fetched from remote nodes").
//!
//! Runs on the same substrates as NoPFS: the synthetic PFS, the
//! modelled interconnect, and a throttled in-memory backend.

use crate::DataLoader;
use bytes::Bytes;
use nopfs_clairvoyance::engine::materialize_all_streams;
use nopfs_core::msg::{Msg, RemoteReply};
use nopfs_core::stats::{StatsCollector, WorkerStats};
use nopfs_core::{JobConfig, SampleId};
use nopfs_net::{cluster, Endpoint, NetConfig};
use nopfs_pfs::{Pfs, PfsError};
use nopfs_storage::{MemoryBackend, MetadataStore, ReorderStage, StorageBackend, ThrottledBackend};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Launches LBANN-data-store loaders, one per worker thread.
pub struct LbannRunner {
    config: JobConfig,
    sizes: Arc<Vec<u64>>,
}

impl LbannRunner {
    /// Creates the runner.
    ///
    /// # Panics
    /// Panics when the dataset exceeds aggregate worker memory (the
    /// store's documented requirement) or the system has no RAM class.
    pub fn new(config: JobConfig, sizes: Arc<Vec<u64>>) -> Self {
        assert!(!sizes.is_empty(), "dataset must contain samples");
        let ram = config
            .system
            .classes
            .first()
            .map(|c| c.capacity)
            .expect("LBANN data store requires an in-memory storage class");
        let total: u64 = sizes.iter().sum();
        let aggregate = ram.saturating_mul(config.system.workers as u64);
        assert!(
            total <= aggregate,
            "LBANN data store requires the dataset ({total} B) to fit in \
             aggregate worker memory ({aggregate} B)"
        );
        Self { config, sizes }
    }

    /// Runs `f` once per worker.
    pub fn run<R, F>(&self, pfs: &Pfs, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut dyn DataLoader) -> R + Sync,
    {
        let n = self.config.system.workers;
        let spec = self.config.shuffle_spec(self.sizes.len() as u64);
        // First-touch ownership: who reads each sample in epoch 0.
        let shuffle = spec.epoch_shuffle(0);
        let mut owner_of = vec![0u16; self.sizes.len()];
        for (pos, &id) in shuffle.global_order().iter().enumerate() {
            owner_of[id as usize] = (pos % n) as u16;
        }
        let owner_of = Arc::new(owner_of);
        // One engine pass materializes every rank's stream (O(E) shuffle
        // generations total instead of O(N·E) across the rank threads).
        let streams = materialize_all_streams(&spec, self.config.epochs);
        let endpoints = cluster::<Msg>(
            n,
            NetConfig::new(self.config.system.interconnect, self.config.scale),
        );
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .enumerate()
                .map(|(rank, endpoint)| {
                    let config = self.config.clone();
                    let pfs = pfs.clone();
                    let owner_of = Arc::clone(&owner_of);
                    let stream = Arc::clone(&streams[rank]);
                    s.spawn(move || {
                        let mut loader = LbannLoader::launch(
                            rank, config, pfs, spec, owner_of, endpoint, stream,
                        );
                        let result = f(&mut loader);
                        loader.shutdown();
                        result
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    }
}

struct Ctx {
    rank: usize,
    config: JobConfig,
    pfs: Pfs,
    endpoint: Arc<Endpoint<Msg>>,
    store: Arc<dyn StorageBackend>,
    metadata: Arc<MetadataStore>,
    owner_of: Arc<Vec<u16>>,
    stats: Arc<StatsCollector>,
    stop: Arc<AtomicBool>,
    stage: ReorderStage,
    epoch_len: u64,
}

impl Ctx {
    fn fetch(&self, k: SampleId, epoch: u64) -> Bytes {
        if epoch == 0 {
            // First epoch: everyone reads the PFS and first-touch-caches.
            let data = self.pfs_read(k);
            self.stats.count_pfs();
            debug_assert_eq!(self.owner_of[k as usize] as usize, self.rank);
            if self.store.insert(k, data.clone()).is_ok() {
                self.metadata.mark_cached(k, 0);
            }
            return data;
        }
        let owner = self.owner_of[k as usize] as usize;
        if owner == self.rank {
            if let Some(data) = self.metadata.lookup(k).and_then(|_| self.store.get(k)) {
                self.stats.count_local();
                return data;
            }
            // The first-touch insert failed (store full): fall through.
        } else {
            let (tx, rx) = crossbeam::channel::bounded::<RemoteReply>(1);
            if self
                .endpoint
                .send(
                    owner,
                    Msg::Request {
                        sample: k,
                        reply: tx,
                    },
                )
                .is_ok()
            {
                if let Ok(reply) = rx.recv() {
                    if let Some(data) = reply.data {
                        self.stats.count_remote();
                        return data;
                    }
                }
            }
        }
        // Fallback: owner did not hold the sample.
        self.stats.count_pfs();
        self.pfs_read(k)
    }

    fn pfs_read(&self, k: SampleId) -> Bytes {
        loop {
            match self.pfs.read(k) {
                Ok(d) => return d,
                Err(PfsError::NotFound(_)) => panic!("sample {k} missing from the PFS"),
                Err(PfsError::Io(_)) => self.stats.count_pfs_error(),
            }
        }
    }
}

struct LbannLoader {
    ctx: Arc<Ctx>,
    threads: Vec<JoinHandle<()>>,
    server: Option<JoinHandle<()>>,
    total: u64,
    consumed: u64,
    batch_size: usize,
    finished: bool,
}

impl LbannLoader {
    fn launch(
        rank: usize,
        config: JobConfig,
        pfs: Pfs,
        spec: nopfs_clairvoyance::sampler::ShuffleSpec,
        owner_of: Arc<Vec<u16>>,
        endpoint: Endpoint<Msg>,
        stream: Arc<Vec<SampleId>>,
    ) -> Self {
        let ram = &config.system.classes[0];
        let p = f64::from(ram.prefetch_threads.max(1));
        let store: Arc<dyn StorageBackend> = Arc::new(ThrottledBackend::new(
            MemoryBackend::new("lbann-store", ram.capacity),
            ram.read.at(p),
            ram.write.at(p),
            config.scale,
        ));
        let epoch_len = spec.worker_epoch_len(rank);
        let stage = ReorderStage::new(config.system.staging.capacity);
        let ctx = Arc::new(Ctx {
            rank,
            config: config.clone(),
            pfs,
            endpoint: Arc::new(endpoint),
            store,
            metadata: Arc::new(MetadataStore::new()),
            owner_of,
            stats: StatsCollector::new(),
            stop: Arc::new(AtomicBool::new(false)),
            stage,
            epoch_len,
        });

        let mut threads = Vec::new();
        let position = Arc::new(AtomicU64::new(0));
        for _ in 0..config.system.staging.threads.max(1) {
            let ctx = Arc::clone(&ctx);
            let stream = Arc::clone(&stream);
            let position = Arc::clone(&position);
            threads.push(std::thread::spawn(move || loop {
                if ctx.stop.load(Ordering::Relaxed) {
                    break;
                }
                let pos = position.fetch_add(1, Ordering::SeqCst);
                if pos >= stream.len() as u64 {
                    break;
                }
                let k = stream[pos as usize];
                let epoch = pos.checked_div(ctx.epoch_len).unwrap_or(0);
                let data = ctx.fetch(k, epoch);
                let wt = ctx.config.system.write_time(data.len() as u64);
                ctx.config.scale.wait(wt);
                if !ctx.stage.push(pos, k, data) {
                    break;
                }
            }));
        }

        let server = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || {
                while let Ok(env) = ctx.endpoint.recv() {
                    match env.msg {
                        Msg::Request { sample, reply } => {
                            let data = ctx
                                .metadata
                                .lookup(sample)
                                .and_then(|_| ctx.store.get(sample));
                            if let Some(d) = &data {
                                ctx.endpoint.pace(d.len() as u64);
                            }
                            let _ = reply.send(RemoteReply { sample, data });
                        }
                        Msg::Shutdown => break,
                        Msg::Digest(_) => {}
                    }
                }
            })
        };

        Self {
            ctx,
            threads,
            server: Some(server),
            total: stream.len() as u64,
            consumed: 0,
            batch_size: config.batch_size,
            finished: false,
        }
    }

    fn shutdown(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.ctx.stop.store(true, Ordering::SeqCst);
        self.ctx.stage.close();
        for t in self.threads.drain(..) {
            t.join().expect("prefetch thread panicked");
        }
        self.ctx.endpoint.barrier();
        let _ = self.ctx.endpoint.send(self.ctx.rank, Msg::Shutdown);
        if let Some(s) = self.server.take() {
            s.join().expect("server thread panicked");
        }
    }
}

impl DataLoader for LbannLoader {
    fn rank(&self) -> usize {
        self.ctx.rank
    }

    fn epoch_len(&self) -> u64 {
        self.ctx.epoch_len
    }

    fn total_len(&self) -> u64 {
        self.total
    }

    fn batch_size(&self) -> usize {
        self.batch_size
    }

    fn next_sample(&mut self) -> Option<(SampleId, Bytes)> {
        if self.consumed >= self.total {
            return None;
        }
        let t0 = Instant::now();
        let item = self.ctx.stage.pop()?;
        self.ctx.stats.add_stall(t0.elapsed());
        self.ctx.stats.count_consumed();
        self.consumed += 1;
        Some(item)
    }

    fn stats(&self) -> WorkerStats {
        self.ctx.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::fig8_small_cluster;
    use nopfs_perfmodel::ThroughputCurve;
    use nopfs_util::timing::TimeScale;

    fn setup(n_samples: u64, ram_cap: u64) -> (JobConfig, Arc<Vec<u64>>, Pfs) {
        let mut sys = fig8_small_cluster();
        sys.staging.capacity = 8_192;
        sys.classes[0].capacity = ram_cap;
        let config = JobConfig::new(13, 3, 4, sys, TimeScale::new(1e-6));
        let sizes = Arc::new(vec![512u64; n_samples as usize]);
        let pfs = Pfs::in_memory(ThroughputCurve::flat(1e12), TimeScale::new(1e-6));
        for id in 0..n_samples {
            pfs.put(id, Bytes::from(vec![(id % 256) as u8; 512]));
        }
        (config, sizes, pfs)
    }

    #[test]
    fn epoch0_pfs_then_owner_served() {
        let (config, sizes, pfs) = setup(64, 40_000);
        let runner = LbannRunner::new(config, Arc::clone(&sizes));
        let stats = runner.run(&pfs, |l| {
            while let Some((id, data)) = l.next_sample() {
                assert_eq!(data[0], (id % 256) as u8);
            }
            l.stats()
        });
        let mut merged = stats[0].clone();
        for s in &stats[1..] {
            merged.merge(s);
        }
        // Epoch 0: all 64 from the PFS. Epochs 1-2: 128 owner-served.
        assert_eq!(merged.pfs_fetches, 64);
        assert_eq!(merged.local_fetches + merged.remote_fetches, 128);
        // First-touch means ~1/N local: remote must dominate at N=4.
        assert!(merged.remote_fetches > merged.local_fetches);
    }

    #[test]
    #[should_panic(expected = "aggregate worker memory")]
    fn oversized_dataset_rejected() {
        let (config, _, _) = setup(64, 40_000);
        // 64 x 512 B = 32 KB > 4 x 4 KB.
        let mut cfg = config;
        cfg.system.classes[0].capacity = 4_000;
        let sizes = Arc::new(vec![512u64; 64]);
        LbannRunner::new(cfg, sizes);
    }

    #[test]
    fn store_full_falls_back_to_pfs() {
        // Aggregate memory fits exactly, but worker shares are uneven
        // enough that some inserts fail: the loader must still deliver
        // everything via the PFS fallback.
        let (mut config, sizes, pfs) = setup(64, 8_320); // 16.25 samples/worker
        config.epochs = 2;
        let runner = LbannRunner::new(config, Arc::clone(&sizes));
        let counts = runner.run(&pfs, |l| std::iter::from_fn(|| l.next_sample()).count());
        assert_eq!(counts.iter().sum::<usize>(), 128);
    }
}
