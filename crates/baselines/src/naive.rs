//! The naive loader: synchronous PFS reads, no prefetching, no caching
//! (the simulator's `Naive` policy, as a runtime loader).
//!
//! Every `next_sample` blocks for the full PFS fetch plus preprocessing
//! — the worst case the paper's Fig. 8 shows to be 1.7× slower than
//! any buffered policy even on small datasets.

use crate::DataLoader;
use bytes::Bytes;
use nopfs_clairvoyance::engine::materialize_all_streams;
use nopfs_core::stats::{StatsCollector, WorkerStats};
use nopfs_core::{JobConfig, SampleId};
use nopfs_pfs::Pfs;
use nopfs_storage::{SourceError, TierStack};
use std::sync::Arc;
use std::time::Instant;

/// Launches naive loaders, one per worker thread.
pub struct NaiveRunner {
    config: JobConfig,
    sizes: Arc<Vec<u64>>,
}

impl NaiveRunner {
    /// Creates the runner.
    pub fn new(config: JobConfig, sizes: Arc<Vec<u64>>) -> Self {
        assert!(!sizes.is_empty(), "dataset must contain samples");
        Self { config, sizes }
    }

    /// Builds every rank's loader (shared with the registry factory).
    pub(crate) fn launch_all(&self, pfs: &Pfs) -> Vec<NaiveLoader> {
        let n = self.config.system.workers;
        let spec = self.config.shuffle_spec(self.sizes.len() as u64);
        // One engine pass materializes every rank's stream (O(E) shuffle
        // generations total instead of O(N·E) across the rank threads).
        let streams = materialize_all_streams(&spec, self.config.epochs);
        (0..n)
            .map(|rank| {
                let obs = self.config.obs.scoped([("rank", rank.to_string())]);
                NaiveLoader {
                    rank,
                    config: self.config.clone(),
                    // The flat loader is a degenerate hierarchy: no cache
                    // tiers, every read straight from the PFS origin.
                    tiers: TierStack::origin_only_in_registry(Arc::new(pfs.clone()), &obs.registry),
                    stream: Arc::clone(&streams[rank]),
                    stats: Arc::new(StatsCollector::in_registry(&obs.registry)),
                    consumed: 0,
                    epoch_len: spec.worker_epoch_len(rank),
                }
            })
            .collect()
    }

    /// Runs `f` once per worker.
    pub fn run<R, F>(&self, pfs: &Pfs, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut dyn DataLoader) -> R + Sync,
    {
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .launch_all(pfs)
                .into_iter()
                .map(|mut loader| s.spawn(move || f(&mut loader)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    }
}

pub(crate) struct NaiveLoader {
    rank: usize,
    config: JobConfig,
    tiers: TierStack,
    stream: Arc<Vec<SampleId>>,
    stats: Arc<StatsCollector>,
    consumed: u64,
    epoch_len: u64,
}

impl DataLoader for NaiveLoader {
    fn rank(&self) -> usize {
        self.rank
    }

    fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    fn total_len(&self) -> u64 {
        self.stream.len() as u64
    }

    fn batch_size(&self) -> usize {
        self.config.batch_size
    }

    fn next_sample(&mut self) -> Option<(SampleId, Bytes)> {
        if self.consumed >= self.stream.len() as u64 {
            return None;
        }
        let k = self.stream[self.consumed as usize];
        let t0 = Instant::now();
        let data = loop {
            match self.tiers.read(k) {
                Ok(d) => break d,
                Err(SourceError::NotFound(_)) => panic!("sample {k} missing from the PFS"),
                Err(_) => self.stats.count_pfs_error(),
            }
        };
        let wt = self.config.system.write_time(data.len() as u64);
        self.config.scale.wait(wt);
        // The whole read is a stall: nothing overlaps it.
        self.stats.add_stall(t0.elapsed());
        self.stats.count_pfs();
        self.stats.count_consumed();
        self.consumed += 1;
        Some((k, data))
    }

    fn stats(&self) -> WorkerStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::presets::fig8_small_cluster;
    use nopfs_util::timing::TimeScale;

    #[test]
    fn reads_everything_from_the_pfs() {
        let config = JobConfig::new(5, 2, 4, fig8_small_cluster(), TimeScale::new(1e-6));
        let sizes = Arc::new(vec![256u64; 32]);
        let runner = NaiveRunner::new(config, Arc::clone(&sizes));
        let pfs = Pfs::in_memory(
            nopfs_perfmodel::ThroughputCurve::flat(1e12),
            TimeScale::new(1e-6),
        );
        for id in 0..32u64 {
            pfs.put(id, Bytes::from(vec![id as u8; 256]));
        }
        let stats = runner.run(&pfs, |loader| {
            while let Some((id, data)) = loader.next_sample() {
                assert_eq!(data[0], id as u8);
            }
            loader.stats()
        });
        let total_pfs: u64 = stats.iter().map(|s| s.pfs_fetches).sum();
        assert_eq!(total_pfs, 64, "every access is a PFS read");
        assert!(stats.iter().all(|s| s.local_fetches == 0));
        assert!(stats.iter().all(|s| s.stall_time.as_nanos() > 0));
    }

    #[test]
    fn retries_transient_faults() {
        let config = JobConfig::new(5, 1, 2, fig8_small_cluster(), TimeScale::new(1e-6));
        let mut cfg = config;
        cfg.system.workers = 2;
        let sizes = Arc::new(vec![64u64; 8]);
        let runner = NaiveRunner::new(cfg, Arc::clone(&sizes));
        let pfs = Pfs::in_memory(
            nopfs_perfmodel::ThroughputCurve::flat(1e12),
            TimeScale::new(1e-6),
        );
        for id in 0..8u64 {
            pfs.put(id, Bytes::from(vec![0u8; 64]));
        }
        pfs.inject_fault(3, 2);
        let counts = runner.run(&pfs, |l| std::iter::from_fn(|| l.next_sample()).count());
        assert_eq!(counts.iter().sum::<usize>(), 8);
    }
}
