//! A synthetic parallel filesystem (PFS) for runtime experiments.
//!
//! The paper's experiments start with data at rest on GPFS or Lustre and
//! revolve around one property of such systems: aggregate random-read
//! throughput is a function `t(γ)` of the number of concurrent clients —
//! near-linear at first, then saturating, so that per-client bandwidth
//! collapses as training jobs scale out. No real PFS is available here,
//! so this crate substitutes one: objects live in memory or in a local
//! directory, and every read is paced through a shared regulator whose
//! aggregate rate tracks a configurable `t(γ)` curve of the *live reader
//! count*. Real bytes move through the same code paths a real PFS client
//! would exercise (lookup, read, checksum-able contents), and the
//! contention behaviour — the thing the paper's results hinge on — is
//! reproduced faithfully.
//!
//! Reads optionally inject faults for failure-path testing.

use bytes::Bytes;
use nopfs_obs::{names, Counter, Registry};
use nopfs_perfmodel::ThroughputCurve;
use nopfs_storage::ShardedMap;
use nopfs_util::rate::TokenBucket;
use nopfs_util::timing::TimeScale;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Object key: the dense sample id used across the workspace.
pub type ObjectId = u64;

/// PFS errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfsError {
    /// No object with this id exists.
    NotFound(ObjectId),
    /// An injected or real I/O failure.
    Io(String),
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfsError::NotFound(id) => write!(f, "object {id} not found"),
            PfsError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for PfsError {}

/// Where object payloads live. Both variants keep their id-keyed maps
/// sharded ([`ShardedMap`]) so concurrent readers of different objects
/// never contend on one lock word — the PFS regulator models the
/// *device's* `t(γ)` contention; the client data structures should add
/// none of their own.
enum Store {
    Memory(ShardedMap<Bytes>),
    Disk {
        dir: PathBuf,
        /// Sizes are kept in memory so metadata queries don't touch disk.
        sizes: ShardedMap<u64>,
    },
}

/// Cumulative traffic counters, registered as `pfs.*` metrics;
/// [`PfsStats`] is the typed view over them.
#[derive(Debug)]
struct Stats {
    reads: Counter,
    bytes_read: Counter,
    writes: Counter,
    bytes_written: Counter,
}

impl Stats {
    fn new(registry: &Registry) -> Self {
        Self {
            reads: registry.counter(names::PFS_READS),
            bytes_read: registry.counter(names::PFS_BYTES_READ),
            writes: registry.counter(names::PFS_WRITES),
            bytes_written: registry.counter(names::PFS_BYTES_WRITTEN),
        }
    }
}

/// Cumulative PFS traffic statistics, snapshotted by [`Pfs::stats`].
/// Shared across every namespace of one filesystem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PfsStats {
    /// Objects read.
    pub reads: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Objects written.
    pub writes: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

impl From<PfsStats> for nopfs_storage::TierStats {
    /// The PFS viewed as the origin tier of a hierarchy: every read is
    /// a hit (the origin is authoritative), writes are fills.
    fn from(s: PfsStats) -> Self {
        nopfs_storage::TierStats {
            name: "pfs".to_string(),
            hits: s.reads,
            bytes_read: s.bytes_read,
            fills: s.writes,
            bytes_filled: s.bytes_written,
            ..Default::default()
        }
    }
}

/// The synthetic parallel filesystem. Cloneable handle (`Arc` inside);
/// every clone shares the same regulator — that is the contention.
///
/// A handle carries an id-namespace `base` (see [`Pfs::namespaced`]):
/// object ids are offset by it on every operation, so several
/// independent jobs — each addressing its own dense `0..F` sample id
/// space — can store their datasets side by side on **one** filesystem.
/// Namespaced handles share the store, the `t(γ)` regulator, the live
/// reader count, and the cumulative statistics; only the id mapping
/// differs. That sharing is the whole point: a reader from any tenant
/// raises `γ` for every tenant, which is the cross-job contention the
/// paper's Fig. 2 argues from.
#[derive(Clone)]
pub struct Pfs {
    inner: Arc<PfsInner>,
    /// Added to every object id before it reaches the store.
    base: ObjectId,
}

struct PfsInner {
    store: Store,
    curve: ThroughputCurve,
    scale: TimeScale,
    regulator: TokenBucket,
    readers: AtomicUsize,
    stats: Stats,
    /// Bytes at rest across every namespace (occupancy, not traffic).
    stored_bytes: AtomicU64,
    /// Injected faults: id → remaining failures to serve.
    faults: Mutex<HashMap<ObjectId, u32>>,
    /// Fast path: whether any fault was ever injected. Production reads
    /// check this relaxed flag and skip the `faults` mutex entirely —
    /// otherwise every read on every thread would serialize on it.
    has_faults: AtomicBool,
}

impl Pfs {
    /// An in-memory PFS paced by `curve` (model bytes/s as a function of
    /// reader count) under `scale`.
    pub fn in_memory(curve: ThroughputCurve, scale: TimeScale) -> Self {
        Self::build(Store::Memory(ShardedMap::new()), curve, scale)
    }

    /// Like [`Self::in_memory`], but the `pfs.*` traffic counters are
    /// registered in `registry` (with its scope labels).
    pub fn in_memory_in_registry(
        curve: ThroughputCurve,
        scale: TimeScale,
        registry: &Registry,
    ) -> Self {
        Self::build_in_registry(Store::Memory(ShardedMap::new()), curve, scale, registry)
    }

    /// A disk-backed PFS storing objects as files under `dir`
    /// (created if missing).
    ///
    /// # Panics
    /// Panics if the directory cannot be created.
    pub fn on_disk(dir: impl Into<PathBuf>, curve: ThroughputCurve, scale: TimeScale) -> Self {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).expect("failed to create PFS directory");
        Self::build(
            Store::Disk {
                dir,
                sizes: ShardedMap::new(),
            },
            curve,
            scale,
        )
    }

    fn build(store: Store, curve: ThroughputCurve, scale: TimeScale) -> Self {
        Self::build_in_registry(store, curve, scale, &Registry::new())
    }

    fn build_in_registry(
        store: Store,
        curve: ThroughputCurve,
        scale: TimeScale,
        registry: &Registry,
    ) -> Self {
        let initial = scale.rate_to_wall(curve.at(1.0));
        Self {
            inner: Arc::new(PfsInner {
                store,
                curve,
                scale,
                regulator: TokenBucket::with_burst_window(initial, 0.01),
                readers: AtomicUsize::new(0),
                stats: Stats::new(registry),
                stored_bytes: AtomicU64::new(0),
                faults: Mutex::new(HashMap::new()),
                has_faults: AtomicBool::new(false),
            }),
            base: 0,
        }
    }

    /// A handle onto the **same** filesystem whose object ids are offset
    /// by `base`: id `k` through the returned handle addresses object
    /// `base + k` in the shared store. Namespaces compose — calling
    /// `namespaced` on an already-namespaced handle offsets further.
    ///
    /// This is the multi-tenant injection point: give each co-scheduled
    /// job a namespace wide enough for its dataset and every job keeps
    /// its dense `0..F` sample ids while all of them contend on the one
    /// shared `t(γ)` regulator.
    ///
    /// # Panics
    /// Panics if the combined offset overflows the id space.
    pub fn namespaced(&self, base: ObjectId) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            base: self
                .base
                .checked_add(base)
                .expect("namespace offset overflows the object id space"),
        }
    }

    /// The id offset this handle applies (0 for the root namespace).
    pub fn namespace_base(&self) -> ObjectId {
        self.base
    }

    /// Maps a namespace-local id onto the shared store's id space.
    fn global_id(&self, id: ObjectId) -> ObjectId {
        self.base
            .checked_add(id)
            .expect("object id overflows its namespace")
    }

    fn object_path(dir: &std::path::Path, id: ObjectId) -> PathBuf {
        // Two-level fan-out keeps directories small for large datasets.
        dir.join(format!("{:03}", id % 997))
            .join(format!("{id}.bin"))
    }

    /// Stores an object (dataset materialization; not paced — the paper's
    /// runs start "with data at rest on a PFS").
    pub fn put(&self, id: ObjectId, data: Bytes) {
        let id = self.global_id(id);
        let size = data.len() as u64;
        self.inner.stats.writes.inc();
        self.inner.stats.bytes_written.add(size);
        let replaced = match &self.inner.store {
            Store::Memory(map) => map.insert(id, data).map_or(0, |old| old.len() as u64),
            Store::Disk { dir, sizes } => {
                let path = Self::object_path(dir, id);
                std::fs::create_dir_all(path.parent().expect("object path has a parent"))
                    .expect("failed to create PFS fan-out directory");
                std::fs::write(&path, &data).expect("failed to write PFS object");
                sizes.insert(id, size).unwrap_or(0)
            }
        };
        self.inner.stored_bytes.fetch_add(size, Ordering::Relaxed);
        self.inner
            .stored_bytes
            .fetch_sub(replaced, Ordering::Relaxed);
    }

    /// Deletes an object, returning whether it existed. Not paced —
    /// deletions are metadata operations on real parallel filesystems.
    pub fn remove(&self, id: ObjectId) -> bool {
        let id = self.global_id(id);
        let removed = match &self.inner.store {
            Store::Memory(map) => map.remove(id).map(|b| b.len() as u64),
            Store::Disk { dir, sizes } => {
                let size = sizes.remove(id);
                if size.is_some() {
                    std::fs::remove_file(Self::object_path(dir, id)).ok();
                }
                size
            }
        };
        match removed {
            Some(size) => {
                self.inner.stored_bytes.fetch_sub(size, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Bytes at rest across every namespace (occupancy, not traffic).
    pub fn total_bytes(&self) -> u64 {
        self.inner.stored_bytes.load(Ordering::Relaxed)
    }

    /// Size of an object without reading it (metadata operation, free).
    pub fn size_of(&self, id: ObjectId) -> Option<u64> {
        let id = self.global_id(id);
        match &self.inner.store {
            Store::Memory(map) => map.with(id, |b| b.len() as u64),
            Store::Disk { sizes, .. } => sizes.get(id),
        }
    }

    /// Whether an object exists.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.size_of(id).is_some()
    }

    /// Number of stored objects, across every namespace.
    pub fn len(&self) -> usize {
        match &self.inner.store {
            Store::Memory(map) => map.len(),
            Store::Disk { sizes, .. } => sizes.len(),
        }
    }

    /// Whether the PFS is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Injected-fault check for one read attempt. Fires before any
    /// pacing, like a failed RPC. The relaxed `has_faults` flag keeps
    /// fault-free production reads off the fault table's mutex.
    fn check_fault(&self, id: ObjectId) -> Result<(), PfsError> {
        if !self.inner.has_faults.load(Ordering::Relaxed) {
            return Ok(());
        }
        let gid = self.global_id(id);
        if let Some(remaining) = self.inner.faults.lock().get_mut(&gid) {
            if *remaining > 0 {
                *remaining -= 1;
                return Err(PfsError::Io(format!("injected fault for object {id}")));
            }
        }
        Ok(())
    }

    /// Fetches an object's bytes from the store, unpaced. Errors carry
    /// the caller's (namespace-local) id; the store is addressed by the
    /// offset global id.
    fn load(&self, id: ObjectId) -> Result<Bytes, PfsError> {
        let gid = self.global_id(id);
        match &self.inner.store {
            Store::Memory(map) => map.get(gid).ok_or(PfsError::NotFound(id)),
            Store::Disk { dir, .. } => {
                let path = Self::object_path(dir, gid);
                match std::fs::read(&path) {
                    Ok(v) => Ok(Bytes::from(v)),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        Err(PfsError::NotFound(id))
                    }
                    Err(e) => Err(PfsError::Io(e.to_string())),
                }
            }
        }
    }

    /// Reads an object, paying the contention-modelled cost: the caller
    /// joins the reader set, the shared regulator's aggregate rate is
    /// set to `t(γ)` for the live reader count `γ`, and the read is
    /// paced through it.
    pub fn read(&self, id: ObjectId) -> Result<Bytes, PfsError> {
        self.check_fault(id)?;
        let guard = ReaderGuard::enter(&self.inner);
        let data = self.load(id)?;
        // Pace the transfer at the current per-reader share.
        self.inner.regulator.acquire(data.len() as u64);
        drop(guard);
        self.inner.stats.reads.inc();
        self.inner.stats.bytes_read.add(data.len() as u64);
        Ok(data)
    }

    /// Vectored read: one result per id, in order, with **one** reader
    /// registration for the whole batch. A real PFS client contributes
    /// one stream to `t(γ)` no matter how many objects it drains down
    /// it, so a batch raises `γ` once instead of once per object —
    /// per-object regulator pacing, fault checks, and statistics are
    /// unchanged from [`Self::read`].
    pub fn read_many(&self, ids: &[ObjectId]) -> Vec<Result<Bytes, PfsError>> {
        let guard = ReaderGuard::enter(&self.inner);
        let results: Vec<Result<Bytes, PfsError>> = ids
            .iter()
            .map(|&id| {
                self.check_fault(id)?;
                let data = self.load(id)?;
                self.inner.regulator.acquire(data.len() as u64);
                self.inner.stats.reads.inc();
                self.inner.stats.bytes_read.add(data.len() as u64);
                Ok(data)
            })
            .collect();
        drop(guard);
        results
    }

    /// Current number of in-flight readers (`γ`).
    pub fn reader_count(&self) -> usize {
        self.inner.readers.load(Ordering::Relaxed)
    }

    /// The modelled aggregate read rate at `gamma` clients, model bytes/s.
    pub fn rate_at(&self, gamma: usize) -> f64 {
        self.inner.curve.at(gamma.max(1) as f64)
    }

    /// Makes the next `times` reads of `id` fail with an I/O error
    /// (failure-injection hook for tests).
    pub fn inject_fault(&self, id: ObjectId, times: u32) {
        self.inner.faults.lock().insert(self.global_id(id), times);
        self.inner.has_faults.store(true, Ordering::Relaxed);
    }

    /// Cumulative traffic statistics (shared across every namespace).
    pub fn stats(&self) -> PfsStats {
        PfsStats {
            reads: self.inner.stats.reads.get(),
            bytes_read: self.inner.stats.bytes_read.get(),
            writes: self.inner.stats.writes.get(),
            bytes_written: self.inner.stats.bytes_written.get(),
        }
    }
}

/// The PFS as one tier of the storage hierarchy: the unbounded,
/// authoritative origin every [`nopfs_storage::TierStack`] bottoms out
/// in. Reads pace through the shared `t(γ)` regulator like any other
/// PFS read, so tier traffic and direct traffic contend identically.
impl From<PfsError> for nopfs_storage::SourceError {
    fn from(e: PfsError) -> Self {
        match e {
            PfsError::NotFound(id) => nopfs_storage::SourceError::NotFound(id),
            PfsError::Io(msg) => nopfs_storage::SourceError::Io(msg),
        }
    }
}

impl nopfs_storage::DataSource for Pfs {
    fn name(&self) -> &str {
        "pfs"
    }

    fn read(&self, id: ObjectId) -> Result<Bytes, nopfs_storage::SourceError> {
        Pfs::read(self, id).map_err(Into::into)
    }

    fn read_many(&self, ids: &[ObjectId]) -> Vec<Result<Bytes, nopfs_storage::SourceError>> {
        Pfs::read_many(self, ids)
            .into_iter()
            .map(|r| r.map_err(Into::into))
            .collect()
    }

    fn write(&self, id: ObjectId, data: Bytes) -> Result<(), nopfs_storage::SourceError> {
        self.put(id, data);
        Ok(())
    }

    fn contains(&self, id: ObjectId) -> bool {
        Pfs::contains(self, id)
    }

    fn capacity(&self) -> Option<u64> {
        None
    }

    fn used(&self) -> u64 {
        self.total_bytes()
    }

    fn evict(&self, id: ObjectId) -> bool {
        self.remove(id)
    }

    fn count(&self) -> usize {
        self.len()
    }

    fn size_of(&self, id: ObjectId) -> Option<u64> {
        Pfs::size_of(self, id)
    }
}

/// RAII reader registration: adjusts γ and retunes the shared regulator
/// on entry and exit.
struct ReaderGuard<'a> {
    inner: &'a PfsInner,
}

impl<'a> ReaderGuard<'a> {
    fn enter(inner: &'a PfsInner) -> Self {
        let gamma = inner.readers.fetch_add(1, Ordering::SeqCst) + 1;
        inner.regulator.set_rate(
            inner
                .scale
                .rate_to_wall(inner.curve.at(gamma as f64))
                .max(1.0),
        );
        Self { inner }
    }
}

impl Drop for ReaderGuard<'_> {
    fn drop(&mut self) {
        let prev = self.inner.readers.fetch_sub(1, Ordering::SeqCst);
        let gamma = prev.saturating_sub(1).max(1);
        self.inner.regulator.set_rate(
            self.inner
                .scale
                .rate_to_wall(self.inner.curve.at(gamma as f64))
                .max(1.0),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn fast_curve() -> ThroughputCurve {
        ThroughputCurve::flat(1.0e9)
    }

    #[test]
    fn put_and_read_round_trip() {
        let pfs = Pfs::in_memory(fast_curve(), TimeScale::realtime());
        pfs.put(7, Bytes::from(vec![1, 2, 3]));
        assert_eq!(pfs.read(7).unwrap(), Bytes::from(vec![1, 2, 3]));
        assert_eq!(pfs.size_of(7), Some(3));
        assert!(pfs.contains(7));
        assert_eq!(pfs.len(), 1);
    }

    #[test]
    fn missing_object_is_not_found() {
        let pfs = Pfs::in_memory(fast_curve(), TimeScale::realtime());
        assert_eq!(pfs.read(1), Err(PfsError::NotFound(1)));
        assert_eq!(pfs.size_of(1), None);
    }

    #[test]
    fn disk_backed_round_trip() {
        let dir = std::env::temp_dir().join(format!("nopfs-pfs-test-{}", std::process::id()));
        let pfs = Pfs::on_disk(&dir, fast_curve(), TimeScale::realtime());
        let payload = Bytes::from((0..=255u8).collect::<Vec<_>>());
        pfs.put(123, payload.clone());
        assert_eq!(pfs.read(123).unwrap(), payload);
        assert_eq!(pfs.size_of(123), Some(256));
        assert_eq!(pfs.read(99), Err(PfsError::NotFound(99)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reads_are_paced_by_the_curve() {
        // 1 MB/s model rate, realtime: 100 KB should take ~100 ms.
        let pfs = Pfs::in_memory(ThroughputCurve::flat(1.0e6), TimeScale::realtime());
        pfs.put(1, Bytes::from(vec![0u8; 100_000]));
        pfs.read(1).unwrap(); // drain the small burst allowance
        let t0 = Instant::now();
        pfs.read(1).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.06, "read unrealistically fast: {dt}s");
        assert!(dt < 0.5, "read unrealistically slow: {dt}s");
    }

    #[test]
    fn time_scale_compresses_read_time() {
        // Same data, 100x compressed time: ~1 ms instead of ~100 ms.
        let pfs = Pfs::in_memory(ThroughputCurve::flat(1.0e6), TimeScale::new(0.01));
        pfs.put(1, Bytes::from(vec![0u8; 100_000]));
        pfs.read(1).unwrap();
        let t0 = Instant::now();
        pfs.read(1).unwrap();
        assert!(t0.elapsed().as_secs_f64() < 0.05);
    }

    #[test]
    fn contention_throttles_aggregate_rate() {
        // Saturating curve: t(1) = 4 MB/s, flat at 4 MB/s for more
        // readers. Two concurrent readers should each see ~half.
        let curve = ThroughputCurve::from_points(&[(1.0, 4.0e6), (8.0, 4.1e6)]);
        let pfs = Pfs::in_memory(curve, TimeScale::realtime());
        let size = 200_000; // 50 ms alone, ~100 ms with contention
        pfs.put(1, Bytes::from(vec![0u8; size]));
        pfs.put(2, Bytes::from(vec![0u8; size]));
        pfs.read(1).unwrap(); // drain burst
        let t0 = Instant::now();
        let p2 = pfs.clone();
        let h = std::thread::spawn(move || p2.read(2).unwrap());
        pfs.read(1).unwrap();
        h.join().unwrap();
        let both = t0.elapsed().as_secs_f64();
        // 400 KB total at 4 MB/s aggregate = 100 ms, not 50.
        assert!(both > 0.08, "contention not applied: {both}s");
    }

    #[test]
    fn reader_count_tracks_inflight_reads() {
        let pfs = Pfs::in_memory(ThroughputCurve::flat(2.0e6), TimeScale::realtime());
        pfs.put(1, Bytes::from(vec![0u8; 300_000]));
        assert_eq!(pfs.reader_count(), 0);
        let p2 = pfs.clone();
        let h = std::thread::spawn(move || p2.read(1).unwrap());
        // Poll while the read is in flight.
        let mut saw_reader = false;
        for _ in 0..200 {
            if pfs.reader_count() > 0 {
                saw_reader = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        h.join().unwrap();
        assert!(saw_reader, "reader never observed in flight");
        assert_eq!(pfs.reader_count(), 0);
    }

    #[test]
    fn fault_injection_fails_then_recovers() {
        let pfs = Pfs::in_memory(fast_curve(), TimeScale::realtime());
        pfs.put(5, Bytes::from(vec![9u8; 10]));
        pfs.inject_fault(5, 2);
        assert!(matches!(pfs.read(5), Err(PfsError::Io(_))));
        assert!(matches!(pfs.read(5), Err(PfsError::Io(_))));
        assert_eq!(pfs.read(5).unwrap().len(), 10);
    }

    #[test]
    fn read_many_matches_per_object_reads() {
        let pfs = Pfs::in_memory(fast_curve(), TimeScale::realtime());
        for id in 0..6u64 {
            pfs.put(id, Bytes::from(vec![id as u8; 10 + id as usize]));
        }
        pfs.inject_fault(4, 1);
        let res = pfs.read_many(&[0, 3, 99, 4, 5]);
        assert_eq!(res[0].as_ref().unwrap(), &Bytes::from(vec![0u8; 10]));
        assert_eq!(res[1].as_ref().unwrap().len(), 13);
        assert_eq!(res[2], Err(PfsError::NotFound(99)));
        assert!(matches!(res[3], Err(PfsError::Io(_))), "fault honored");
        assert!(res[4].is_ok());
        // Per-object statistics: 3 successes counted, like single reads.
        assert_eq!(pfs.stats().reads, 3);
        assert_eq!(pfs.stats().bytes_read, 10 + 13 + 15);
        // The injected fault was consumed by the batch.
        assert!(pfs.read(4).is_ok());
        assert_eq!(pfs.reader_count(), 0, "batch guard released");
    }

    #[test]
    fn read_many_registers_one_reader_for_the_batch() {
        // A slow batch holds γ = 1 for its whole duration — the batch
        // is one client stream, not one per object.
        let pfs = Pfs::in_memory(ThroughputCurve::flat(2.0e6), TimeScale::realtime());
        for id in 0..4u64 {
            pfs.put(id, Bytes::from(vec![0u8; 100_000]));
        }
        let p2 = pfs.clone();
        let h = std::thread::spawn(move || p2.read_many(&[0, 1, 2, 3]));
        let mut max_gamma = 0;
        for _ in 0..200 {
            max_gamma = max_gamma.max(pfs.reader_count());
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let res = h.join().unwrap();
        assert!(res.iter().all(|r| r.is_ok()));
        assert_eq!(max_gamma, 1, "batch counted as one reader, saw {max_gamma}");
    }

    #[test]
    fn stats_accumulate() {
        let pfs = Pfs::in_memory(fast_curve(), TimeScale::realtime());
        pfs.put(1, Bytes::from(vec![0u8; 100]));
        pfs.put(2, Bytes::from(vec![0u8; 50]));
        pfs.read(1).unwrap();
        pfs.read(1).unwrap();
        let stats = pfs.stats();
        assert_eq!(
            stats,
            PfsStats {
                reads: 2,
                bytes_read: 200,
                writes: 2,
                bytes_written: 150,
            }
        );
        // The origin-tier view of the same statistics.
        let tier: nopfs_storage::TierStats = stats.into();
        assert_eq!(tier.name, "pfs");
        assert_eq!((tier.hits, tier.bytes_read), (2, 200));
        assert_eq!((tier.fills, tier.bytes_filled), (2, 150));
    }

    #[test]
    fn occupancy_tracks_puts_and_removes() {
        let pfs = Pfs::in_memory(fast_curve(), TimeScale::realtime());
        pfs.put(1, Bytes::from(vec![0u8; 100]));
        pfs.put(2, Bytes::from(vec![0u8; 50]));
        assert_eq!(pfs.total_bytes(), 150);
        pfs.put(1, Bytes::from(vec![0u8; 30])); // replace
        assert_eq!(pfs.total_bytes(), 80);
        assert!(pfs.remove(2));
        assert!(!pfs.remove(2));
        assert_eq!(pfs.total_bytes(), 30);
        assert_eq!(pfs.len(), 1);
    }

    #[test]
    fn pfs_is_a_data_source() {
        use nopfs_storage::{DataSource, SourceError};
        let pfs = Pfs::in_memory(fast_curve(), TimeScale::realtime());
        let src: &dyn DataSource = &pfs;
        assert_eq!(src.name(), "pfs");
        assert_eq!(src.capacity(), None);
        src.write(7, Bytes::from_static(b"origin")).unwrap();
        assert_eq!(src.read(7).unwrap(), Bytes::from_static(b"origin"));
        assert_eq!(src.read(8), Err(SourceError::NotFound(8)));
        assert_eq!(src.size_of(7), Some(6));
        assert_eq!(src.used(), 6);
        assert_eq!(src.count(), 1);
        pfs.inject_fault(7, 1);
        assert!(matches!(src.read(7), Err(SourceError::Io(_))));
        assert!(src.evict(7));
        assert!(!src.contains(7));
    }

    #[test]
    fn pfs_serves_as_tier_stack_origin() {
        use nopfs_storage::{MemoryBackend, PromotePolicy, TierStack};
        let pfs = Pfs::in_memory(fast_curve(), TimeScale::realtime());
        for id in 0..8u64 {
            pfs.put(id, Bytes::from(vec![id as u8; 16]));
        }
        let stack = TierStack::new(
            vec![
                Arc::new(MemoryBackend::new("ram", 64)),
                Arc::new(pfs.clone()),
            ],
            PromotePolicy::IfFits,
        );
        for id in 0..8u64 {
            // Byte-identical to a direct PFS read.
            assert_eq!(stack.read(id).unwrap(), pfs.read(id).unwrap());
        }
        // 4 of 8 promoted into RAM (64 B / 16 B); re-reads hit the cache.
        assert_eq!(stack.stats(0).promotions, 4);
        let before = pfs.stats().reads;
        stack.read(0).unwrap();
        assert_eq!(pfs.stats().reads, before, "cached read skips the PFS");
    }

    #[test]
    fn namespaces_isolate_ids_but_share_the_store() {
        let pfs = Pfs::in_memory(fast_curve(), TimeScale::realtime());
        let a = pfs.namespaced(0);
        let b = pfs.namespaced(1_000);
        a.put(3, Bytes::from_static(b"tenant-a"));
        b.put(3, Bytes::from_static(b"tenant-b"));
        // Same local id, different objects.
        assert_eq!(a.read(3).unwrap(), Bytes::from_static(b"tenant-a"));
        assert_eq!(b.read(3).unwrap(), Bytes::from_static(b"tenant-b"));
        // The root namespace sees both at their global ids.
        assert_eq!(pfs.read(3).unwrap(), Bytes::from_static(b"tenant-a"));
        assert_eq!(pfs.read(1_003).unwrap(), Bytes::from_static(b"tenant-b"));
        assert_eq!(pfs.len(), 2);
        // Errors report the caller's local id.
        assert_eq!(b.read(7), Err(PfsError::NotFound(7)));
        // Namespaces compose.
        let b2 = b.namespaced(10);
        assert_eq!(b2.namespace_base(), 1_010);
        b2.put(0, Bytes::from_static(b"deep"));
        assert_eq!(pfs.read(1_010).unwrap(), Bytes::from_static(b"deep"));
    }

    #[test]
    fn namespaced_faults_stay_in_their_namespace() {
        let pfs = Pfs::in_memory(fast_curve(), TimeScale::realtime());
        let a = pfs.namespaced(0);
        let b = pfs.namespaced(100);
        a.put(1, Bytes::from_static(b"a"));
        b.put(1, Bytes::from_static(b"b"));
        b.inject_fault(1, 1);
        assert!(a.read(1).is_ok(), "fault must not leak across namespaces");
        assert!(matches!(b.read(1), Err(PfsError::Io(_))));
        assert!(b.read(1).is_ok());
    }

    #[test]
    fn namespaced_readers_share_the_regulator() {
        // Two namespaces on a saturating curve: concurrent reads from
        // different tenants must split the aggregate rate exactly like
        // two readers of one tenant would.
        let curve = ThroughputCurve::from_points(&[(1.0, 4.0e6), (8.0, 4.1e6)]);
        let pfs = Pfs::in_memory(curve, TimeScale::realtime());
        let a = pfs.namespaced(0);
        let b = pfs.namespaced(10);
        let size = 200_000;
        a.put(1, Bytes::from(vec![0u8; size]));
        b.put(1, Bytes::from(vec![0u8; size]));
        a.read(1).unwrap(); // drain burst
        let t0 = Instant::now();
        let h = std::thread::spawn(move || b.read(1).unwrap());
        a.read(1).unwrap();
        h.join().unwrap();
        let both = t0.elapsed().as_secs_f64();
        // 400 KB total at 4 MB/s aggregate = 100 ms, not 50.
        assert!(both > 0.08, "cross-tenant contention not applied: {both}s");
    }

    #[test]
    fn rate_at_follows_curve() {
        let curve = ThroughputCurve::from_points(&[(1.0, 330.0e6), (8.0, 2_870.0e6)]);
        let pfs = Pfs::in_memory(curve, TimeScale::realtime());
        assert!((pfs.rate_at(1) - 330.0e6).abs() < 1.0);
        assert!((pfs.rate_at(8) - 2_870.0e6).abs() < 1.0);
        assert_eq!(pfs.rate_at(0), pfs.rate_at(1));
    }
}
