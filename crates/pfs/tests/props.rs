//! Property-based tests for the synthetic PFS: storage is faithful for
//! arbitrary objects, and fault injection is exact.

use bytes::Bytes;
use nopfs_perfmodel::ThroughputCurve;
use nopfs_pfs::{Pfs, PfsError};
use nopfs_util::timing::TimeScale;
use proptest::prelude::*;

fn fast() -> Pfs {
    Pfs::in_memory(ThroughputCurve::flat(1e12), TimeScale::realtime())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever is put is read back byte-for-byte, sizes agree, and
    /// overwrites take effect.
    #[test]
    fn round_trip_arbitrary_objects(
        objects in prop::collection::hash_map(any::<u64>(), prop::collection::vec(any::<u8>(), 0..512), 1..30)
    ) {
        let pfs = fast();
        for (&id, data) in &objects {
            pfs.put(id, Bytes::from(data.clone()));
        }
        prop_assert_eq!(pfs.len(), objects.len());
        for (&id, data) in &objects {
            prop_assert_eq!(pfs.size_of(id), Some(data.len() as u64));
            let read = pfs.read(id).expect("present");
            prop_assert_eq!(read.as_ref(), data.as_slice());
        }
        // Overwrite one object and confirm the replacement wins.
        if let Some((&id, _)) = objects.iter().next() {
            pfs.put(id, Bytes::from_static(b"replacement"));
            prop_assert_eq!(pfs.read(id).expect("present"), Bytes::from_static(b"replacement"));
        }
    }

    /// Injected faults fire exactly `times` times, then reads recover.
    #[test]
    fn fault_injection_is_exact(times in 0u32..5) {
        let pfs = fast();
        pfs.put(1, Bytes::from_static(b"x"));
        pfs.inject_fault(1, times);
        for _ in 0..times {
            prop_assert!(matches!(pfs.read(1), Err(PfsError::Io(_))));
        }
        prop_assert!(pfs.read(1).is_ok());
    }

    /// Reads of absent objects report NotFound, never panic, for any id.
    #[test]
    fn absent_objects_are_not_found(id in any::<u64>()) {
        let pfs = fast();
        prop_assert_eq!(pfs.read(id), Err(PfsError::NotFound(id)));
        prop_assert_eq!(pfs.size_of(id), None);
        prop_assert!(!pfs.contains(id));
    }
}
