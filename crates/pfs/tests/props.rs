//! Property-based tests for the synthetic PFS: storage is faithful for
//! arbitrary objects, and fault injection is exact.

use bytes::Bytes;
use nopfs_perfmodel::ThroughputCurve;
use nopfs_pfs::{Pfs, PfsError};
use nopfs_util::timing::TimeScale;
use proptest::prelude::*;

fn fast() -> Pfs {
    Pfs::in_memory(ThroughputCurve::flat(1e12), TimeScale::realtime())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever is put is read back byte-for-byte, sizes agree, and
    /// overwrites take effect.
    #[test]
    fn round_trip_arbitrary_objects(
        objects in prop::collection::hash_map(any::<u64>(), prop::collection::vec(any::<u8>(), 0..512), 1..30)
    ) {
        let pfs = fast();
        for (&id, data) in &objects {
            pfs.put(id, Bytes::from(data.clone()));
        }
        prop_assert_eq!(pfs.len(), objects.len());
        for (&id, data) in &objects {
            prop_assert_eq!(pfs.size_of(id), Some(data.len() as u64));
            let read = pfs.read(id).expect("present");
            prop_assert_eq!(read.as_ref(), data.as_slice());
        }
        // Overwrite one object and confirm the replacement wins.
        if let Some((&id, _)) = objects.iter().next() {
            pfs.put(id, Bytes::from_static(b"replacement"));
            prop_assert_eq!(pfs.read(id).expect("present"), Bytes::from_static(b"replacement"));
        }
    }

    /// Injected faults fire exactly `times` times, then reads recover.
    #[test]
    fn fault_injection_is_exact(times in 0u32..5) {
        let pfs = fast();
        pfs.put(1, Bytes::from_static(b"x"));
        pfs.inject_fault(1, times);
        for _ in 0..times {
            prop_assert!(matches!(pfs.read(1), Err(PfsError::Io(_))));
        }
        prop_assert!(pfs.read(1).is_ok());
    }

    /// Reads of absent objects report NotFound, never panic, for any id.
    #[test]
    fn absent_objects_are_not_found(id in any::<u64>()) {
        let pfs = fast();
        prop_assert_eq!(pfs.read(id), Err(PfsError::NotFound(id)));
        prop_assert_eq!(pfs.size_of(id), None);
        prop_assert!(!pfs.contains(id));
    }

    /// Namespacing is a pure id translation: any object written through
    /// a namespaced handle is the same bytes at `base + id` through the
    /// root handle, and ids outside the namespace never alias into it.
    #[test]
    fn namespaces_translate_ids_exactly(
        base in 0u64..1_000_000,
        ids in prop::collection::hash_map(0u64..10_000, Just(()), 1..20)
    ) {
        let pfs = fast();
        let ns = pfs.namespaced(base);
        for &id in ids.keys() {
            ns.put(id, Bytes::from(id.to_le_bytes().to_vec()));
        }
        for &id in ids.keys() {
            prop_assert_eq!(ns.read(id).expect("present"), pfs.read(base + id).expect("present"));
            prop_assert_eq!(ns.size_of(id), Some(8));
        }
        prop_assert_eq!(pfs.len(), ids.len());
    }

    /// Cross-tenant reader accounting: with a saturating `t(γ)`, the
    /// aggregate rate is fixed no matter how many readers two tenants
    /// split between themselves, so draining the same total bytes takes
    /// the same wall time. If each tenant's pool had a private
    /// regulator, the run would finish in roughly half the time — this
    /// property fails unless the regulator sees the *combined* live
    /// reader count.
    #[test]
    fn combined_reader_count_sets_the_shared_rate(a in 1usize..4, b in 1usize..4) {
        let rate = 8.0e6; // aggregate bytes/s, flat in γ
        let curve = ThroughputCurve::from_points(&[(1.0, rate), (16.0, rate * 1.01)]);
        let pfs = Pfs::in_memory(curve, TimeScale::realtime());
        let tenant_a = pfs.namespaced(0);
        let tenant_b = pfs.namespaced(1_000_000);
        let per_read = 100_000u64;
        let reads_per_thread = 2u64;
        for t in 0..a as u64 {
            tenant_a.put(t, Bytes::from(vec![0u8; per_read as usize]));
        }
        for t in 0..b as u64 {
            tenant_b.put(t, Bytes::from(vec![0u8; per_read as usize]));
        }
        tenant_a.read(0).expect("warmup"); // drain the burst allowance
        let total_bytes = (a + b) as u64 * reads_per_thread * per_read;
        let expected = total_bytes as f64 / rate;
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for t in 0..a as u64 {
                let h = tenant_a.clone();
                s.spawn(move || {
                    for _ in 0..reads_per_thread {
                        h.read(t).expect("tenant A read");
                    }
                });
            }
            for t in 0..b as u64 {
                let h = tenant_b.clone();
                s.spawn(move || {
                    for _ in 0..reads_per_thread {
                        h.read(t).expect("tenant B read");
                    }
                });
            }
        });
        let elapsed = t0.elapsed().as_secs_f64();
        prop_assert!(
            elapsed > 0.7 * expected,
            "combined γ not applied: {elapsed}s for expected {expected}s"
        );
        // Generous sanity ceiling only: scheduler delay on a loaded
        // 1-core CI box must not fail a correct regulator.
        prop_assert!(
            elapsed < 3.0 * expected + 0.5,
            "regulator slower than the curve: {elapsed}s vs {expected}s"
        );
    }
}
