//! Synthetic datasets matching the paper's evaluation workloads.
//!
//! The real datasets (ImageNet-1k/22k, OpenImages, MNIST, CosmoFlow)
//! are not available here, but a data loader's I/O behaviour is fully
//! determined by the *file-size distribution* and *sample count* — which
//! the paper publishes for every workload (Sec. 6.1: sizes "distributed
//! normally", with the μ/σ/F per dataset). [`DatasetProfile`] encodes
//! those parameters, generates reproducible per-sample sizes, and
//! materializes content-verifiable synthetic samples into the synthetic
//! PFS.
//!
//! Every sample's payload is deterministic from `(dataset seed, id)`:
//! an 16-byte header (id + label) followed by a seeded byte pattern, so
//! integrity can be checked after any number of cache/network hops and
//! labels can be decoded by the training loop without side channels.
//!
//! [`DatasetProfile::scaled`] shrinks a profile for laptop-scale runs
//! while preserving the ratios that select the paper's storage regimes.

use bytes::Bytes;
use nopfs_pfs::Pfs;
use nopfs_util::rng::{mix64, splitmix64, splitmix64_mix, Xoshiro256pp};
use nopfs_util::units::{KB, MB};

/// Minimum sample size: the normal distribution is clipped here so no
/// sample degenerates to zero bytes (real files have headers too).
pub const MIN_SAMPLE_BYTES: u64 = 64;

/// Length of the verifiable sample header: 8 bytes id + 4 bytes label +
/// 4 bytes magic.
pub const HEADER_BYTES: usize = 16;

const MAGIC: u32 = 0x4E6F_5046; // "NoPF"

/// A synthetic dataset: the paper's published size statistics plus a
/// seed making every byte reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper's figures.
    pub name: String,
    /// Number of samples `F`.
    pub num_samples: u64,
    /// Mean sample size μ, bytes.
    pub mean_size: f64,
    /// Size standard deviation σ, bytes.
    pub std_size: f64,
    /// Number of label classes.
    pub num_classes: u32,
    /// Seed for sizes, labels, and payloads.
    pub seed: u64,
}

impl DatasetProfile {
    /// MNIST (Sec. 6.1 scenario 1): μ=0.76 KB, σ=0, F=50,000; 40 MB.
    pub fn mnist() -> Self {
        Self::new("MNIST", 50_000, 0.76 * KB, 0.0, 10, 0x4D4E)
    }

    /// ImageNet-1k (scenario 2): μ=0.1077 MB, σ=0.1 MB, F=1,281,167;
    /// 135 GB, 1000 classes.
    pub fn imagenet_1k() -> Self {
        Self::new(
            "ImageNet-1k",
            1_281_167,
            0.1077 * MB,
            0.1 * MB,
            1_000,
            0x494E31,
        )
    }

    /// OpenImages (scenario 2): μ=0.2937 MB, σ=0.2 MB, F=1,743,042;
    /// 500 GB.
    pub fn openimages() -> Self {
        Self::new("OpenImages", 1_743_042, 0.2937 * MB, 0.2 * MB, 600, 0x4F49)
    }

    /// ImageNet-22k (scenario 3): μ=0.1077 MB, σ=0.2 MB, F=14,197,122;
    /// 1.5 TB, 21,841 classes.
    pub fn imagenet_22k() -> Self {
        Self::new(
            "ImageNet-22k",
            14_197_122,
            0.1077 * MB,
            0.2 * MB,
            21_841,
            0x494E32,
        )
    }

    /// CosmoFlow (scenario 4): μ=17 MB, σ=0, F=262,144; ~4.5 TB of
    /// fixed-size 128³ volumes (regression task: classes = 1).
    pub fn cosmoflow() -> Self {
        Self::new("CosmoFlow", 262_144, 17.0 * MB, 0.0, 1, 0x4346)
    }

    /// CosmoFlow-512³ (scenario 4): μ=1000 MB, σ=0, F=10,000; 10 TB.
    pub fn cosmoflow_512() -> Self {
        Self::new("CosmoFlow-512", 10_000, 1_000.0 * MB, 0.0, 1, 0x4347)
    }

    /// All six paper profiles, in Fig. 8 order.
    pub fn paper_profiles() -> Vec<Self> {
        vec![
            Self::mnist(),
            Self::imagenet_1k(),
            Self::openimages(),
            Self::imagenet_22k(),
            Self::cosmoflow(),
            Self::cosmoflow_512(),
        ]
    }

    /// Builds a profile.
    ///
    /// # Panics
    /// Panics on zero samples/classes or a non-positive mean.
    pub fn new(
        name: impl Into<String>,
        num_samples: u64,
        mean_size: f64,
        std_size: f64,
        num_classes: u32,
        seed: u64,
    ) -> Self {
        assert!(num_samples > 0, "a dataset has samples");
        assert!(mean_size > 0.0, "mean size must be positive");
        assert!(std_size >= 0.0, "size std-dev must be non-negative");
        assert!(num_classes > 0, "at least one class");
        Self {
            name: name.into(),
            num_samples,
            mean_size,
            std_size,
            num_classes,
            seed,
        }
    }

    /// Scales the profile: multiply the sample count by `count_factor`
    /// and sizes by `size_factor` (both in `(0, 1]` for shrinking; >1
    /// allowed for growth studies). At least one sample remains.
    pub fn scaled(&self, count_factor: f64, size_factor: f64) -> Self {
        assert!(count_factor > 0.0 && size_factor > 0.0);
        Self {
            name: format!("{}@{count_factor}x{size_factor}", self.name),
            num_samples: ((self.num_samples as f64 * count_factor) as u64).max(1),
            mean_size: (self.mean_size * size_factor).max(MIN_SAMPLE_BYTES as f64),
            std_size: self.std_size * size_factor,
            num_classes: self.num_classes,
            seed: self.seed,
        }
    }

    /// Per-sample sizes in bytes: normal(μ, σ) clipped at
    /// [`MIN_SAMPLE_BYTES`], deterministic from the seed.
    pub fn sizes(&self) -> Vec<u64> {
        let mut rng = Xoshiro256pp::seed_from_u64(mix64(self.seed, 0x5129E5));
        (0..self.num_samples)
            .map(|_| {
                if self.std_size == 0.0 {
                    (self.mean_size as u64).max(MIN_SAMPLE_BYTES)
                } else {
                    let s = rng.next_normal(self.mean_size, self.std_size);
                    (s.max(MIN_SAMPLE_BYTES as f64)) as u64
                }
            })
            .collect()
    }

    /// Total dataset size `S` in bytes (sums the generated sizes).
    pub fn total_bytes(&self) -> u64 {
        self.sizes().iter().sum()
    }

    /// The label of sample `id` (deterministic, roughly uniform).
    pub fn label_of(&self, id: u64) -> u32 {
        (mix64(self.seed ^ 0x1ABE1, id) % u64::from(self.num_classes)) as u32
    }

    /// Generates sample `id`'s full payload: verifiable header plus a
    /// seeded byte pattern of the given size.
    pub fn sample_bytes(&self, id: u64, size: u64) -> Bytes {
        let size = size.max(HEADER_BYTES as u64) as usize;
        let mut v = Vec::with_capacity(size);
        v.extend_from_slice(&id.to_le_bytes());
        v.extend_from_slice(&self.label_of(id).to_le_bytes());
        v.extend_from_slice(&MAGIC.to_le_bytes());
        // Payload pattern: a splitmix64 stream seeded by (seed, id);
        // cheap to generate and to verify at any offset.
        let mut state = mix64(self.seed, id);
        while v.len() < size {
            splitmix64(&mut state);
            let chunk = splitmix64_mix(state).to_le_bytes();
            let take = chunk.len().min(size - v.len());
            v.extend_from_slice(&chunk[..take]);
        }
        Bytes::from(v)
    }

    /// Decodes and verifies a sample payload; returns `(id, label)`.
    ///
    /// Checks the header magic and (for the first payload words) the
    /// seeded pattern, so corruption anywhere near the front is caught.
    pub fn decode(&self, data: &Bytes) -> Result<(u64, u32), String> {
        if data.len() < HEADER_BYTES {
            return Err(format!("sample too short: {} bytes", data.len()));
        }
        let id = u64::from_le_bytes(data[0..8].try_into().expect("length checked"));
        let label = u32::from_le_bytes(data[8..12].try_into().expect("length checked"));
        let magic = u32::from_le_bytes(data[12..16].try_into().expect("length checked"));
        if magic != MAGIC {
            return Err(format!("bad magic 0x{magic:08X} in sample {id}"));
        }
        if label != self.label_of(id) {
            return Err(format!("label mismatch for sample {id}"));
        }
        // Verify up to the first 8 pattern bytes.
        if data.len() > HEADER_BYTES {
            let mut state = mix64(self.seed, id);
            splitmix64(&mut state);
            let expect = splitmix64_mix(state).to_le_bytes();
            let have = &data[HEADER_BYTES..(HEADER_BYTES + 8).min(data.len())];
            if have != &expect[..have.len()] {
                return Err(format!("payload corruption in sample {id}"));
            }
        }
        Ok((id, label))
    }

    /// Writes every sample into the PFS ("all runs begin with data at
    /// rest on a PFS", Sec. 7). Returns the per-sample sizes actually
    /// materialized.
    pub fn materialize(&self, pfs: &Pfs) -> Vec<u64> {
        let sizes = self.sizes();
        for (id, &size) in sizes.iter().enumerate() {
            pfs.put(id as u64, self.sample_bytes(id as u64, size));
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nopfs_perfmodel::ThroughputCurve;
    use nopfs_util::timing::TimeScale;
    use nopfs_util::units::{GB, TB};

    #[test]
    fn paper_totals_match_published_sizes() {
        // MNIST: "40 MB".
        let mnist = DatasetProfile::mnist();
        let total = mnist.total_bytes() as f64;
        assert!((total - 38.0 * MB).abs() < 3.0 * MB, "MNIST total {total}");

        // CosmoFlow: 262,144 x 17 MB ≈ 4.46 TB (the paper's "4 TB").
        let cf = DatasetProfile::cosmoflow();
        assert_eq!(cf.total_bytes(), 262_144 * 17_000_000);
        assert!((cf.total_bytes() as f64 - 4.456 * TB).abs() < 0.01 * TB);

        // CosmoFlow-512: 10,000 x 1 GB = 10 TB.
        assert_eq!(
            DatasetProfile::cosmoflow_512().total_bytes(),
            10_000_000_000_000
        );
    }

    #[test]
    fn imagenet_scale_totals_are_plausible() {
        // Clipping the normal at 64 B shifts ImageNet-1k's mean slightly
        // above 0.1077 MB; the paper's 135 GB should hold within ~15%.
        let scaled = DatasetProfile::imagenet_1k().scaled(0.01, 1.0);
        let mean = scaled.total_bytes() as f64 / scaled.num_samples as f64;
        let implied_full = mean * 1_281_167.0;
        assert!(
            (implied_full - 135.0 * GB).abs() < 25.0 * GB,
            "implied ImageNet-1k total {implied_full}"
        );
    }

    #[test]
    fn sizes_are_deterministic_and_clipped() {
        let p = DatasetProfile::imagenet_1k().scaled(0.001, 1.0);
        let a = p.sizes();
        let b = p.sizes();
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s >= MIN_SAMPLE_BYTES));
        // σ > 0 implies variety.
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 10);
    }

    #[test]
    fn fixed_size_dataset_has_uniform_sizes() {
        let p = DatasetProfile::cosmoflow().scaled(0.0001, 0.001);
        let sizes = p.sizes();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn scaled_keeps_at_least_one_sample() {
        let p = DatasetProfile::mnist().scaled(1e-9, 1.0);
        assert_eq!(p.num_samples, 1);
    }

    #[test]
    fn labels_are_stable_and_in_range() {
        let p = DatasetProfile::mnist();
        for id in 0..100 {
            let l = p.label_of(id);
            assert!(l < 10);
            assert_eq!(l, p.label_of(id));
        }
        // Roughly uniform across 10 classes for 1000 samples.
        let mut counts = [0u32; 10];
        for id in 0..1000 {
            counts[p.label_of(id) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 50), "{counts:?}");
    }

    #[test]
    fn sample_round_trip_encodes_and_verifies() {
        let p = DatasetProfile::mnist();
        let data = p.sample_bytes(123, 778);
        assert_eq!(data.len(), 778);
        let (id, label) = p.decode(&data).unwrap();
        assert_eq!(id, 123);
        assert_eq!(label, p.label_of(123));
    }

    #[test]
    fn decode_detects_corruption() {
        let p = DatasetProfile::mnist();
        let data = p.sample_bytes(5, 100);
        let mut bad = data.to_vec();
        bad[20] ^= 0xFF;
        assert!(p.decode(&Bytes::from(bad)).is_err());
        let mut bad_magic = data.to_vec();
        bad_magic[13] ^= 0xFF;
        assert!(p.decode(&Bytes::from(bad_magic)).is_err());
        assert!(p.decode(&Bytes::from_static(b"tiny")).is_err());
    }

    #[test]
    fn materialize_puts_every_sample() {
        let p = DatasetProfile::mnist().scaled(0.001, 1.0); // 50 samples
        let pfs = Pfs::in_memory(ThroughputCurve::flat(1e12), TimeScale::realtime());
        let sizes = p.materialize(&pfs);
        assert_eq!(pfs.len(), 50);
        for (id, &s) in sizes.iter().enumerate() {
            let data = pfs.read(id as u64).unwrap();
            assert_eq!(data.len() as u64, s.max(HEADER_BYTES as u64));
            p.decode(&data).unwrap();
        }
    }

    #[test]
    fn profiles_cover_papers_six_workloads() {
        let names: Vec<String> = DatasetProfile::paper_profiles()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(
            names,
            vec![
                "MNIST",
                "ImageNet-1k",
                "OpenImages",
                "ImageNet-22k",
                "CosmoFlow",
                "CosmoFlow-512"
            ]
        );
    }
}
