//! Plain-text table printing and machine-readable JSON emission for
//! the reproduction benches.
//!
//! Each bench prints the same rows/series the paper's figure reports,
//! in a stable text format that EXPERIMENTS.md quotes. Benches that
//! feed the perf trajectory additionally serialize their numbers with
//! [`Json`] + [`write_json`] (`BENCH_<name>.json` at the workspace
//! root). The [`Json`] value itself lives in `nopfs_obs` — one
//! serializer shared by the bench reports, the telemetry JSONL
//! emitter, and the Chrome trace exporter.

use nopfs_core::stats::SetupStats;
use nopfs_storage::{ResilienceStats, TierStats};
use nopfs_util::stats::Summary;

pub use nopfs_obs::Json;

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!();
    println!("=== {id} — {caption} ===");
}

/// Prints a section sub-header.
pub fn section(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Prints a key/value configuration line.
pub fn config_line(text: &str) {
    println!("    [{text}]");
}

/// Formats a batch-time distribution like the paper's violin annotations.
pub fn dist(summary: &Summary) -> String {
    format!(
        "median {:>8.4}s  p95 {:>8.4}s  max {:>8.4}s",
        summary.median(),
        summary.percentile(95.0),
        summary.max()
    )
}

/// Formats the clairvoyant setup statistics of a NoPFS run (wall time
/// of the single-pass precomputation plus its shuffle-generation
/// count, which stays at E regardless of worker count).
pub fn setup_line(setup: &SetupStats) -> String {
    format!(
        "setup {:>8.1}ms ({} epoch-shuffle generations)",
        setup.setup_time.as_secs_f64() * 1e3,
        setup.shuffle_generations
    )
}

/// Formats `a/b` as a ratio with a `x` suffix (e.g. speedups).
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}

/// Serializes the resilience counters of an object-store origin (per
/// rank, per tenant, or merged) for machine-readable reports.
pub fn resilience_json(stats: &ResilienceStats) -> Json {
    Json::obj([
        ("reads", Json::from(stats.reads)),
        ("retries", Json::from(stats.retries)),
        ("exhausted", Json::from(stats.exhausted)),
        ("hedges_fired", Json::from(stats.hedges_fired)),
        ("hedges_won", Json::from(stats.hedges_won)),
        ("deadline_misses", Json::from(stats.deadline_misses)),
        ("throttled", Json::from(stats.throttled)),
        (
            "breaker_open_rejections",
            Json::from(stats.breaker_open_rejections),
        ),
        ("breaker_to_open", Json::from(stats.breaker_to_open)),
        (
            "breaker_to_half_open",
            Json::from(stats.breaker_to_half_open),
        ),
        ("breaker_to_closed", Json::from(stats.breaker_to_closed)),
    ])
}

/// Serializes one tier's counters from a [`TierStack`] snapshot.
///
/// [`TierStack`]: nopfs_storage::TierStack
pub fn tier_stats_json(tier: &TierStats) -> Json {
    Json::obj([
        ("name", Json::from(tier.name.clone())),
        ("hits", Json::from(tier.hits)),
        ("misses", Json::from(tier.misses)),
        ("hit_rate", Json::Num(tier.hit_rate())),
        ("bytes_read", Json::from(tier.bytes_read)),
        ("fills", Json::from(tier.fills)),
        ("bytes_filled", Json::from(tier.bytes_filled)),
        ("promotions", Json::from(tier.promotions)),
        ("demotions", Json::from(tier.demotions)),
        ("evictions", Json::from(tier.evictions)),
        ("bytes_evicted", Json::from(tier.bytes_evicted)),
        ("capacity", tier.capacity.map_or(Json::Null, Json::from)),
        ("used", Json::from(tier.used)),
    ])
}

/// Where artifact `name` belongs: the workspace root, found by walking
/// up from the current directory to the `Cargo.lock` (benches run with
/// their package directory as CWD, examples with the workspace root —
/// both must land the same `BENCH_*.json` in the same place).
fn artifact_path(name: &str) -> std::path::PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join(name);
        }
        if !dir.pop() {
            return std::path::PathBuf::from(name);
        }
    }
}

/// Writes a JSON report named `name` at the workspace root and prints
/// where it went.
pub fn write_json(name: &str, value: &Json) -> std::io::Result<()> {
    let path = artifact_path(name);
    std::fs::write(&path, value.render())?;
    println!(
        "    [machine-readable report written to {}]",
        path.display()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilience_and_tier_stats_serialize_every_counter() {
        let res = ResilienceStats {
            reads: 10,
            retries: 3,
            hedges_fired: 2,
            hedges_won: 1,
            throttled: 4,
            breaker_to_open: 1,
            ..ResilienceStats::default()
        };
        let s = resilience_json(&res).render();
        assert!(s.contains("\"reads\": 10"));
        assert!(s.contains("\"hedges_won\": 1"));
        assert!(s.contains("\"breaker_to_open\": 1"));
        assert!(s.contains("\"exhausted\": 0"));

        let tier = TierStats {
            name: "ram".into(),
            hits: 3,
            misses: 1,
            bytes_read: 300,
            fills: 4,
            bytes_filled: 400,
            promotions: 2,
            demotions: 0,
            evictions: 1,
            bytes_evicted: 100,
            capacity: None,
            used: 300,
        };
        let t = tier_stats_json(&tier).render();
        assert!(t.contains("\"name\": \"ram\""));
        assert!(t.contains("\"hit_rate\": 0.75"));
        assert!(t.contains("\"capacity\": null"));
    }

    #[test]
    fn json_escapes_strings_and_non_finite() {
        let v = Json::Arr(vec![
            Json::Str("a\"b\\c\nd\u{1}".into()),
            Json::Num(f64::NAN),
            Json::Bool(true),
        ]);
        let s = v.render();
        assert!(s.contains(r#""a\"b\\c\nd\u0001""#));
        assert!(s.contains("null"));
        assert!(s.contains("true"));
    }

    #[test]
    fn json_reexport_round_trips() {
        // The serializer itself lives (and is tested) in `nopfs_obs`;
        // this pins the re-export the benches build their reports with.
        let v = Json::obj([("figure", Json::from("fig2")), ("count", Json::from(3u64))]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
