//! Plain-text table printing for the reproduction benches.
//!
//! Each bench prints the same rows/series the paper's figure reports,
//! in a stable text format that EXPERIMENTS.md quotes.

use nopfs_core::stats::SetupStats;
use nopfs_util::stats::Summary;

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!();
    println!("=== {id} — {caption} ===");
}

/// Prints a section sub-header.
pub fn section(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Prints a key/value configuration line.
pub fn config_line(text: &str) {
    println!("    [{text}]");
}

/// Formats a batch-time distribution like the paper's violin annotations.
pub fn dist(summary: &Summary) -> String {
    format!(
        "median {:>8.4}s  p95 {:>8.4}s  max {:>8.4}s",
        summary.median(),
        summary.percentile(95.0),
        summary.max()
    )
}

/// Formats the clairvoyant setup statistics of a NoPFS run (wall time
/// of the single-pass precomputation plus its shuffle-generation
/// count, which stays at E regardless of worker count).
pub fn setup_line(setup: &SetupStats) -> String {
    format!(
        "setup {:>8.1}ms ({} epoch-shuffle generations)",
        setup.setup_time.as_secs_f64() * 1e3,
        setup.shuffle_generations
    )
}

/// Formats `a/b` as a ratio with a `x` suffix (e.g. speedups).
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}
