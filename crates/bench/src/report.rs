//! Plain-text table printing for the reproduction benches.
//!
//! Each bench prints the same rows/series the paper's figure reports,
//! in a stable text format that EXPERIMENTS.md quotes.

use nopfs_util::stats::Summary;

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!();
    println!("=== {id} — {caption} ===");
}

/// Prints a section sub-header.
pub fn section(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Prints a key/value configuration line.
pub fn config_line(text: &str) {
    println!("    [{text}]");
}

/// Formats a batch-time distribution like the paper's violin annotations.
pub fn dist(summary: &Summary) -> String {
    format!(
        "median {:>8.4}s  p95 {:>8.4}s  max {:>8.4}s",
        summary.median(),
        summary.percentile(95.0),
        summary.max()
    )
}

/// Formats `a/b` as a ratio with a `x` suffix (e.g. speedups).
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}
