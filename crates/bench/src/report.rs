//! Plain-text table printing and machine-readable JSON emission for
//! the reproduction benches.
//!
//! Each bench prints the same rows/series the paper's figure reports,
//! in a stable text format that EXPERIMENTS.md quotes. Benches that
//! feed the perf trajectory additionally serialize their numbers with
//! [`Json`] + [`write_json`] (`BENCH_<name>.json` at the workspace
//! root); the workspace is offline, so the writer is a small built-in
//! rather than a serde dependency.

use nopfs_core::stats::SetupStats;
use nopfs_storage::{ResilienceStats, TierStats};
use nopfs_util::stats::Summary;
use std::fmt::Write as _;

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!();
    println!("=== {id} — {caption} ===");
}

/// Prints a section sub-header.
pub fn section(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Prints a key/value configuration line.
pub fn config_line(text: &str) {
    println!("    [{text}]");
}

/// Formats a batch-time distribution like the paper's violin annotations.
pub fn dist(summary: &Summary) -> String {
    format!(
        "median {:>8.4}s  p95 {:>8.4}s  max {:>8.4}s",
        summary.median(),
        summary.percentile(95.0),
        summary.max()
    )
}

/// Formats the clairvoyant setup statistics of a NoPFS run (wall time
/// of the single-pass precomputation plus its shuffle-generation
/// count, which stays at E regardless of worker count).
pub fn setup_line(setup: &SetupStats) -> String {
    format!(
        "setup {:>8.1}ms ({} epoch-shuffle generations)",
        setup.setup_time.as_secs_f64() * 1e3,
        setup.shuffle_generations
    )
}

/// Formats `a/b` as a ratio with a `x` suffix (e.g. speedups).
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}

/// A minimal JSON value for machine-readable bench reports.
///
/// Object keys keep insertion order, so emitted files diff cleanly
/// between runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers serialize as).
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Self {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes with 2-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Round-trippable and compact: integers print bare.
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad);
                    Json::Str(k.clone()).render_into(out, indent + 1);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Self {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

/// Serializes the resilience counters of an object-store origin (per
/// rank, per tenant, or merged) for machine-readable reports.
pub fn resilience_json(stats: &ResilienceStats) -> Json {
    Json::obj([
        ("reads", Json::from(stats.reads)),
        ("retries", Json::from(stats.retries)),
        ("exhausted", Json::from(stats.exhausted)),
        ("hedges_fired", Json::from(stats.hedges_fired)),
        ("hedges_won", Json::from(stats.hedges_won)),
        ("deadline_misses", Json::from(stats.deadline_misses)),
        ("throttled", Json::from(stats.throttled)),
        (
            "breaker_open_rejections",
            Json::from(stats.breaker_open_rejections),
        ),
        ("breaker_to_open", Json::from(stats.breaker_to_open)),
        (
            "breaker_to_half_open",
            Json::from(stats.breaker_to_half_open),
        ),
        ("breaker_to_closed", Json::from(stats.breaker_to_closed)),
    ])
}

/// Serializes one tier's counters from a [`TierStack`] snapshot.
///
/// [`TierStack`]: nopfs_storage::TierStack
pub fn tier_stats_json(tier: &TierStats) -> Json {
    Json::obj([
        ("name", Json::from(tier.name.clone())),
        ("hits", Json::from(tier.hits)),
        ("misses", Json::from(tier.misses)),
        ("hit_rate", Json::Num(tier.hit_rate())),
        ("bytes_read", Json::from(tier.bytes_read)),
        ("fills", Json::from(tier.fills)),
        ("bytes_filled", Json::from(tier.bytes_filled)),
        ("promotions", Json::from(tier.promotions)),
        ("demotions", Json::from(tier.demotions)),
        ("evictions", Json::from(tier.evictions)),
        ("bytes_evicted", Json::from(tier.bytes_evicted)),
        ("capacity", tier.capacity.map_or(Json::Null, Json::from)),
        ("used", Json::from(tier.used)),
    ])
}

/// Where artifact `name` belongs: the workspace root, found by walking
/// up from the current directory to the `Cargo.lock` (benches run with
/// their package directory as CWD, examples with the workspace root —
/// both must land the same `BENCH_*.json` in the same place).
fn artifact_path(name: &str) -> std::path::PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join(name);
        }
        if !dir.pop() {
            return std::path::PathBuf::from(name);
        }
    }
}

/// Writes a JSON report named `name` at the workspace root and prints
/// where it went.
pub fn write_json(name: &str, value: &Json) -> std::io::Result<()> {
    let path = artifact_path(name);
    std::fs::write(&path, value.render())?;
    println!(
        "    [machine-readable report written to {}]",
        path.display()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_nested_structures() {
        let v = Json::obj([
            ("figure", Json::from("fig2")),
            ("count", Json::from(3u64)),
            ("ratio", Json::Num(1.5)),
            (
                "tenants",
                Json::Arr(vec![Json::obj([("name", Json::from("a"))])]),
            ),
            ("empty", Json::Arr(vec![])),
            ("none", Json::Null),
        ]);
        let s = v.render();
        assert!(s.contains("\"figure\": \"fig2\""));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"ratio\": 1.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.contains("\"none\": null"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn resilience_and_tier_stats_serialize_every_counter() {
        let res = ResilienceStats {
            reads: 10,
            retries: 3,
            hedges_fired: 2,
            hedges_won: 1,
            throttled: 4,
            breaker_to_open: 1,
            ..ResilienceStats::default()
        };
        let s = resilience_json(&res).render();
        assert!(s.contains("\"reads\": 10"));
        assert!(s.contains("\"hedges_won\": 1"));
        assert!(s.contains("\"breaker_to_open\": 1"));
        assert!(s.contains("\"exhausted\": 0"));

        let tier = TierStats {
            name: "ram".into(),
            hits: 3,
            misses: 1,
            bytes_read: 300,
            fills: 4,
            bytes_filled: 400,
            promotions: 2,
            demotions: 0,
            evictions: 1,
            bytes_evicted: 100,
            capacity: None,
            used: 300,
        };
        let t = tier_stats_json(&tier).render();
        assert!(t.contains("\"name\": \"ram\""));
        assert!(t.contains("\"hit_rate\": 0.75"));
        assert!(t.contains("\"capacity\": null"));
    }

    #[test]
    fn json_escapes_strings_and_non_finite() {
        let v = Json::Arr(vec![
            Json::Str("a\"b\\c\nd\u{1}".into()),
            Json::Num(f64::NAN),
            Json::Bool(true),
        ]);
        let s = v.render();
        assert!(s.contains(r#""a\"b\\c\nd\u0001""#));
        assert!(s.contains("null"));
        assert!(s.contains("true"));
    }
}
