//! Scaled reproductions of the paper's simulation scenarios (Fig. 8,
//! Fig. 9) and the runtime systems for the Sec. 7 experiments.
//!
//! Two calibration substitutions, both recorded in EXPERIMENTS.md:
//!
//! 1. **Saturating PFS curves.** The paper lists near-linear Lassen
//!    benchmark points for `t(γ)`; under those numbers alone the
//!    staging-buffer policy would never stall at N=4, yet the paper's
//!    own Fig. 8 shows it 25–30% over the lower bound. We therefore use
//!    PFS curves that saturate (the behaviour Sec. 5.1 describes:
//!    "t(γ)/γ is often constant or decreasing with many readers"),
//!    with the saturation level calibrated per scenario so the
//!    staging-buffer baseline lands at the paper's ≈1.3× — every other
//!    policy's placement is then *predicted*, not fitted.
//! 2. **Epoch counts / compute rates.** The paper omits `E` for Fig. 8;
//!    we choose the `(E, c)` pairs that reproduce the published lower
//!    bounds from the published dataset sizes.

use nopfs_datasets::DatasetProfile;
use nopfs_perfmodel::curve::ThroughputCurve;
use nopfs_perfmodel::presets::{fig8_small_cluster, saturating_pfs_curve, thrashing_pfs_curve};
use nopfs_perfmodel::SystemSpec;
use nopfs_simulator::Scenario;
use nopfs_util::units::MB;

/// One Fig. 8 subplot: a dataset, its calibrated run parameters, and
/// the paper's published lower bound for comparison.
pub struct Fig8Scenario {
    /// Subplot tag ("a".."f").
    pub tag: &'static str,
    /// Regime label as printed in the paper.
    pub regime: &'static str,
    /// The dataset profile (unscaled).
    pub profile: DatasetProfile,
    /// Epochs `E` (calibrated; see module docs).
    pub epochs: u64,
    /// Compute throughput `c`, MB/s (calibrated for e/f).
    pub compute_mbps: f64,
    /// Per-worker batch size.
    pub batch: usize,
    /// Workers `N`.
    pub workers: usize,
    /// PFS thrashing point: `(clients, aggregate MB/s)` at collapse.
    pub pfs_collapse: (f64, f64),
    /// Default count-scale factor for bench runs.
    pub default_scale: f64,
    /// The paper's published execution time for the lower bound, hours
    /// (seconds for MNIST — see `lower_bound_unit`).
    pub paper_lower_bound: f64,
    /// The paper's published NoPFS time, same unit.
    pub paper_nopfs: f64,
    /// The paper's published Naive time, same unit.
    pub paper_naive: f64,
    /// `"s"` or `"hrs"`.
    pub unit: &'static str,
}

/// The six Fig. 8 subplots with the paper's published reference values.
pub fn fig8_scenarios() -> Vec<Fig8Scenario> {
    vec![
        Fig8Scenario {
            tag: "a",
            regime: "S < d1",
            profile: DatasetProfile::mnist(),
            epochs: 5,
            compute_mbps: 64.0,
            batch: 32,
            workers: 4,
            pfs_collapse: (32.0, 272.0),
            default_scale: 1.0,
            paper_lower_bound: 0.73,
            paper_nopfs: 0.73,
            paper_naive: 1.24,
            unit: "s",
        },
        Fig8Scenario {
            tag: "b",
            regime: "d1 < S < D",
            profile: DatasetProfile::imagenet_1k(),
            epochs: 5,
            compute_mbps: 64.0,
            batch: 32,
            workers: 4,
            pfs_collapse: (32.0, 272.0),
            default_scale: 0.01,
            paper_lower_bound: 0.75,
            paper_nopfs: 0.79,
            paper_naive: 1.27,
            unit: "hrs",
        },
        Fig8Scenario {
            tag: "c",
            regime: "d1 < S < N*D",
            profile: DatasetProfile::openimages(),
            epochs: 5,
            compute_mbps: 64.0,
            batch: 32,
            workers: 4,
            pfs_collapse: (32.0, 272.0),
            default_scale: 0.01,
            paper_lower_bound: 2.78,
            paper_nopfs: 2.91,
            paper_naive: 4.72,
            unit: "hrs",
        },
        Fig8Scenario {
            tag: "d",
            regime: "D < S < N*D",
            profile: DatasetProfile::imagenet_22k(),
            // E=4: the 64-byte clipping of the sigma=0.2 size normal
            // inflates the mean sample size ~35% over the paper's mu,
            // so four epochs reproduce the published lower bound.
            epochs: 4,
            compute_mbps: 64.0,
            batch: 32,
            workers: 4,
            pfs_collapse: (32.0, 272.0),
            default_scale: 0.002,
            paper_lower_bound: 8.29,
            paper_nopfs: 8.71,
            paper_naive: 14.09,
            unit: "hrs",
        },
        Fig8Scenario {
            tag: "e",
            regime: "N*D < S",
            profile: DatasetProfile::cosmoflow(),
            epochs: 3,
            compute_mbps: 81.6,
            batch: 16,
            workers: 4,
            pfs_collapse: (32.0, 272.0),
            default_scale: 0.02,
            paper_lower_bound: 11.38,
            paper_nopfs: 11.95,
            paper_naive: 19.33,
            unit: "hrs",
        },
        Fig8Scenario {
            tag: "f",
            regime: "N*D < S (N=8)",
            profile: DatasetProfile::cosmoflow_512(),
            epochs: 2,
            compute_mbps: 200.0,
            batch: 1,
            workers: 8,
            pfs_collapse: (64.0, 1_363.0),
            default_scale: 0.2,
            paper_lower_bound: 3.48,
            paper_nopfs: 3.65,
            paper_naive: 7.30,
            unit: "hrs",
        },
    ]
}

impl Fig8Scenario {
    /// Builds the scaled simulator scenario. `extra_scale` multiplies
    /// the scenario's default count scale (the `NOPFS_BENCH_SCALE`
    /// hook); both sample counts and capacities shrink together, so the
    /// storage regime is preserved.
    ///
    /// Returns the scenario plus the count factor actually applied.
    pub fn build(&self, extra_scale: f64) -> (Scenario, f64) {
        let factor = (self.default_scale * extra_scale).min(1.0);
        let profile = self.profile.scaled(factor, 1.0);
        let mut system = fig8_small_cluster()
            .with_compute_mbps(self.compute_mbps, 200.0)
            .with_workers(self.workers);
        scale_capacities(&mut system, factor);
        system.pfs_read = thrashing_pfs_curve(self.pfs_collapse.0, self.pfs_collapse.1 * MB);
        let sizes = profile.sizes();
        let scenario = Scenario::new(
            profile.name.clone(),
            system,
            sizes,
            self.epochs,
            self.batch,
            0xF18_0000 + self.tag.as_bytes()[0] as u64,
        );
        (scenario, factor)
    }

    /// Converts a simulated (scaled) execution time back to the paper's
    /// unit for side-by-side reporting: times scale linearly with the
    /// count factor.
    pub fn to_paper_units(&self, sim_seconds: f64, factor: f64) -> f64 {
        let full = sim_seconds / factor;
        match self.unit {
            "hrs" => full / 3_600.0,
            _ => full,
        }
    }
}

/// Scales every capacity of a system (staging + classes) by `factor`.
pub fn scale_capacities(system: &mut SystemSpec, factor: f64) {
    system.staging.capacity = ((system.staging.capacity as f64 * factor) as u64).max(4_096);
    for class in &mut system.classes {
        class.capacity = ((class.capacity as f64 * factor) as u64).max(1);
    }
}

/// The Fig. 9 base scenario: ImageNet-22k with 5× compute and
/// preprocessing throughput ("representative of future machine learning
/// accelerators").
pub fn fig9_base(extra_scale: f64) -> (Scenario, f64) {
    let factor = (0.002 * extra_scale).min(1.0);
    let profile = DatasetProfile::imagenet_22k().scaled(factor, 1.0);
    let mut system = fig8_small_cluster().with_compute_mbps(5.0 * 64.0, 5.0 * 200.0);
    scale_capacities(&mut system, factor);
    system.pfs_read = thrashing_pfs_curve(32.0, 846.0 * MB);
    let sizes = profile.sizes();
    let scenario = Scenario::new(profile.name.clone(), system, sizes, 3, 32, 0xF19_0001);
    (scenario, factor)
}

/// Which runtime system a Sec. 7 experiment models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Piz-Daint-like: RAM only, no local SSD.
    PizDaint,
    /// Lassen-like: RAM + SSD per rank.
    Lassen,
}

impl SystemKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::PizDaint => "Piz Daint",
            SystemKind::Lassen => "Lassen",
        }
    }
}

/// Builds a scaled runtime system: capacities shrink by `cap_scale`
/// while rates stay at face value, and the PFS saturates at
/// `pfs_sat_mbps` so contention sets in as workers are added — the
/// effect behind the paper's Figs. 10–15 scaling curves.
pub fn runtime_system(
    kind: SystemKind,
    workers: usize,
    cap_scale: f64,
    pfs_sat_mbps: f64,
) -> SystemSpec {
    let mut system = match kind {
        SystemKind::PizDaint => nopfs_perfmodel::presets::piz_daint_like(),
        SystemKind::Lassen => nopfs_perfmodel::presets::lassen_like(),
    };
    system.workers = workers;
    scale_capacities(&mut system, cap_scale);
    system.pfs_read = saturating_pfs_curve(pfs_sat_mbps * MB, 8.0);
    // Runtime experiments use fewer staging threads than the paper's
    // HPC ranks so thread counts stay sane at 8-16 in-process workers.
    system.staging.threads = 4;
    system.validate();
    system
}

/// A deliberately fast PFS curve for experiments that should not be
/// PFS-bound (unit-style benches).
pub fn uncontended_pfs() -> ThroughputCurve {
    ThroughputCurve::flat(1e12)
}
