//! Scaled reproductions of the paper's simulation scenarios (Fig. 8,
//! Fig. 9) and the runtime systems for the Sec. 7 experiments.
//!
//! Two calibration substitutions, both recorded in EXPERIMENTS.md:
//!
//! 1. **Saturating PFS curves.** The paper lists near-linear Lassen
//!    benchmark points for `t(γ)`; under those numbers alone the
//!    staging-buffer policy would never stall at N=4, yet the paper's
//!    own Fig. 8 shows it 25–30% over the lower bound. We therefore use
//!    PFS curves that saturate (the behaviour Sec. 5.1 describes:
//!    "t(γ)/γ is often constant or decreasing with many readers"),
//!    with the saturation level calibrated per scenario so the
//!    staging-buffer baseline lands at the paper's ≈1.3× — every other
//!    policy's placement is then *predicted*, not fitted.
//! 2. **Epoch counts / compute rates.** The paper omits `E` for Fig. 8;
//!    we choose the `(E, c)` pairs that reproduce the published lower
//!    bounds from the published dataset sizes.

use nopfs_datasets::DatasetProfile;
use nopfs_perfmodel::curve::ThroughputCurve;
use nopfs_perfmodel::presets::{fig8_small_cluster, saturating_pfs_curve, thrashing_pfs_curve};
use nopfs_perfmodel::SystemSpec;
use nopfs_simulator::Scenario;
use nopfs_util::units::MB;

/// One Fig. 8 subplot: a dataset, its calibrated run parameters, and
/// the paper's published lower bound for comparison.
pub struct Fig8Scenario {
    /// Subplot tag ("a".."f").
    pub tag: &'static str,
    /// Regime label as printed in the paper.
    pub regime: &'static str,
    /// The dataset profile (unscaled).
    pub profile: DatasetProfile,
    /// Epochs `E` (calibrated; see module docs).
    pub epochs: u64,
    /// Compute throughput `c`, MB/s (calibrated for e/f).
    pub compute_mbps: f64,
    /// Per-worker batch size.
    pub batch: usize,
    /// Workers `N`.
    pub workers: usize,
    /// PFS thrashing point: `(clients, aggregate MB/s)` at collapse.
    pub pfs_collapse: (f64, f64),
    /// Default count-scale factor for bench runs.
    pub default_scale: f64,
    /// The paper's published execution time for the lower bound, hours
    /// (seconds for MNIST — see `lower_bound_unit`).
    pub paper_lower_bound: f64,
    /// The paper's published NoPFS time, same unit.
    pub paper_nopfs: f64,
    /// The paper's published Naive time, same unit.
    pub paper_naive: f64,
    /// `"s"` or `"hrs"`.
    pub unit: &'static str,
}

/// The six Fig. 8 subplots with the paper's published reference values.
pub fn fig8_scenarios() -> Vec<Fig8Scenario> {
    vec![
        Fig8Scenario {
            tag: "a",
            regime: "S < d1",
            profile: DatasetProfile::mnist(),
            epochs: 5,
            compute_mbps: 64.0,
            batch: 32,
            workers: 4,
            pfs_collapse: (32.0, 272.0),
            default_scale: 1.0,
            paper_lower_bound: 0.73,
            paper_nopfs: 0.73,
            paper_naive: 1.24,
            unit: "s",
        },
        Fig8Scenario {
            tag: "b",
            regime: "d1 < S < D",
            profile: DatasetProfile::imagenet_1k(),
            epochs: 5,
            compute_mbps: 64.0,
            batch: 32,
            workers: 4,
            pfs_collapse: (32.0, 272.0),
            default_scale: 0.01,
            paper_lower_bound: 0.75,
            paper_nopfs: 0.79,
            paper_naive: 1.27,
            unit: "hrs",
        },
        Fig8Scenario {
            tag: "c",
            regime: "d1 < S < N*D",
            profile: DatasetProfile::openimages(),
            epochs: 5,
            compute_mbps: 64.0,
            batch: 32,
            workers: 4,
            pfs_collapse: (32.0, 272.0),
            default_scale: 0.01,
            paper_lower_bound: 2.78,
            paper_nopfs: 2.91,
            paper_naive: 4.72,
            unit: "hrs",
        },
        Fig8Scenario {
            tag: "d",
            regime: "D < S < N*D",
            profile: DatasetProfile::imagenet_22k(),
            // E=4: the 64-byte clipping of the sigma=0.2 size normal
            // inflates the mean sample size ~35% over the paper's mu,
            // so four epochs reproduce the published lower bound.
            epochs: 4,
            compute_mbps: 64.0,
            batch: 32,
            workers: 4,
            pfs_collapse: (32.0, 272.0),
            default_scale: 0.002,
            paper_lower_bound: 8.29,
            paper_nopfs: 8.71,
            paper_naive: 14.09,
            unit: "hrs",
        },
        Fig8Scenario {
            tag: "e",
            regime: "N*D < S",
            profile: DatasetProfile::cosmoflow(),
            epochs: 3,
            compute_mbps: 81.6,
            batch: 16,
            workers: 4,
            pfs_collapse: (32.0, 272.0),
            default_scale: 0.02,
            paper_lower_bound: 11.38,
            paper_nopfs: 11.95,
            paper_naive: 19.33,
            unit: "hrs",
        },
        Fig8Scenario {
            tag: "f",
            regime: "N*D < S (N=8)",
            profile: DatasetProfile::cosmoflow_512(),
            epochs: 2,
            compute_mbps: 200.0,
            batch: 1,
            workers: 8,
            pfs_collapse: (64.0, 1_363.0),
            default_scale: 0.2,
            paper_lower_bound: 3.48,
            paper_nopfs: 3.65,
            paper_naive: 7.30,
            unit: "hrs",
        },
    ]
}

impl Fig8Scenario {
    /// Builds the scaled simulator scenario. `extra_scale` multiplies
    /// the scenario's default count scale (the `NOPFS_BENCH_SCALE`
    /// hook); both sample counts and capacities shrink together, so the
    /// storage regime is preserved.
    ///
    /// Returns the scenario plus the count factor actually applied.
    pub fn build(&self, extra_scale: f64) -> (Scenario, f64) {
        let factor = (self.default_scale * extra_scale).min(1.0);
        let profile = self.profile.scaled(factor, 1.0);
        let mut system = fig8_small_cluster()
            .with_compute_mbps(self.compute_mbps, 200.0)
            .with_workers(self.workers);
        scale_capacities(&mut system, factor);
        system.pfs_read = thrashing_pfs_curve(self.pfs_collapse.0, self.pfs_collapse.1 * MB);
        let sizes = profile.sizes();
        let scenario = Scenario::new(
            profile.name.clone(),
            system,
            sizes,
            self.epochs,
            self.batch,
            0xF18_0000 + self.tag.as_bytes()[0] as u64,
        );
        (scenario, factor)
    }

    /// Converts a simulated (scaled) execution time back to the paper's
    /// unit for side-by-side reporting: times scale linearly with the
    /// count factor.
    pub fn to_paper_units(&self, sim_seconds: f64, factor: f64) -> f64 {
        let full = sim_seconds / factor;
        match self.unit {
            "hrs" => full / 3_600.0,
            _ => full,
        }
    }
}

/// Scales every capacity of a system (staging + classes) by `factor`.
pub fn scale_capacities(system: &mut SystemSpec, factor: f64) {
    system.staging.capacity = ((system.staging.capacity as f64 * factor) as u64).max(4_096);
    for class in &mut system.classes {
        class.capacity = ((class.capacity as f64 * factor) as u64).max(1);
    }
}

/// The Fig. 9 base scenario: ImageNet-22k with 5× compute and
/// preprocessing throughput ("representative of future machine learning
/// accelerators").
pub fn fig9_base(extra_scale: f64) -> (Scenario, f64) {
    let factor = (0.002 * extra_scale).min(1.0);
    let profile = DatasetProfile::imagenet_22k().scaled(factor, 1.0);
    let mut system = fig8_small_cluster().with_compute_mbps(5.0 * 64.0, 5.0 * 200.0);
    scale_capacities(&mut system, factor);
    system.pfs_read = thrashing_pfs_curve(32.0, 846.0 * MB);
    let sizes = profile.sizes();
    let scenario = Scenario::new(profile.name.clone(), system, sizes, 3, 32, 0xF19_0001);
    (scenario, factor)
}

/// Which runtime system a Sec. 7 experiment models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Piz-Daint-like: RAM only, no local SSD.
    PizDaint,
    /// Lassen-like: RAM + SSD per rank.
    Lassen,
}

impl SystemKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::PizDaint => "Piz Daint",
            SystemKind::Lassen => "Lassen",
        }
    }
}

/// Builds a scaled runtime system: capacities shrink by `cap_scale`
/// while rates stay at face value, and the PFS saturates at
/// `pfs_sat_mbps` so contention sets in as workers are added — the
/// effect behind the paper's Figs. 10–15 scaling curves.
pub fn runtime_system(
    kind: SystemKind,
    workers: usize,
    cap_scale: f64,
    pfs_sat_mbps: f64,
) -> SystemSpec {
    let mut system = match kind {
        SystemKind::PizDaint => nopfs_perfmodel::presets::piz_daint_like(),
        SystemKind::Lassen => nopfs_perfmodel::presets::lassen_like(),
    };
    system.workers = workers;
    scale_capacities(&mut system, cap_scale);
    system.pfs_read = saturating_pfs_curve(pfs_sat_mbps * MB, 8.0);
    // Runtime experiments use fewer staging threads than the paper's
    // HPC ranks so thread counts stay sane at 8-16 in-process workers.
    system.staging.threads = 4;
    system.validate();
    system
}

/// A deliberately fast PFS curve for experiments that should not be
/// PFS-bound (unit-style benches).
pub fn uncontended_pfs() -> ThroughputCurve {
    ThroughputCurve::flat(1e12)
}

/// The Fig. 2 interference experiment: co-scheduled tenants sharing one
/// PFS whose `t(γ)` saturates around two clients, so any second job's
/// readers push every job past the knee. One definition feeds both the
/// thread runtime (`nopfs_cluster`) and the simulator counterpart
/// (`nopfs_simulator::cluster`), keeping the two reproductions of the
/// scenario directly comparable.
pub mod fig2 {
    use super::*;
    use nopfs_cluster::{ClusterSpec, TenantSpec};
    use nopfs_policy::PolicyId;
    use nopfs_simulator::SimTenant;
    use nopfs_util::timing::TimeScale;

    /// Mean bytes per sample.
    pub const SAMPLE_BYTES: f64 = 20_000.0;
    /// Workers per tenant.
    pub const WORKERS: usize = 2;
    /// Per-worker batch size.
    pub const BATCH: usize = 4;
    /// Training epochs per tenant.
    pub const EPOCHS: u64 = 3;

    /// The shared `t(γ)` curve: 40 MB/s aggregate from two clients on,
    /// so a solo two-worker job sits exactly at the knee and any
    /// co-tenant pushes everyone past it.
    pub fn curve() -> ThroughputCurve {
        ThroughputCurve::from_points(&[(1.0, 30.0 * MB), (2.0, 40.0 * MB), (16.0, 41.0 * MB)])
    }

    /// Samples per tenant at `extra_scale` (kept divisible by the
    /// global batch so `drop_last` trims nothing).
    pub fn samples(extra_scale: f64) -> u64 {
        let global_batch = (WORKERS * BATCH) as u64;
        (((296.0 * extra_scale) as u64) / global_batch).max(1) * global_batch
    }

    /// A tenant's system: 2 workers, caches ample for its dataset, a
    /// modest staging buffer.
    pub fn tenant_system() -> SystemSpec {
        let mut sys = fig8_small_cluster().with_compute_mbps(64.0, 200.0);
        sys.workers = WORKERS;
        sys.staging.capacity = 2_000_000;
        sys.staging.threads = 2;
        sys.classes[0].capacity = 30_000_000;
        sys.classes[1].capacity = 60_000_000;
        sys
    }

    /// The tenant line-up: NoPFS plus the PFS-bound baselines the
    /// paper's Fig. 2 argument is about (two naive tenants, so the
    /// co-scheduled reader count lands well past the curve's knee;
    /// `StagingBuffer` is the PyTorch-double-buffering policy).
    pub fn policies() -> Vec<(&'static str, PolicyId)> {
        vec![
            ("nopfs", PolicyId::NoPfs),
            ("naive-1", PolicyId::Naive),
            ("naive-2", PolicyId::Naive),
            ("pytorch", PolicyId::StagingBuffer),
        ]
    }

    /// The thread-runtime cluster: the [`policies`] tenants co-scheduled
    /// on one shared PFS. The time scale keeps every paced wait above the
    /// sleep threshold so CPU sharing on small machines does not
    /// pollute the PFS-contention measurement.
    pub fn cluster_spec(extra_scale: f64) -> ClusterSpec {
        let mut spec = ClusterSpec::new(curve(), TimeScale::new(0.5));
        for (i, (name, policy)) in policies().into_iter().enumerate() {
            let profile = nopfs_datasets::DatasetProfile::new(
                name,
                samples(extra_scale),
                SAMPLE_BYTES,
                0.0,
                4,
                0xF12_0000 + i as u64,
            );
            spec = spec.tenant(TenantSpec::new(
                name,
                policy,
                tenant_system(),
                profile,
                EPOCHS,
                BATCH,
                0xF12_1000 + i as u64,
            ));
        }
        spec
    }

    /// One simulator tenant mirroring the runtime tenants' shape.
    pub fn sim_scenario(name: &str, seed: u64, extra_scale: f64) -> nopfs_simulator::Scenario {
        let mut sys = tenant_system();
        sys.pfs_read = curve();
        nopfs_simulator::Scenario::new(
            name,
            sys,
            vec![SAMPLE_BYTES as u64; samples(extra_scale) as usize],
            EPOCHS,
            BATCH,
            seed,
        )
    }

    /// A simulated cluster of `k` tenants all running `policy`.
    pub fn sim_uniform_cluster(policy: PolicyId, k: usize, extra_scale: f64) -> Vec<SimTenant> {
        (0..k)
            .map(|i| {
                SimTenant::new(
                    sim_scenario(&format!("tenant-{i}"), 0xF12_2000 + i as u64, extra_scale),
                    policy,
                )
            })
            .collect()
    }

    /// Per-tenant simulator slowdowns for the mixed cluster the thread
    /// runtime co-schedules: each tenant's simulated co-run execution
    /// time over its simulated solo time. The simulation is built from
    /// the spec itself — each tenant's own dataset, effective system
    /// (shared PFS curve applied), epochs, batch, seed, policy, and
    /// stagger — so it holds for any `ClusterSpec`, not just
    /// [`cluster_spec`]'s.
    pub fn sim_mixed_slowdowns(spec: &ClusterSpec) -> Vec<f64> {
        let tenants: Vec<SimTenant> = spec
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let scenario = nopfs_simulator::Scenario::new(
                    t.name.clone(),
                    spec.tenant_system(i),
                    t.profile.sizes(),
                    t.epochs,
                    t.batch,
                    t.seed,
                );
                // One `PolicyId` names the policy in both harnesses —
                // no mapping table since the policy-layer refactor.
                SimTenant::new(scenario, t.policy).starting_at(t.start_delay)
            })
            .collect();
        let results = nopfs_simulator::run_cluster(&tenants).expect("simulated cluster");
        tenants
            .iter()
            .zip(&results)
            .map(|(t, r)| {
                let solo = nopfs_simulator::run(&t.scenario, t.policy)
                    .expect("solo simulation")
                    .execution_time;
                r.execution_time / solo
            })
            .collect()
    }

    /// One row of the uniform-policy K-sweep.
    pub struct SimSweep {
        /// The policy every tenant of the swept cluster runs.
        pub policy: PolicyId,
        /// Solo execution time, model seconds.
        pub solo_s: f64,
        /// `(K, worst per-tenant slowdown)` per swept tenant count.
        pub per_k: Vec<(usize, f64)>,
    }

    /// Sweeps uniform-policy clusters over `ks` tenant counts for the
    /// three Fig. 2 policies.
    pub fn sim_sweep(extra_scale: f64, ks: &[usize]) -> Vec<SimSweep> {
        [PolicyId::NoPfs, PolicyId::Naive, PolicyId::StagingBuffer]
            .into_iter()
            .map(|policy| {
                let solo =
                    nopfs_simulator::run(&sim_scenario("solo", 0xF12_2000, extra_scale), policy)
                        .expect("solo simulation")
                        .execution_time;
                let per_k = ks
                    .iter()
                    .map(|&k| {
                        let results = nopfs_simulator::run_cluster(&sim_uniform_cluster(
                            policy,
                            k,
                            extra_scale,
                        ))
                        .expect("cluster simulation");
                        let worst = results
                            .iter()
                            .map(|r| r.execution_time / solo)
                            .fold(0.0, f64::max);
                        (k, worst)
                    })
                    .collect();
                SimSweep {
                    policy,
                    solo_s: solo,
                    per_k,
                }
            })
            .collect()
    }

    /// The canonical `BENCH_fig2_interference.json` document. Both the
    /// `fig2_interference` bench and `examples/interference.rs` build
    /// it through this one function, so the artifact's schema never
    /// depends on which producer ran last.
    pub fn json_doc(
        source: &str,
        extra_scale: f64,
        cluster: &nopfs_cluster::ClusterReport,
        sim_slowdowns: &[f64],
        sweeps: &[SimSweep],
    ) -> crate::report::Json {
        use crate::report::Json;
        let tenant_rows: Vec<Json> = cluster
            .tenants
            .iter()
            .zip(sim_slowdowns)
            .map(|(t, &sim)| {
                Json::obj([
                    ("name", Json::from(t.name.clone())),
                    ("policy", Json::from(t.policy.name())),
                    ("solo_epoch_s", Json::Num(t.solo_epoch_time.unwrap_or(0.0))),
                    ("co_epoch_s", Json::Num(t.steady_epoch_time())),
                    ("runtime_slowdown", Json::Num(t.slowdown.unwrap_or(0.0))),
                    ("sim_slowdown", Json::Num(sim)),
                    ("pfs_reads", Json::from(t.pfs_reads())),
                    ("cache_fraction", Json::Num(t.cache_fraction())),
                    ("stall_s", Json::Num(t.stall_time)),
                ])
            })
            .collect();
        let sweep_rows: Vec<Json> = sweeps
            .iter()
            .map(|s| {
                Json::obj([
                    ("policy", Json::from(s.policy.name())),
                    ("solo_s", Json::Num(s.solo_s)),
                    (
                        "slowdowns",
                        Json::Arr(
                            s.per_k
                                .iter()
                                .map(|&(k, worst)| {
                                    Json::obj([
                                        ("k", Json::from(k as u64)),
                                        ("worst_slowdown", Json::Num(worst)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("figure", Json::from("fig2_interference")),
            ("source", Json::from(source)),
            ("bench_scale", Json::Num(extra_scale)),
            ("samples_per_tenant", Json::from(samples(extra_scale))),
            ("runtime_tenants", Json::Arr(tenant_rows)),
            ("sim_sweep", Json::Arr(sweep_rows)),
        ])
    }
}

/// The cloud-origin failure-domain experiment (`fig_cloud`): one
/// scenario family shared by the bench and `examples/cloud.rs`, so the
/// committed artifact and the CI smoke run exercise the same economics.
///
/// Three reproductions of the same claim:
/// 1. **Simulator sweep** — request parallelism × brownout severity,
///    hardened (deadline + hedge + breaker) vs unbounded naive origin
///    clients on identical disturbance seeds.
/// 2. **Thread runtime** — an [`nopfs_core::ElasticJob`] with a
///    [`nopfs_policy::CloudFaults`] clause, proving the disturbed global stream is
///    bit-identical to the fault-free run.
/// 3. **Cluster** — a cloud tenant co-scheduled with a steady one,
///    surfacing per-tenant `ResilienceStats`/`TierStats`.
pub mod fig_cloud {
    use super::*;
    use nopfs_cluster::{ClusterSpec, TenantSpec};
    use nopfs_policy::{CloudFaults, FaultPlan, PolicyId};
    use nopfs_simulator::{CloudResilience, CloudSpec, Scenario};
    use nopfs_util::timing::TimeScale;

    /// Object-store per-request latency floor, model seconds.
    pub const FLOOR: f64 = 0.002;
    /// The headline bound: the hardened client's execution time under a
    /// brownout stays within this factor of its fault-free run.
    pub const BOUND: f64 = 1.5;
    /// Per-worker batch size.
    pub const BATCH: usize = 8;
    /// Training epochs.
    pub const EPOCHS: u64 = 3;
    /// Base sample payload, bytes.
    pub const SAMPLE_BYTES: u64 = 100_000;

    /// Brownout severities swept by the bench: label, latency factor,
    /// and extra throttle probability inside the window.
    pub const SEVERITIES: [(&str, f64, f64); 3] = [
        ("mild", 1.5, 0.2),
        ("moderate", 2.0, 0.3),
        ("severe", 3.0, 0.4),
    ];

    /// Samples at `extra_scale` (kept divisible by the largest swept
    /// global batch so every parallelism sees identical epochs).
    pub fn samples(extra_scale: f64) -> u64 {
        let global = (8 * BATCH) as u64;
        (((2_000.0 * extra_scale) as u64) / global).max(1) * global
    }

    /// The simulator scenario at a given request parallelism: the
    /// object store's aggregate throughput grows with request
    /// parallelism up to a 16-client knee at 400 MB/s — below the
    /// largest swept fleet's aggregate demand, so parallelism is
    /// priced without collapsing the fault-free baseline into a
    /// congestion regime where jittered retries would *help*.
    /// Per-worker caches hold the dataset after the cold epoch.
    pub fn sim_scenario(workers: usize, extra_scale: f64) -> Scenario {
        let mut sys = fig8_small_cluster();
        sys.workers = workers;
        sys.pfs_read = saturating_pfs_curve(400.0 * MB, 16.0);
        let cap = extra_scale.max(1.0);
        sys.classes[0].capacity = (60_000_000.0 * cap) as u64;
        sys.classes[1].capacity = (200_000_000.0 * cap) as u64;
        sys.staging.capacity = (16_000_000.0 * cap) as u64;
        let sizes = vec![SAMPLE_BYTES; samples(extra_scale) as usize];
        Scenario::new(
            format!("cloud-n{workers}"),
            sys,
            sizes,
            EPOCHS,
            BATCH,
            0xC10D_0001,
        )
    }

    /// The fault-free reference: same seed, nothing ever fires.
    pub fn quiet() -> CloudFaults {
        CloudFaults::none(0xC10D_5EED)
    }

    /// The ambient disturbance outside brownout windows: 4% of
    /// requests draw a 30x tail-latency spike (the hedged client's
    /// structural advantage — a second request almost always dodges
    /// the tail), throttle bursts run up to 6 deep with a
    /// `retry_after` hint of one latency floor.
    pub fn ambient() -> CloudFaults {
        CloudFaults {
            spike_rate: 0.04,
            spike_factor: 30.0,
            throttle_burst: 6,
            retry_after: FLOOR,
            ..CloudFaults::none(0xC10D_5EED)
        }
    }

    /// [`ambient`] plus a brownout window over the first 30% of
    /// `quiet_time` — the cold-cache epoch, when origin traffic peaks
    /// and a degraded origin hurts the most.
    pub fn storm(quiet_time: f64, latency_factor: f64, extra_throttle: f64) -> CloudFaults {
        ambient().brownout(0.0, 0.3 * quiet_time, latency_factor, extra_throttle)
    }

    /// Routes `scenario`'s origin through the analytic object store
    /// with the given faults and client resilience.
    pub fn with_cloud(scenario: &Scenario, faults: CloudFaults, res: CloudResilience) -> Scenario {
        let curve = scenario.system.pfs_read.clone();
        scenario
            .clone()
            .with_cloud(CloudSpec::new(FLOOR, curve, faults, res))
    }

    /// The hardened client under test.
    pub fn hardened() -> CloudResilience {
        CloudResilience::hardened(FLOOR)
    }

    /// The unbounded naive client: retries forever on a bare backoff,
    /// no deadline, no hedge, no breaker.
    pub fn naive() -> CloudResilience {
        CloudResilience::naive(FLOOR / 4.0)
    }

    /// The runtime fault plan for the elastic stream-identity proof:
    /// cloud disturbances layered over a mid-epoch crash, so the claim
    /// covers recovery *and* origin degradation at once.
    pub fn runtime_plan() -> FaultPlan {
        let cloud = CloudFaults {
            spike_rate: 0.05,
            spike_factor: 6.0,
            throttle_rate: 0.08,
            throttle_burst: 2,
            retry_after: 1e-4,
            ..CloudFaults::none(0xC10D_0B10)
        }
        .brownout(0.0, 1e12, 3.0, 0.2);
        FaultPlan::fault_free().crash(0, 2, 1).with_cloud(cloud)
    }

    /// The co-scheduled cluster: a cloud-origin NoPFS tenant next to a
    /// steady naive tenant on one shared (fast) PFS, small enough for
    /// CI but large enough to exercise every resilience counter.
    pub fn cluster_spec() -> ClusterSpec {
        let mut sys = fig8_small_cluster();
        sys.workers = 2;
        sys.staging.capacity = 2_000_000;
        sys.staging.threads = 2;
        sys.classes[0].capacity = 30_000_000;
        sys.classes[1].capacity = 60_000_000;
        let profile = |name: &str, seed: u64| {
            nopfs_datasets::DatasetProfile::new(name, 60, 20_000.0, 0.0, 4, seed)
        };
        let cloud = CloudFaults {
            spike_rate: 0.05,
            spike_factor: 4.0,
            throttle_rate: 0.1,
            throttle_burst: 2,
            retry_after: 1e-4,
            ..CloudFaults::none(0xC10D_C105)
        };
        ClusterSpec::new(ThroughputCurve::flat(1e12), TimeScale::new(1e-6))
            .tenant(
                TenantSpec::new(
                    "cloudy",
                    PolicyId::NoPfs,
                    sys.clone(),
                    profile("cloudy", 0xC1),
                    2,
                    4,
                    0xC2,
                )
                .with_fault_plan(FaultPlan::fault_free().with_cloud(cloud)),
            )
            .tenant(TenantSpec::new(
                "steady",
                PolicyId::Naive,
                sys,
                profile("steady", 0xC3),
                2,
                4,
                0xC4,
            ))
    }
}
