//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every figure and table in the paper's evaluation has a bench target
//! under `benches/` (run `cargo bench -p nopfs-bench --bench <name>`);
//! this library holds what they share: scaled scenario builders
//! ([`scenarios`]), the runtime experiment runner driving real loaders
//! on the synthetic substrates ([`runtime`]), and table printing
//! ([`report`]).
//!
//! Scaling: experiments run at laptop scale by multiplying sample
//! counts *and* storage capacities by the same factor, which preserves
//! the paper's storage regimes (`S` vs `d_1`, `D`, `N·D`) and therefore
//! the relative behaviour of the policies. Set `NOPFS_BENCH_SCALE`
//! (default `1.0`) to grow or shrink every experiment together, e.g.
//! `NOPFS_BENCH_SCALE=10 cargo bench -p nopfs-bench --bench
//! fig8_simulation` for a 10x larger run.

pub mod report;
pub mod runtime;
pub mod scenarios;

/// Reads an `f64` environment knob with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` environment knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The global bench scale factor (`NOPFS_BENCH_SCALE`, default 1).
pub fn bench_scale() -> f64 {
    env_f64("NOPFS_BENCH_SCALE", 1.0)
}
