//! The runtime experiment runner: drives real loaders (NoPFS and the
//! baselines) through the timed training loop on the synthetic
//! substrates, and aggregates the numbers the Sec. 7 figures report.

use nopfs_baselines::{
    registry, DataLoader, DoubleBufferRunner, LbannRunner, NaiveRunner, NoIoRunner,
};
use nopfs_core::stats::{SetupStats, WorkerStats};
use nopfs_core::{Job, JobConfig};
use nopfs_datasets::DatasetProfile;
use nopfs_net::{cluster, Endpoint, NetConfig};
use nopfs_perfmodel::SystemSpec;
use nopfs_pfs::Pfs;
use nopfs_policy::{PolicyId, Unsupported};
use nopfs_train::{run_training_loop, RunMetrics, TrainLoopConfig};
use nopfs_util::stats::Summary;
use nopfs_util::timing::TimeScale;
use parking_lot::Mutex;
use std::sync::Arc;

/// The loader policies the runtime experiments compare (the paper's
/// Sec. 7 frameworks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimePolicy {
    /// Synthetic in-RAM data: the "No I/O" lower bound.
    NoIo,
    /// PyTorch's built-in double-buffering `DataLoader`.
    PyTorch,
    /// DALI: double buffering with GPU-offloaded preprocessing.
    Dali,
    /// The LBANN data store (dynamic mode).
    Lbann,
    /// NoPFS.
    NoPfs,
    /// Synchronous PFS reads (reference only; not in the paper's
    /// runtime figures).
    Naive,
}

impl RuntimePolicy {
    /// Figure label.
    pub fn name(&self) -> &'static str {
        match self {
            RuntimePolicy::NoIo => "No I/O",
            RuntimePolicy::PyTorch => "PyTorch",
            RuntimePolicy::Dali => "PyTorch+DALI",
            RuntimePolicy::Lbann => "LBANN",
            RuntimePolicy::NoPfs => "NoPFS",
            RuntimePolicy::Naive => "Naive",
        }
    }
}

/// One runtime experiment configuration.
#[derive(Clone)]
pub struct Experiment {
    /// The modelled system (includes worker count).
    pub system: SystemSpec,
    /// The dataset (already scaled).
    pub profile: DatasetProfile,
    /// Training epochs.
    pub epochs: u64,
    /// Per-worker batch size.
    pub batch: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Model-to-wall mapping.
    pub scale: TimeScale,
    /// Compute throughput `c`, model bytes/s.
    pub compute: f64,
    /// Emulated gradient elements per allreduce.
    pub grad_elems: usize,
}

/// Aggregated outcome of one `(policy, experiment)` run.
pub struct PolicyRun {
    /// Which policy ran.
    pub policy: RuntimePolicy,
    /// Per-worker metrics.
    pub per_worker: Vec<RunMetrics>,
    /// Per-epoch times: max across workers (the bulk-synchronous epoch
    /// time), model seconds.
    pub epoch_times: Vec<f64>,
    /// Clairvoyant setup statistics (populated for NoPFS, whose `Job`
    /// tracks its single-pass precomputation; `None` for baselines).
    pub setup: Option<SetupStats>,
}

impl PolicyRun {
    /// Median epoch time excluding epoch 0 (the figures' convention).
    pub fn median_epoch_time(&self) -> f64 {
        median_excluding_warmup(&self.epoch_times)
    }

    /// Pooled batch times across workers, optionally excluding epoch 0.
    pub fn batch_summary(&self, skip_first_epoch: bool) -> Summary {
        let mut all = Vec::new();
        for m in &self.per_worker {
            if skip_first_epoch {
                all.extend_from_slice(m.batches_after_warmup());
            } else {
                all.extend_from_slice(&m.batch_times);
            }
        }
        if all.is_empty() {
            all.push(0.0);
        }
        Summary::new(&all)
    }

    /// Batch times of epoch 0 only (Fig. 11).
    pub fn first_epoch_batches(&self) -> Summary {
        let mut all = Vec::new();
        for m in &self.per_worker {
            if !m.batches_per_epoch.is_empty() {
                all.extend_from_slice(m.epoch_batches(0));
            }
        }
        if all.is_empty() {
            all.push(0.0);
        }
        Summary::new(&all)
    }

    /// Cluster-merged loader statistics.
    pub fn merged_stats(&self) -> WorkerStats {
        RunMetrics::merged_stats(&self.per_worker)
    }
}

impl Experiment {
    /// The scaled ImageNet-1k runtime experiment behind Figs. 10–13:
    /// dataset and capacities scaled together so the paper's caching
    /// regimes survive, PFS saturating at 256 MB/s so contention sets
    /// in around four workers.
    pub fn imagenet(kind: crate::scenarios::SystemKind, workers: usize) -> Self {
        use crate::scenarios::{runtime_system, SystemKind};
        let cap_scale = match kind {
            SystemKind::PizDaint => 1.0 / 2_000.0,
            SystemKind::Lassen => 1.0 / 500.0,
        };
        Self {
            system: runtime_system(kind, workers, cap_scale, 192.0),
            profile: DatasetProfile::imagenet_1k().scaled(1.0 / 2_000.0, 1.0),
            epochs: 4,
            batch: 8,
            seed: 0xF1_6A,
            scale: TimeScale::new(1.0),
            compute: 64.0e6,
            grad_elems: 256,
        }
    }

    /// The scaled ImageNet-22k experiment (Fig. 14): many more samples
    /// relative to RAM, so the SSD tier carries the caching.
    pub fn imagenet_22k(workers: usize) -> Self {
        use crate::scenarios::{runtime_system, SystemKind};
        Self {
            system: runtime_system(SystemKind::Lassen, workers, 1.0 / 10_000.0, 192.0),
            profile: DatasetProfile::imagenet_22k().scaled(1.0 / 20_000.0, 1.0),
            epochs: 3,
            batch: 8,
            seed: 0xF1_6B,
            scale: TimeScale::new(1.0),
            compute: 64.0e6,
            grad_elems: 256,
        }
    }

    /// The scaled CosmoFlow experiment (Fig. 15): few large fixed-size
    /// samples; the dataset exceeds cluster storage at small worker
    /// counts.
    pub fn cosmoflow(workers: usize) -> Self {
        use crate::scenarios::{runtime_system, SystemKind};
        Self {
            system: runtime_system(SystemKind::Lassen, workers, 1.0 / 2_000.0, 192.0),
            profile: DatasetProfile::cosmoflow().scaled(1.0 / 200.0, 1.0 / 50.0),
            epochs: 3,
            batch: 4,
            seed: 0xF1_6C,
            scale: TimeScale::new(0.25),
            compute: 64.0e6,
            grad_elems: 256,
        }
    }

    /// Returns a copy with a different per-worker batch size (Fig. 13).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// The `fig8_runtime` experiment: one small contended system on
    /// which **all ten** registry policies run as real loader threads —
    /// the runtime counterpart of the Fig. 8 simulation sweep. Sized so
    /// every policy is feasible (the dataset fits aggregate RAM for the
    /// LBANN modes and one worker's storage for sharding) while the
    /// saturating PFS still separates PFS-bound policies from
    /// cache-based ones.
    pub fn fig8_runtime() -> Self {
        use nopfs_perfmodel::presets::{fig8_small_cluster, saturating_pfs_curve};
        use nopfs_util::units::MB;
        let mut system = fig8_small_cluster().with_compute_mbps(64.0, 200.0);
        system.workers = 4;
        system.staging.capacity = 200_000;
        system.staging.threads = 2;
        system.classes[0].capacity = 2_000_000; // RAM: half the dataset
        system.classes[1].capacity = 4_000_000; // SSD: the rest
        system.pfs_read = saturating_pfs_curve(60.0 * MB, 8.0);
        Self {
            system,
            profile: DatasetProfile::new("fig8-runtime", 240, 20_000.0, 0.0, 4, 0xF8_57),
            epochs: 3,
            batch: 4,
            seed: 0xF8_58,
            scale: TimeScale::new(0.05),
            compute: 64.0e6,
            grad_elems: 256,
        }
    }
}

/// Aggregated outcome of one registry-dispatched `(PolicyId,
/// experiment)` run — the ten-policy counterpart of [`PolicyRun`].
pub struct RegistryRun {
    /// Which policy ran.
    pub policy: PolicyId,
    /// Per-worker metrics.
    pub per_worker: Vec<RunMetrics>,
    /// Per-epoch times: max across workers, model seconds.
    pub epoch_times: Vec<f64>,
    /// Clairvoyant setup statistics (NoPFS only).
    pub setup: Option<SetupStats>,
}

impl RegistryRun {
    /// Median epoch time excluding epoch 0 (the figures' convention).
    pub fn median_epoch_time(&self) -> f64 {
        median_excluding_warmup(&self.epoch_times)
    }

    /// Cluster-merged loader statistics.
    pub fn merged_stats(&self) -> WorkerStats {
        RunMetrics::merged_stats(&self.per_worker)
    }
}

fn median_excluding_warmup(epoch_times: &[f64]) -> f64 {
    let tail: Vec<f64> = epoch_times.iter().copied().skip(1).collect();
    if tail.is_empty() {
        return epoch_times.first().copied().unwrap_or(0.0);
    }
    Summary::new(&tail).median()
}

/// Runs any of the ten registry policies on one experiment through the
/// workspace loader factory (`nopfs_baselines::registry`) — the entry
/// point of the `fig8_runtime` sweep.
///
/// # Errors
/// [`Unsupported`] when the policy cannot run the configuration.
pub fn run_policy_id(exp: &Experiment, policy: PolicyId) -> Result<RegistryRun, Unsupported> {
    let n = exp.system.workers;
    let sizes = Arc::new(exp.profile.sizes());
    let config = JobConfig::new(
        exp.seed,
        exp.epochs,
        exp.batch,
        exp.system.clone(),
        exp.scale,
    )
    .drop_last(true);
    let loop_cfg = TrainLoopConfig {
        compute_rate: exp.compute,
        scale: exp.scale,
        grad_elems: exp.grad_elems,
    };
    let grad_endpoints: Mutex<Vec<Option<Endpoint<Vec<f32>>>>> = Mutex::new(
        cluster::<Vec<f32>>(n, NetConfig::new(exp.system.interconnect, exp.scale))
            .into_iter()
            .map(Some)
            .collect(),
    );
    let body = |loader: &mut dyn DataLoader| {
        let ep = grad_endpoints.lock()[loader.rank()]
            .take()
            .expect("each rank takes its endpoint once");
        run_training_loop(loader, &loop_cfg, Some(&ep))
    };

    let pfs = Pfs::in_memory(exp.system.pfs_read.clone(), exp.scale);
    if policy != PolicyId::Perfect {
        exp.profile.materialize(&pfs);
    }
    let outcome = registry::run_policy(policy, config, sizes, &pfs, body)?;
    let epoch_times = RunMetrics::bulk_epoch_times(&outcome.per_worker);
    Ok(RegistryRun {
        policy,
        per_worker: outcome.per_worker,
        epoch_times,
        setup: outcome.setup,
    })
}

/// Runs one policy on one experiment. Returns `None` when the policy
/// cannot support the configuration (LBANN with an over-sized dataset).
pub fn run_policy(exp: &Experiment, policy: RuntimePolicy) -> Option<PolicyRun> {
    let n = exp.system.workers;
    let sizes = Arc::new(exp.profile.sizes());
    // drop_last keeps every worker's batch count identical, which the
    // per-step allreduce requires (ragged counts would deadlock the
    // collective — the same reason frameworks drop the last partial
    // global batch in distributed training).
    let config = JobConfig::new(
        exp.seed,
        exp.epochs,
        exp.batch,
        exp.system.clone(),
        exp.scale,
    )
    .drop_last(true);
    let loop_cfg = TrainLoopConfig {
        compute_rate: exp.compute,
        scale: exp.scale,
        grad_elems: exp.grad_elems,
    };
    // A dedicated gradient-allreduce cluster, one endpoint per rank.
    let grad_endpoints: Mutex<Vec<Option<Endpoint<Vec<f32>>>>> = Mutex::new(
        cluster::<Vec<f32>>(n, NetConfig::new(exp.system.interconnect, exp.scale))
            .into_iter()
            .map(Some)
            .collect(),
    );
    let body = |loader: &mut dyn DataLoader| {
        let ep = grad_endpoints.lock()[loader.rank()]
            .take()
            .expect("each rank takes its endpoint once");
        run_training_loop(loader, &loop_cfg, Some(&ep))
    };

    let needs_pfs = !matches!(policy, RuntimePolicy::NoIo);
    let pfs = Pfs::in_memory(exp.system.pfs_read.clone(), exp.scale);
    if needs_pfs {
        exp.profile.materialize(&pfs);
    }

    let mut setup = None;
    let per_worker: Vec<RunMetrics> = match policy {
        RuntimePolicy::NoIo => NoIoRunner::new(config, sizes).run(body),
        RuntimePolicy::PyTorch => DoubleBufferRunner::pytorch_like(config, sizes).run(&pfs, body),
        RuntimePolicy::Dali => DoubleBufferRunner::dali_like(config, sizes).run(&pfs, body),
        RuntimePolicy::Naive => NaiveRunner::new(config, sizes).run(&pfs, body),
        RuntimePolicy::Lbann => {
            let ram = exp.system.classes.first().map_or(0, |c| c.capacity);
            let total: u64 = sizes.iter().sum();
            if total > ram.saturating_mul(n as u64) {
                return None; // the store's documented limitation
            }
            LbannRunner::new(config, sizes).run(&pfs, body)
        }
        RuntimePolicy::NoPfs => {
            let job = Job::new(config, sizes);
            setup = Some(job.setup_stats().clone());
            job.run(&pfs, |w| body(w))
        }
    };

    // Bulk-synchronous epoch time: the slowest worker defines it.
    let epoch_times = RunMetrics::bulk_epoch_times(&per_worker);

    Some(PolicyRun {
        policy,
        per_worker,
        epoch_times,
        setup,
    })
}
