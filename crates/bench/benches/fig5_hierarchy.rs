//! Fig. 5-style hierarchy sweep: how much storage hierarchy does
//! clairvoyant placement need?
//!
//! The paper's Fig. 5 sweeps buffer capacity through the performance
//! model and shows I/O time falling as more of the dataset fits near
//! the trainer. This bench generalizes that sweep to the *tiered*
//! hierarchy: the combined cache capacity (RAM + SSD tiers) sweeps
//! from 0% (flat — every fetch pays the contended PFS) to 150% of the
//! dataset, split 40/60 across the two tiers, and NoPFS runs on every
//! configuration next to the flat `StagingBuffer` baseline.
//!
//! Emits `BENCH_fig5_hierarchy.json` (the perf-trajectory artifact).
//! Scale with `NOPFS_BENCH_SCALE`.

use nopfs_bench::report::{self, Json};
use nopfs_bench::{bench_scale, env_u64};
use nopfs_perfmodel::presets::{fig8_small_cluster, saturating_pfs_curve};
use nopfs_simulator::{run, PolicyId, Scenario};
use nopfs_util::units::MB;

/// The contended base: aggregate PFS saturates below the cluster's
/// compute demand, so hierarchy capacity is what decides stalls.
fn base(extra: f64) -> Scenario {
    let mut sys = fig8_small_cluster();
    sys.pfs_read = saturating_pfs_curve(200.0 * MB, 8.0);
    sys.staging.capacity = 16 * 1_000_000;
    let samples = ((2_000.0 * extra) as usize).max(200);
    Scenario::new("fig5-hierarchy", sys, vec![100_000u64; samples], 4, 8, 42)
}

/// `base` with the cache tiers holding `fraction` of the dataset,
/// split 40% RAM / 60% SSD (a zero fraction drops both tiers).
fn with_fraction(base: &Scenario, fraction: f64) -> Scenario {
    let total: u64 = base.sizes.iter().sum();
    let budget = (total as f64 * fraction) as u64;
    let mut s = base.clone();
    s.system.classes[0].capacity = budget * 2 / 5;
    if s.system.classes.len() >= 2 {
        s.system.classes[1].capacity = budget * 3 / 5;
    }
    s
}

fn main() {
    let extra = bench_scale();
    let base = base(extra);
    let total: u64 = base.sizes.iter().sum();
    report::banner(
        "Fig. 5 (hierarchy)",
        "tier-capacity sweep: NoPFS across RAM+SSD fractions vs the flat baseline",
    );
    report::config_line(&format!(
        "N={} E={} F={} ({:.0} MB dataset), tiers split 40% RAM / 60% SSD",
        base.system.workers,
        base.epochs,
        base.num_samples(),
        total as f64 / 1e6,
    ));

    // The flat references: no hierarchy at all.
    let naive = run(&base, PolicyId::Naive)
        .expect("naive runs")
        .execution_time;
    let flat = run(&base, PolicyId::StagingBuffer)
        .expect("staging-buffer runs")
        .execution_time;
    let lb = run(&base, PolicyId::Perfect)
        .expect("lower bound runs")
        .execution_time;

    let steps = env_u64("NOPFS_FIG5_STEPS", 7);
    let fractions: Vec<f64> = (0..steps)
        .map(|i| 1.5 * i as f64 / (steps - 1).max(1) as f64)
        .collect();

    println!(
        "{:>10} {:>10} {:>10} {:>11} {:>12} {:>9}",
        "fraction", "RAM (MB)", "SSD (MB)", "NoPFS (s)", "vs flat", "PFS%"
    );
    let mut points = Vec::new();
    for &f in &fractions {
        let s = with_fraction(&base, f);
        let r = run(&s, PolicyId::NoPfs).expect("NoPFS runs");
        let total_fetches: u64 = r.fetch_counts.iter().sum();
        let pfs_share = r.fetch_counts[3] as f64 / total_fetches.max(1) as f64;
        println!(
            "{:>9.0}% {:>10.1} {:>10.1} {:>11.4} {:>11.2}x {:>8.1}%",
            f * 100.0,
            s.system.classes[0].capacity as f64 / 1e6,
            s.system.classes[1].capacity as f64 / 1e6,
            r.execution_time,
            flat / r.execution_time,
            pfs_share * 100.0,
        );
        points.push(Json::obj([
            ("fraction", Json::Num(f)),
            ("ram_bytes", Json::from(s.system.classes[0].capacity)),
            ("ssd_bytes", Json::from(s.system.classes[1].capacity)),
            ("nopfs_s", Json::Num(r.execution_time)),
            ("speedup_vs_flat", Json::Num(flat / r.execution_time)),
            ("pfs_fetch_share", Json::Num(pfs_share)),
        ]));
    }

    let doc = Json::obj([
        ("figure", Json::from("fig5_hierarchy")),
        ("source", Json::from("benches/fig5_hierarchy.rs")),
        ("scale", Json::Num(extra)),
        ("dataset_bytes", Json::from(total)),
        ("epochs", Json::from(base.epochs)),
        ("workers", Json::from(base.system.workers as u64)),
        ("naive_s", Json::Num(naive)),
        ("flat_staging_s", Json::Num(flat)),
        ("lower_bound_s", Json::Num(lb)),
        ("points", Json::Arr(points)),
    ]);
    report::write_json("BENCH_fig5_hierarchy.json", &doc).expect("write JSON report");

    println!();
    println!("flat StagingBuffer {flat:.4} s, Naive {naive:.4} s, lower bound {lb:.4} s");
    println!("reading: past ~50% cached, NoPFS detaches from the t(γ) collapse;");
    println!("the tiered split matches Fig. 9's RAM/SSD tradeoff at equal budgets.");
}
