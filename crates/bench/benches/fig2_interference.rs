//! Fig. 2: multi-tenant interference on one shared PFS.
//!
//! The paper's opening argument is that aggregate PFS throughput
//! `t(γ)` saturates, so co-scheduled training jobs interfere with each
//! other's I/O. This bench reproduces that scenario twice:
//!
//! 1. **Thread runtime** — four real tenants (NoPFS, two naive
//!    loaders, PyTorch double-buffering) co-scheduled on one shared,
//!    namespaced `Pfs`, each measured solo first; the printed
//!    *interference slowdown* is co-scheduled ÷ solo steady epoch
//!    time.
//! 2. **Simulator** — the same mixed cluster analytically, plus a
//!    uniform-policy sweep to K tenants far past what in-process
//!    threads allow.
//!
//! Also emits `BENCH_fig2_interference.json` (the perf-trajectory
//! artifact; `examples/interference.rs` writes the identical schema).
//! Scale everything with `NOPFS_BENCH_SCALE`.

use nopfs_bench::report;
use nopfs_bench::scenarios::fig2;
use nopfs_bench::{bench_scale, env_u64};
use nopfs_cluster::interference_report;

fn main() {
    let extra = bench_scale();
    report::banner(
        "Fig. 2",
        "co-scheduled jobs contending on one shared PFS (interference slowdowns)",
    );
    let spec = fig2::cluster_spec(extra);
    report::config_line(&format!(
        "K={} tenants x {} workers  F={} samples x {:.0} KB each  E={}  shared t(γ) 40 MB/s knee",
        spec.tenants.len(),
        fig2::WORKERS,
        fig2::samples(extra),
        fig2::SAMPLE_BYTES / 1_000.0,
        fig2::EPOCHS,
    ));

    report::section("thread runtime vs simulator: solo vs co-scheduled (one shared PFS)");
    let cluster = interference_report(&spec);
    let sim_slowdowns = fig2::sim_mixed_slowdowns(&spec);
    println!(
        "{:<10} {:>14} {:>13} {:>16} {:>13} {:>10} {:>8}",
        "tenant",
        "solo epoch(s)",
        "co epoch(s)",
        "runtime slowdown",
        "sim slowdown",
        "PFS reads",
        "cache%"
    );
    for (t, &sim) in cluster.tenants.iter().zip(&sim_slowdowns) {
        println!(
            "{:<10} {:>14.3} {:>13.3} {:>15.2}x {:>12.2}x {:>10} {:>7.1}%",
            t.name,
            t.solo_epoch_time.unwrap_or(0.0),
            t.steady_epoch_time(),
            t.slowdown.unwrap_or(0.0),
            sim,
            t.pfs_reads(),
            t.cache_fraction() * 100.0,
        );
    }

    report::section("simulator: uniform-policy clusters swept past thread scale");
    let max_k = env_u64("NOPFS_FIG2_MAX_K", 16) as usize;
    let ks: Vec<usize> = [2usize, 4, 8, 16]
        .into_iter()
        .filter(|&k| k <= max_k)
        .collect();
    let sweeps = fig2::sim_sweep(extra, &ks);
    println!(
        "{:<16} {:>12} {}",
        "policy",
        "solo (s)",
        ks.iter()
            .map(|k| format!("{:>9}", format!("K={k}")))
            .collect::<String>()
    );
    for s in &sweeps {
        let mut row = format!("{:<16} {:>12.3}", s.policy.name(), s.solo_s);
        for &(_, worst) in &s.per_k {
            row.push_str(&format!(" {worst:>7.2}x"));
        }
        println!("{row}");
    }

    let doc = fig2::json_doc(
        "benches/fig2_interference.rs",
        extra,
        &cluster,
        &sim_slowdowns,
        &sweeps,
    );
    report::write_json("BENCH_fig2_interference.json", &doc).expect("write JSON report");

    println!();
    println!("reading: NoPFS's slowdown stays near 1x because steady-state epochs");
    println!("are cache-served; the all-PFS baselines inherit the full t(γ) collapse.");
}
