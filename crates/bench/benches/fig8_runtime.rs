//! Fig. 8, runtime edition: all **ten** registry policies as real
//! loader threads on one contended system.
//!
//! The simulation bench (`fig8_simulation`) prices every policy
//! analytically; since the policy-layer refactor the same ten
//! `PolicyId`s also construct working runtime loaders, so this bench
//! runs the head-to-head with real threads, caches, and bytes: median
//! steady epoch time, consumer stall, fetch-source fractions, prestage
//! volume, and the NoPFS clairvoyant-setup cost.
//!
//! Emits `BENCH_fig8_runtime.json` (workspace root) alongside the
//! interference report — the machine-readable perf trajectory of the
//! runtime policy grid.

use nopfs_bench::report::{self, Json};
use nopfs_bench::runtime::{run_policy_id, Experiment};
use nopfs_policy::PolicyId;

fn main() {
    let exp = Experiment::fig8_runtime();
    report::banner(
        "Fig. 8 (runtime)",
        "all ten policies as real loader threads on one contended system",
    );
    report::config_line(&format!(
        "N={} E={} b={} F={} (20 KB/sample)  PFS saturates at 60 MB/s",
        exp.system.workers, exp.epochs, exp.batch, exp.profile.num_samples,
    ));
    println!(
        "{:<20} {:>12} {:>10} {:>7} {:>7} {:>7} {:>9}  notes",
        "Policy", "epoch (s)", "stall (s)", "loc%", "rem%", "pfs%", "prestage"
    );

    let mut rows: Vec<Json> = Vec::new();
    let mut nopfs_epoch = None;
    let mut naive_epoch = None;
    for policy in PolicyId::ALL {
        match run_policy_id(&exp, policy) {
            Ok(run) => {
                let stats = run.merged_stats();
                let (loc, rem, pfs) = stats.fractions();
                let stall = exp.scale.to_model(stats.stall_time);
                let median = run.median_epoch_time();
                let note = run
                    .setup
                    .as_ref()
                    .map(report::setup_line)
                    .unwrap_or_default();
                println!(
                    "{:<20} {:>12.3} {:>10.3} {:>6.1}% {:>6.1}% {:>6.1}% {:>9}  {note}",
                    policy.name(),
                    median,
                    stall,
                    loc * 100.0,
                    rem * 100.0,
                    pfs * 100.0,
                    stats.prestage_fetches,
                );
                match policy {
                    PolicyId::NoPfs => nopfs_epoch = Some(median),
                    PolicyId::Naive => naive_epoch = Some(median),
                    _ => {}
                }
                rows.push(Json::obj([
                    ("policy", Json::from(policy.name())),
                    ("supported", Json::Bool(true)),
                    ("median_epoch_s", Json::Num(median)),
                    (
                        "epoch_times_s",
                        Json::Arr(run.epoch_times.iter().map(|&t| Json::Num(t)).collect()),
                    ),
                    ("stall_s", Json::Num(stall)),
                    ("local_fetches", Json::from(stats.local_fetches)),
                    ("remote_fetches", Json::from(stats.remote_fetches)),
                    ("pfs_fetches", Json::from(stats.pfs_fetches)),
                    ("prestage_fetches", Json::from(stats.prestage_fetches)),
                    (
                        "setup_ms",
                        run.setup
                            .as_ref()
                            .map_or(Json::Null, |s| Json::Num(s.setup_time.as_secs_f64() * 1e3)),
                    ),
                ]));
            }
            Err(e) => {
                println!("{:<20} {:>12}  {}", policy.name(), "n/a", e.0);
                rows.push(Json::obj([
                    ("policy", Json::from(policy.name())),
                    ("supported", Json::Bool(false)),
                    ("reason", Json::from(e.0)),
                ]));
            }
        }
    }

    if let (Some(np), Some(nv)) = (nopfs_epoch, naive_epoch) {
        println!();
        println!(
            "NoPFS steady epoch {np:.3}s vs Naive {nv:.3}s ({} faster)",
            report::ratio(nv, np)
        );
    }

    let doc = Json::obj([
        ("figure", Json::from("fig8_runtime")),
        ("source", Json::from("crates/bench/benches/fig8_runtime.rs")),
        ("workers", Json::from(exp.system.workers as u64)),
        ("epochs", Json::from(exp.epochs)),
        ("samples", Json::from(exp.profile.num_samples)),
        ("policies", Json::Arr(rows)),
    ]);
    report::write_json("BENCH_fig8_runtime.json", &doc).expect("write JSON report");
}
